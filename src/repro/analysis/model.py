"""Analytic cost models for the two recovery algorithms.

The paper closes: "It is hoped that theoretical formulations could be
developed to precisely express the effects of these factors in the same
way that message complexity became the yardstick."  This module is a
small step in that direction: closed-form predictions for

* the recovery-control **message count** of both algorithms (the
  traditional yardstick),
* the **blocked time** each imposes on live processes (the paper's
  proposed yardstick), expressed in the hardware parameters
  (detection delay, storage latency/bandwidth, state size, network
  latency).

The test suite validates each formula against the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class HardwareModel:
    """The cost parameters the predictions are expressed in."""

    n: int
    detection_delay: float = 3.0
    state_bytes: int = 1_000_000
    storage_op_latency: float = 0.020
    storage_bandwidth: float = 1_000_000.0
    #: one-way latency of a small control message
    message_latency: float = 350e-6

    @property
    def restore_time(self) -> float:
        """Time to reload one process image from stable storage."""
        return self.storage_op_latency + self.state_bytes / self.storage_bandwidth

    def storage_write_time(self, size_bytes: int) -> float:
        """Synchronous write latency for a payload of ``size_bytes``."""
        return self.storage_op_latency + size_bytes / self.storage_bandwidth


# ----------------------------------------------------------------------
# message complexity (the traditional yardstick)
# ----------------------------------------------------------------------
def blocking_recovery_messages(n: int, recovering: int = 1) -> int:
    """Control messages of the blocking baseline.

    Per recovering process: one request to each of the n-1 peers, one
    reply from each *live* peer, and one completion broadcast:
    ``(n-1) + live + (n-1)``.  With r concurrent recoveries, each sees
    ``n - r`` live peers.
    """
    if recovering < 1 or n < 2:
        raise ValueError("need n >= 2 and recovering >= 1")
    live = n - recovering
    return recovering * (2 * (n - 1) + live)


def nonblocking_recovery_messages(
    n: int, recovering: int = 1, gather_restarts: int = 0
) -> int:
    """Control messages of the paper's non-blocking algorithm.

    Per recovering process (the steady parts):

    * ordinal round-trip with the sequencer ........................ 2
    * join announcement to every peer .......................... n - 1
    * completion broadcast to peers plus the sequencer ............. n

    Leader-side, per completed gather round over R recovering and
    L = n - R live processes:

    * resume check with the sequencer at election .................. 2
    * incarnation round over the *other* members of R ..... 2 (R - 1)
    * depinfo round over L ..................................... 2 L
    * persisted gather progress (one post per incarnation reply,
      one at incarnation-phase completion, one per depinfo
      reply — docs/RECOVERY.md) ........................ (R - 1) + 1 + L
    * distribution to the other members of R ................. R - 1
    * leader-done to peers plus the sequencer ..................... n

    A gather restart repeats the incarnation and depinfo rounds and
    re-persists the progress.  This counts one leadership round serving
    all R members (the common case when failures overlap); processes
    recovering in disjoint windows are better modelled as separate
    calls.
    """
    if recovering < 1 or n < 2:
        raise ValueError("need n >= 2 and recovering >= 1")
    r = recovering
    live = n - r
    per_process = 2 + (n - 1) + n
    gather = 2 * (r - 1) + 2 * live
    persist = (r - 1) + 1 + live
    leader = (gather_restarts + 1) * (gather + persist) + 2 + (r - 1) + n
    return r * per_process + leader


def message_overhead_ratio(n: int) -> float:
    """Non-blocking / blocking message ratio for a single failure."""
    return nonblocking_recovery_messages(n) / blocking_recovery_messages(n)


# ----------------------------------------------------------------------
# blocked time (the paper's proposed yardstick)
# ----------------------------------------------------------------------
def blocking_live_blocked_time(
    hw: HardwareModel, reply_bytes: int = 4096, replay_time: float = 0.001
) -> float:
    """Blocked time per live process, single failure, blocking baseline.

    A live process blocks from the recovery request until the
    completion broadcast: its own synchronous reply write, the slowest
    peer's write (they proceed in parallel, so approximately one write
    time), the replay at the recovering process, and a few message
    flights.
    """
    return (
        hw.storage_write_time(reply_bytes)
        + replay_time
        + 3 * hw.message_latency
    )


def blocking_live_blocked_time_concurrent(
    hw: HardwareModel, reply_bytes: int = 4096, replay_time: float = 0.001
) -> float:
    """Blocked time per live process when a second failure hits during
    recovery: the paper's E2.

    Live processes stay blocked across the second failure's detection
    and restore before the normal single-failure tail.
    """
    return (
        hw.detection_delay
        + hw.restore_time
        + blocking_live_blocked_time(hw, reply_bytes, replay_time)
    )


def nonblocking_live_blocked_time(_: HardwareModel) -> float:
    """Blocked time per live process under the new algorithm: zero,
    by construction -- the algorithm's defining property."""
    return 0.0


def recovery_duration(
    hw: HardwareModel, algorithm_time: float = 0.005
) -> float:
    """Crash-to-live duration of a single recovery, either algorithm.

    detection + restore + (milliseconds of algorithm and replay); the
    paper's central observation is that the last term is negligible.
    """
    return hw.detection_delay + hw.restore_time + algorithm_time


def concurrent_recovery_duration(
    hw: HardwareModel, algorithm_time: float = 0.005
) -> float:
    """Duration of the *first* recovery when a second failure interrupts
    it (the leader must wait out the second detection + restore)."""
    return 2 * (hw.detection_delay + hw.restore_time) + algorithm_time
