"""Cost-ledger report formatting.

Renders the roll-up produced by :meth:`repro.obs.CostLedger.summary`
(``RunResult.extra["cost"]``) into the plain-text tables the CLI's
``repro report cost`` prints: per-purpose breakdowns with shares, the
per-link cost matrix, phase splits and an overhead-vs-time curve from
``extra["timeseries"]``.  Everything here is pure formatting over the
JSON-able summary dict, so it works identically on a live run's summary
and on a merged cross-trial ledger's.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.analysis.report import format_table

#: purposes whose share the CI baseline tracks (see BENCH_COST.json)
SHARE_PURPOSES = ("piggyback-determinant", "determinant-log", "control-plane")


def overhead_shares(cost: Dict[str, Any]) -> Dict[str, float]:
    """Failure-free-relevant share (fraction of all wire bytes) of each
    tracked overhead purpose, plus the total ``overhead_share``."""
    total = cost["wire"]["total_bytes"] or 1
    by_purpose = cost["wire"]["by_purpose"]
    shares = {
        purpose: by_purpose.get(purpose, 0) / total for purpose in SHARE_PURPOSES
    }
    shares["overhead"] = cost.get("overhead_share", 0.0)
    return shares


def purpose_table(cost: Dict[str, Any], title: Optional[str] = None) -> str:
    """Wire and storage bytes per purpose, with percentage shares."""
    rows: List[Sequence[Any]] = []
    wire_total = cost["wire"]["total_bytes"] or 1
    for purpose, nbytes in cost["wire"]["by_purpose"].items():
        rows.append(("wire", purpose, nbytes, f"{100 * nbytes / wire_total:.1f}%"))
    storage_total = cost["storage"]["total_bytes"] or 1
    for purpose, nbytes in cost["storage"]["by_purpose"].items():
        rows.append(
            ("storage", purpose, nbytes, f"{100 * nbytes / storage_total:.1f}%")
        )
    if cost["gc"]["total_bytes"]:
        rows.append(("gc", "reclaimed", cost["gc"]["total_bytes"], "-"))
    return format_table(("domain", "purpose", "bytes", "share"), rows, title=title)


def phase_table(cost: Dict[str, Any], title: Optional[str] = None) -> str:
    """Wire and storage bytes per phase (failure-free vs episodes)."""
    rows: List[Sequence[Any]] = []
    for phase, nbytes in cost["wire"]["by_phase"].items():
        rows.append(("wire", phase, nbytes))
    for phase, nbytes in cost["storage"]["by_phase"].items():
        rows.append(("storage", phase, nbytes))
    return format_table(("domain", "phase", "bytes"), rows, title=title)


def link_matrix_table(cost: Dict[str, Any], title: Optional[str] = None) -> str:
    """Directed per-link wire bytes, rebuilt from the account list."""
    links: Dict[Tuple[Any, Any], int] = {}
    for domain, proc, peer, _purpose, _phase, _count, nbytes in cost["accounts"]:
        if domain == "wire":
            links[(proc, peer)] = links.get((proc, peer), 0) + nbytes
    rows = [
        (src, dst, nbytes)
        for (src, dst), nbytes in sorted(links.items(), key=lambda kv: kv[1], reverse=True)
    ]
    return format_table(("src", "dst", "bytes"), rows, title=title)


def overhead_curve(
    timeseries: Sequence[Dict[str, Any]],
    width: int = 50,
    title: Optional[str] = None,
) -> str:
    """ASCII overhead-vs-time curve from ``extra["timeseries"]``.

    Each line is one sample window: its end time, the wire bytes it
    carried, the window's overhead share (non-app fraction) as a bar,
    and the phase the window ended in.
    """
    lines: List[str] = []
    if title:
        lines.append(title)
    if not timeseries:
        lines.append("(no samples)")
        return "\n".join(lines)
    peak = max(sample["wire_bytes"] for sample in timeseries) or 1
    for sample in timeseries:
        wire_bytes = sample["wire_bytes"]
        app = sample["wire"].get("app-payload", 0)
        share = 1.0 - app / wire_bytes if wire_bytes else 0.0
        bar = "#" * max(1 if wire_bytes else 0, round(width * wire_bytes / peak))
        lines.append(
            f"{sample['t']:>10.4f}s {wire_bytes:>10d} B "
            f"ovh {100 * share:5.1f}% {sample['phase']:<14} {bar}"
        )
    return "\n".join(lines)


def conservation_table(cost: Dict[str, Any], title: Optional[str] = None) -> str:
    """The byte-conservation checks as a pass/fail table."""
    conservation = cost.get("conservation")
    if conservation is None:
        return "(no conservation data: run summary lacked stats)"
    rows: List[Sequence[Any]] = []
    for name, check in conservation.items():
        if isinstance(check, dict):
            status = "ok" if check["ledger"] == check["expected"] else "MISMATCH"
            rows.append((name, check["ledger"], check["expected"], status))
    rows.append(
        ("per_device", "-", "-", "ok" if conservation["per_device"] else "MISMATCH")
    )
    return format_table(("check", "ledger", "expected", "status"), rows, title=title)


def format_cost_report(
    cost: Dict[str, Any],
    timeseries: Optional[Sequence[Dict[str, Any]]] = None,
    label: Optional[str] = None,
) -> str:
    """The full plain-text report for one run or merged ledger."""
    header = f"cost report{f' -- {label}' if label else ''}"
    sections = [
        header,
        "=" * len(header),
        f"wire: {cost['wire']['total_bytes']} bytes in "
        f"{cost['wire']['messages']} messages "
        f"({cost['wire']['retransmits']} retransmits); "
        f"overhead share {100 * cost.get('overhead_share', 0.0):.1f}%",
        f"storage: {cost['storage']['total_bytes']} bytes in "
        f"{cost['storage']['ops']} device ops; "
        f"gc reclaimed {cost['gc']['total_bytes']} bytes; "
        f"recovery episodes {cost.get('episodes', 0)}",
        "",
        purpose_table(cost, title="breakdown by purpose"),
        "",
        phase_table(cost, title="breakdown by phase"),
        "",
        link_matrix_table(cost, title="per-link wire bytes"),
    ]
    if "conservation" in cost:
        sections += ["", conservation_table(cost, title="byte conservation")]
    if timeseries:
        sections += ["", overhead_curve(timeseries, title="overhead vs time")]
    return "\n".join(sections)
