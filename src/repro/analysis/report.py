"""Plain-text report tables for the benchmark harness."""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.core.metrics import RunResult
from repro.sim.spans import CriticalPath, Span, children_of


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: Optional[str] = None,
) -> str:
    """Render an aligned ASCII table."""
    cells = [[str(h) for h in headers]] + [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines: List[str] = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) < 0.001 or abs(value) >= 100_000:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def format_run_summary(result: RunResult, crashed: Optional[List[int]] = None) -> str:
    """One-paragraph summary of a run, in the paper's vocabulary."""
    crashed = crashed or []
    lines = [f"run {result.config_name!r}: virtual time {result.end_time:.3f}s"]
    lines.append(
        f"  deliveries: {result.total_deliveries} across {len(result.deliveries)} processes"
    )
    durations = result.recovery_durations()
    if durations:
        pretty = ", ".join(f"{d:.3f}s" for d in durations)
        lines.append(f"  recovery durations: {pretty}")
    lines.append(
        f"  live-process blocked time: mean "
        f"{result.mean_blocked_time(exclude=crashed) * 1000:.1f} ms"
    )
    messages, volume = result.recovery_messages(), result.recovery_bytes()
    lines.append(f"  recovery control traffic: {messages} messages, {volume} bytes")
    stats = result.network
    if stats.dropped:
        by_cause = ", ".join(
            f"{cause}={count}" for cause, count in sorted(stats.drops_by_cause.items())
        )
        by_kind = ", ".join(
            f"{kind}={count}" for kind, count in sorted(stats.drops_by_kind.items())
        )
        lines.append(f"  drops: {stats.dropped} (by cause: {by_cause}; by kind: {by_kind})")
    if stats.retransmits or stats.messages.get("transport"):
        acks, ack_bytes = stats.messages.get("transport", 0), stats.bytes.get("transport", 0)
        lines.append(
            f"  reliability overhead: {stats.retransmits} retransmits "
            f"({stats.retransmit_bytes} bytes), {acks} acks ({ack_bytes} bytes)"
        )
    if stats.duplicates_injected:
        lines.append(f"  duplicates injected: {stats.duplicates_injected}")
    lines.append(f"  consistent: {result.consistent}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# observability formatting (metrics registry, span trees, critical path)
# ----------------------------------------------------------------------
def format_metrics(
    snapshot: Dict[str, Dict[str, Any]], subsystem: Optional[str] = None
) -> str:
    """Tabulate a :meth:`MetricsRegistry.snapshot` by subsystem."""
    rows = []
    for name in sorted(snapshot):
        if subsystem is not None and not name.startswith(subsystem + "."):
            continue
        data = snapshot[name]
        kind = data.get("type", "?")
        if kind == "counter":
            value = str(data["value"])
        elif kind == "gauge":
            value = f"{_fmt(data['value'])} (high {_fmt(data['high_water'])})"
        else:  # histogram
            value = (
                f"n={data['count']} p50={_fmt(data['p50'])} "
                f"p95={_fmt(data['p95'])} max={_fmt(data['max'])}"
            )
        rows.append([name, kind, value])
    if not rows:
        return "(no metrics)"
    return format_table(["metric", "type", "value"], rows)


def format_span_tree(spans: List[Span], node: Optional[int] = None) -> str:
    """Indented span forest: roots first, children nested beneath."""
    if node is not None:
        keep = {s.span_id for s in spans if s.node == node}
        spans = [s for s in spans if s.span_id in keep or s.parent in keep]
    if not spans:
        return "(no spans)"
    by_id = {s.span_id: s for s in spans}
    tree = children_of(spans)
    lines: List[str] = []

    def render(span: Span, depth: int) -> None:
        end = f"{span.end:.6f}" if span.end is not None else "open"
        extra = ""
        if span.attrs:
            keys = ", ".join(
                f"{k}={v}" for k, v in sorted(span.attrs.items())
            )
            extra = f"  [{keys}]"
        lines.append(
            f"{'  ' * depth}#{span.span_id} {span.kind} "
            f"n{span.node} {span.start:.6f} -> {end} "
            f"({span.duration() * 1000:.2f} ms){extra}"
        )
        for child in tree.get(span.span_id, ()):
            render(child, depth + 1)

    roots = [
        s
        for s in spans
        if s.parent is None or s.parent not in by_id
    ]
    for root in sorted(roots, key=lambda s: (s.start, s.span_id)):
        render(root, 0)
    return "\n".join(lines)


def format_critical_path(path: CriticalPath) -> str:
    """Narrate one recovery episode's critical path, component-first."""
    churn = ""
    if path.handoffs or path.resumed_rounds:
        churn = (
            f", {path.handoffs} handoff(s), "
            f"{path.resumed_rounds} resumed round(s)"
        )
    lines = [
        f"node {path.node}: recovery {path.start:.6f} -> {path.end:.6f} "
        f"({path.total:.3f} s total, {path.gather_rounds} gather round(s)"
        f"{churn})"
    ]
    components = path.components()
    total = path.total or 1.0
    for component in sorted(components, key=lambda c: -components[c]):
        duration = components[component]
        lines.append(
            f"  {component:<10} {duration:>9.4f} s  "
            f"({100.0 * duration / total:5.1f} %)"
        )
    lines.append("  segments:")
    for segment in path.segments:
        lines.append(
            f"    {segment.start:.6f} -> {segment.end:.6f} "
            f"{segment.kind:<22} -> {segment.component} "
            f"({segment.duration * 1000:.2f} ms)"
        )
    lines.append(
        f"  bounded by: {path.dominant()}"
    )
    return "\n".join(lines)
