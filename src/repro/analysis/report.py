"""Plain-text report tables for the benchmark harness."""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

from repro.core.metrics import RunResult


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: Optional[str] = None,
) -> str:
    """Render an aligned ASCII table."""
    cells = [[str(h) for h in headers]] + [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines: List[str] = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) < 0.001 or abs(value) >= 100_000:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def format_run_summary(result: RunResult, crashed: Optional[List[int]] = None) -> str:
    """One-paragraph summary of a run, in the paper's vocabulary."""
    crashed = crashed or []
    lines = [f"run {result.config_name!r}: virtual time {result.end_time:.3f}s"]
    lines.append(
        f"  deliveries: {result.total_deliveries} across {len(result.deliveries)} processes"
    )
    durations = result.recovery_durations()
    if durations:
        pretty = ", ".join(f"{d:.3f}s" for d in durations)
        lines.append(f"  recovery durations: {pretty}")
    lines.append(
        f"  live-process blocked time: mean "
        f"{result.mean_blocked_time(exclude=crashed) * 1000:.1f} ms"
    )
    messages, volume = result.recovery_messages(), result.recovery_bytes()
    lines.append(f"  recovery control traffic: {messages} messages, {volume} bytes")
    stats = result.network
    if stats.dropped:
        by_cause = ", ".join(
            f"{cause}={count}" for cause, count in sorted(stats.drops_by_cause.items())
        )
        by_kind = ", ".join(
            f"{kind}={count}" for kind, count in sorted(stats.drops_by_kind.items())
        )
        lines.append(f"  drops: {stats.dropped} (by cause: {by_cause}; by kind: {by_kind})")
    if stats.retransmits or stats.messages.get("transport"):
        acks, ack_bytes = stats.messages.get("transport", 0), stats.bytes.get("transport", 0)
        lines.append(
            f"  reliability overhead: {stats.retransmits} retransmits "
            f"({stats.retransmit_bytes} bytes), {acks} acks ({ack_bytes} bytes)"
        )
    if stats.duplicates_injected:
        lines.append(f"  duplicates injected: {stats.duplicates_injected}")
    lines.append(f"  consistent: {result.consistent}")
    return "\n".join(lines)
