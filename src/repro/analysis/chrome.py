"""Chrome trace-event export (Perfetto / ``chrome://tracing``).

Converts a run's trace into the Trace Event Format JSON that Perfetto
(https://ui.perfetto.dev) and ``chrome://tracing`` load directly:

* every closed span becomes a complete ("X") event on the owning node's
  track, open spans become begin ("B") events so truncation is visible;
* selected point events (crash, restart, recovered, deliveries if asked)
  become instant ("i") events;
* each node gets a named thread via "M" metadata records, so the
  timeline reads ``node 0 .. node n`` top to bottom;
* ``cost.sample`` events (recorded by :mod:`repro.obs.sampler` when a
  run samples its cost ledger) become counter ("C") tracks -- wire
  bytes per purpose plus storage/gc bytes per window -- so Perfetto
  draws the overhead-vs-time curves beside the span timeline.

Simulated seconds map to trace microseconds (the format's native unit),
so one second of virtual time reads as one second in the UI.
"""

from __future__ import annotations

import json
from typing import IO, Any, Dict, Iterable, List, Optional, Union

from repro.sim.spans import Span, spans_from_trace
from repro.sim.trace import TraceEvent, TraceRecorder

#: trace-event timestamps are microseconds
_US = 1_000_000.0

#: point events worth showing as instants, by ``category.action``
_INSTANT_EVENTS = {
    "node.crash": "crash",
    "node.restart_begin": "restart",
    "node.recovered": "recovered",
    "node.checkpoint": "checkpoint",
    "detector.suspect": "suspect",
}


def _track(node: Optional[int]) -> int:
    """Thread id for a node (None = system-wide events on tid 0)."""
    return 0 if node is None else node + 1


def chrome_trace_events(
    source: Union[TraceRecorder, Iterable[TraceEvent]],
    spans: Optional[List[Span]] = None,
    include_instants: bool = True,
) -> List[Dict[str, Any]]:
    """Build the trace-event list (the ``traceEvents`` array)."""
    events = list(getattr(source, "events", source))
    if spans is None:
        spans = spans_from_trace(events)
    out: List[Dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "args": {"name": "repro simulation"},
        },
        {
            "name": "thread_name",
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "args": {"name": "system"},
        },
    ]
    for node in sorted({s.node for s in spans if s.node is not None}
                       | {e.node for e in events if e.node is not None}):
        out.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": _track(node),
                "args": {"name": f"node {node}"},
            }
        )
    for span in spans:
        args = {"span_id": span.span_id}
        if span.parent is not None:
            args["parent"] = span.parent
        if span.links:
            args["links"] = list(span.links)
        args.update(span.attrs)
        base = {
            "name": span.kind,
            "cat": span.kind.split(".", 1)[0],
            "pid": 0,
            "tid": _track(span.node),
            "ts": span.start * _US,
            "args": args,
        }
        if span.closed:
            base["ph"] = "X"
            base["dur"] = (span.end - span.start) * _US
        else:
            base["ph"] = "B"  # left open: the span never ended
        out.append(base)
    if include_instants:
        for event in events:
            key = f"{event.category}.{event.action}"
            name = _INSTANT_EVENTS.get(key)
            if name is None:
                continue
            out.append(
                {
                    "name": name,
                    "cat": event.category,
                    "ph": "i",
                    "s": "t",  # thread-scoped instant
                    "pid": 0,
                    "tid": _track(event.node),
                    "ts": event.time * _US,
                    "args": dict(event.details),
                }
            )
    out.extend(_counter_events(events))
    return out


def _counter_events(events: Iterable[TraceEvent]) -> List[Dict[str, Any]]:
    """Counter ("C") tracks from the sampler's ``cost.sample`` events.

    One ``wire cost`` counter stacks the per-purpose wire bytes of each
    window; ``storage cost`` carries the window's storage and reclaimed
    bytes.  A counter event is emitted at the window's *start* so the
    step plotted across the window shows the bytes that window carried.
    """
    out: List[Dict[str, Any]] = []
    purposes: List[str] = []
    for event in events:
        if event.category != "cost" or event.action != "sample":
            continue
        for purpose in event.details.get("wire", {}):
            if purpose not in purposes:
                purposes.append(purpose)
    for event in events:
        if event.category != "cost" or event.action != "sample":
            continue
        details = event.details
        start = event.time - details.get("window", 0.0)
        wire = details.get("wire", {})
        out.append(
            {
                "name": "wire cost (bytes/window)",
                "ph": "C",
                "pid": 0,
                "tid": 0,
                "ts": start * _US,
                # every series in every event, so Perfetto keeps the
                # stacked areas aligned when a purpose is absent
                "args": {purpose: wire.get(purpose, 0) for purpose in purposes},
            }
        )
        out.append(
            {
                "name": "storage cost (bytes/window)",
                "ph": "C",
                "pid": 0,
                "tid": 0,
                "ts": start * _US,
                "args": {
                    "storage": details.get("storage_bytes", 0),
                    "gc-reclaimed": details.get("gc_bytes", 0),
                },
            }
        )
    return out


def dump_chrome_trace(
    source: Union[TraceRecorder, Iterable[TraceEvent]],
    destination: Union[str, IO[str]],
    include_instants: bool = True,
) -> int:
    """Write the Chrome trace JSON; returns the trace-event count.

    ``destination`` is a path or an open text file.  The output is the
    object form (``{"traceEvents": [...]}``), which both Perfetto and
    ``chrome://tracing`` accept.
    """
    if isinstance(destination, str):
        with open(destination, "w", encoding="utf-8") as handle:
            return dump_chrome_trace(source, handle, include_instants)
    events = chrome_trace_events(source, include_instants=include_instants)
    json.dump(
        {"traceEvents": events, "displayTimeUnit": "ms"},
        destination,
        default=str,
    )
    destination.write("\n")
    return len(events)
