"""Chrome trace-event export (Perfetto / ``chrome://tracing``).

Converts a run's trace into the Trace Event Format JSON that Perfetto
(https://ui.perfetto.dev) and ``chrome://tracing`` load directly:

* every closed span becomes a complete ("X") event on the owning node's
  track, open spans become begin ("B") events so truncation is visible;
* selected point events (crash, restart, recovered, deliveries if asked)
  become instant ("i") events;
* each node gets a named thread via "M" metadata records, so the
  timeline reads ``node 0 .. node n`` top to bottom.

Simulated seconds map to trace microseconds (the format's native unit),
so one second of virtual time reads as one second in the UI.
"""

from __future__ import annotations

import json
from typing import IO, Any, Dict, Iterable, List, Optional, Union

from repro.sim.spans import Span, spans_from_trace
from repro.sim.trace import TraceEvent, TraceRecorder

#: trace-event timestamps are microseconds
_US = 1_000_000.0

#: point events worth showing as instants, by ``category.action``
_INSTANT_EVENTS = {
    "node.crash": "crash",
    "node.restart_begin": "restart",
    "node.recovered": "recovered",
    "node.checkpoint": "checkpoint",
    "detector.suspect": "suspect",
}


def _track(node: Optional[int]) -> int:
    """Thread id for a node (None = system-wide events on tid 0)."""
    return 0 if node is None else node + 1


def chrome_trace_events(
    source: Union[TraceRecorder, Iterable[TraceEvent]],
    spans: Optional[List[Span]] = None,
    include_instants: bool = True,
) -> List[Dict[str, Any]]:
    """Build the trace-event list (the ``traceEvents`` array)."""
    events = list(getattr(source, "events", source))
    if spans is None:
        spans = spans_from_trace(events)
    out: List[Dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "args": {"name": "repro simulation"},
        },
        {
            "name": "thread_name",
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "args": {"name": "system"},
        },
    ]
    for node in sorted({s.node for s in spans if s.node is not None}
                       | {e.node for e in events if e.node is not None}):
        out.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": _track(node),
                "args": {"name": f"node {node}"},
            }
        )
    for span in spans:
        args = {"span_id": span.span_id}
        if span.parent is not None:
            args["parent"] = span.parent
        if span.links:
            args["links"] = list(span.links)
        args.update(span.attrs)
        base = {
            "name": span.kind,
            "cat": span.kind.split(".", 1)[0],
            "pid": 0,
            "tid": _track(span.node),
            "ts": span.start * _US,
            "args": args,
        }
        if span.closed:
            base["ph"] = "X"
            base["dur"] = (span.end - span.start) * _US
        else:
            base["ph"] = "B"  # left open: the span never ended
        out.append(base)
    if include_instants:
        for event in events:
            key = f"{event.category}.{event.action}"
            name = _INSTANT_EVENTS.get(key)
            if name is None:
                continue
            out.append(
                {
                    "name": name,
                    "cat": event.category,
                    "ph": "i",
                    "s": "t",  # thread-scoped instant
                    "pid": 0,
                    "tid": _track(event.node),
                    "ts": event.time * _US,
                    "args": dict(event.details),
                }
            )
    return out


def dump_chrome_trace(
    source: Union[TraceRecorder, Iterable[TraceEvent]],
    destination: Union[str, IO[str]],
    include_instants: bool = True,
) -> int:
    """Write the Chrome trace JSON; returns the trace-event count.

    ``destination`` is a path or an open text file.  The output is the
    object form (``{"traceEvents": [...]}``), which both Perfetto and
    ``chrome://tracing`` accept.
    """
    if isinstance(destination, str):
        with open(destination, "w", encoding="utf-8") as handle:
            return dump_chrome_trace(source, handle, include_instants)
    events = chrome_trace_events(source, include_instants=include_instants)
    json.dump(
        {"traceEvents": events, "displayTimeUnit": "ms"},
        destination,
        default=str,
    )
    destination.write("\n")
    return len(events)
