"""Trace export and import (JSON lines).

A run's trace is the audit record behind every reported number.  These
helpers serialize a :class:`~repro.sim.trace.TraceRecorder` to JSONL so
traces can be archived, diffed between runs, or analysed with external
tooling, and load them back for the in-library query and timeline tools.
"""

from __future__ import annotations

import json
from typing import IO, Iterable, Union

from repro.sim.trace import TraceEvent, TraceRecorder


def event_to_dict(event: TraceEvent) -> dict:
    """Plain-dict form of one trace event."""
    return {
        "time": event.time,
        "category": event.category,
        "node": event.node,
        "action": event.action,
        "details": dict(event.details),
    }


def event_from_dict(data: dict) -> TraceEvent:
    """Rebuild a trace event from its dict form."""
    return TraceEvent(
        time=float(data["time"]),
        category=str(data["category"]),
        node=data["node"],
        action=str(data["action"]),
        details=dict(data.get("details", {})),
    )


def dump_trace(trace: TraceRecorder, destination: Union[str, IO[str]]) -> int:
    """Write the trace as JSON lines; returns the event count.

    ``destination`` is a path or an open text file.
    """
    if isinstance(destination, str):
        with open(destination, "w", encoding="utf-8") as handle:
            return dump_trace(trace, handle)
    count = 0
    for event in trace.events:
        destination.write(json.dumps(event_to_dict(event), default=str))
        destination.write("\n")
        count += 1
    return count


def load_trace(source: Union[str, IO[str], Iterable[str]]) -> TraceRecorder:
    """Read a JSONL trace back into a :class:`TraceRecorder`.

    Counters are rebuilt; subscribers obviously are not.
    """
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as handle:
            return load_trace(handle)
    trace = TraceRecorder()
    for line in source:
        line = line.strip()
        if not line:
            continue
        data = json.loads(line)
        event = event_from_dict(data)
        trace.record(
            event.time, event.category, event.node, event.action, **event.details
        )
    return trace


def diff_counters(a: TraceRecorder, b: TraceRecorder) -> dict:
    """Counter deltas between two traces: ``{key: b - a}`` for keys that
    differ.  Handy for comparing two runs of the same scenario."""
    keys = set(a.counters) | set(b.counters)
    return {
        key: b.counters.get(key, 0) - a.counters.get(key, 0)
        for key in sorted(keys)
        if a.counters.get(key, 0) != b.counters.get(key, 0)
    }
