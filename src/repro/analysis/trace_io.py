"""Trace export and import (JSON lines).

A run's trace is the audit record behind every reported number.  These
helpers serialize a :class:`~repro.sim.trace.TraceRecorder` to JSONL so
traces can be archived, diffed between runs, or analysed with external
tooling, and load them back for the in-library query and timeline tools.
"""

from __future__ import annotations

import json
from typing import IO, Iterable, Optional, Union

from repro.sim.trace import TraceEvent, TraceRecorder


def event_to_dict(event: TraceEvent) -> dict:
    """Plain-dict form of one trace event."""
    return {
        "time": event.time,
        "category": event.category,
        "node": event.node,
        "action": event.action,
        "details": dict(event.details),
    }


def event_from_dict(data: dict, line: Optional[int] = None) -> TraceEvent:
    """Rebuild a trace event from its dict form.

    Validates the record instead of silently coercing: a missing field,
    a non-numeric ``time``, or a ``node`` that is neither an int nor
    ``null`` raises :class:`ValueError` -- naming the offending JSONL
    line when ``line`` is given.
    """

    def fail(reason: str) -> "ValueError":
        where = f"line {line}: " if line is not None else ""
        return ValueError(f"malformed trace record: {where}{reason}")

    if not isinstance(data, dict):
        raise fail(f"expected an object, got {type(data).__name__}")
    for field in ("time", "category", "node", "action"):
        if field not in data:
            raise fail(f"missing field {field!r}")
    time = data["time"]
    if isinstance(time, bool) or not isinstance(time, (int, float)):
        raise fail(f"'time' must be a number, got {time!r}")
    category, action = data["category"], data["action"]
    if not isinstance(category, str) or not category:
        raise fail(f"'category' must be a non-empty string, got {category!r}")
    if not isinstance(action, str) or not action:
        raise fail(f"'action' must be a non-empty string, got {action!r}")
    node = data["node"]
    if node is not None and (isinstance(node, bool) or not isinstance(node, int)):
        raise fail(f"'node' must be an integer or null, got {node!r}")
    details = data.get("details", {})
    if not isinstance(details, dict):
        raise fail(f"'details' must be an object, got {details!r}")
    return TraceEvent(
        time=float(time),
        category=category,
        node=node,
        action=action,
        details=dict(details),
    )


def dump_trace(trace: TraceRecorder, destination: Union[str, IO[str]]) -> int:
    """Write the trace as JSON lines; returns the event count.

    ``destination`` is a path or an open text file.
    """
    if isinstance(destination, str):
        with open(destination, "w", encoding="utf-8") as handle:
            return dump_trace(trace, handle)
    count = 0
    for event in trace.events:
        destination.write(json.dumps(event_to_dict(event), default=str))
        destination.write("\n")
        count += 1
    return count


def load_trace(source: Union[str, IO[str], Iterable[str]]) -> TraceRecorder:
    """Read a JSONL trace back into a :class:`TraceRecorder`.

    Counters are rebuilt; subscribers obviously are not.
    """
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as handle:
            return load_trace(handle)
    trace = TraceRecorder()
    for lineno, line in enumerate(source, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            data = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(
                f"malformed trace record: line {lineno}: invalid JSON ({exc.msg})"
            ) from exc
        event = event_from_dict(data, line=lineno)
        trace.record(
            event.time, event.category, event.node, event.action, **event.details
        )
    return trace


def diff_counters(a: TraceRecorder, b: TraceRecorder) -> dict:
    """Counter deltas between two traces: ``{key: b - a}`` for keys that
    differ.  Handy for comparing two runs of the same scenario."""
    keys = set(a.counters) | set(b.counters)
    return {
        key: b.counters.get(key, 0) - a.counters.get(key, 0)
        for key in sorted(keys)
        if a.counters.get(key, 0) != b.counters.get(key, 0)
    }
