"""Small summary-statistics helpers (dependency-free)."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Sequence


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of a sample."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float
    p50: float
    p95: float

    def __str__(self) -> str:
        return (
            f"n={self.count} mean={self.mean:.6g} std={self.std:.3g} "
            f"min={self.minimum:.6g} p50={self.p50:.6g} p95={self.p95:.6g} "
            f"max={self.maximum:.6g}"
        )


def percentile(sorted_values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile of pre-sorted values; q in [0, 1]."""
    if not sorted_values:
        raise ValueError("percentile of empty sample")
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"q must be in [0, 1], got {q!r}")
    if len(sorted_values) == 1:
        return sorted_values[0]
    position = q * (len(sorted_values) - 1)
    low = int(math.floor(position))
    high = int(math.ceil(position))
    if low == high:
        return sorted_values[low]
    weight = position - low
    return sorted_values[low] * (1 - weight) + sorted_values[high] * weight


def summarize(values: Iterable[float]) -> Summary:
    """Build a :class:`Summary` of the sample."""
    data: List[float] = sorted(float(v) for v in values)
    if not data:
        raise ValueError("cannot summarize an empty sample")
    n = len(data)
    mean = sum(data) / n
    variance = sum((v - mean) ** 2 for v in data) / n if n > 1 else 0.0
    return Summary(
        count=n,
        mean=mean,
        std=math.sqrt(variance),
        minimum=data[0],
        maximum=data[-1],
        p50=percentile(data, 0.5),
        p95=percentile(data, 0.95),
    )
