"""Result analysis and report formatting.

* :mod:`repro.analysis.stats` -- summary statistics (mean, std,
  percentiles, confidence half-widths) without external dependencies.
* :mod:`repro.analysis.report` -- plain-text tables in the style the
  benchmarks print, one per reproduced experiment.
* :mod:`repro.analysis.cost` -- cost-ledger report tables (per-purpose
  breakdowns, link matrix, overhead-vs-time curves) over
  ``RunResult.extra["cost"]`` / ``extra["timeseries"]``.
* :mod:`repro.analysis.model` -- closed-form cost predictions for both
  recovery algorithms (message counts, blocked time, recovery
  duration), validated against the simulator by the test suite -- the
  "theoretical formulations" the paper's conclusion calls for.
"""

from repro.analysis.cost import (
    format_cost_report,
    overhead_curve,
    overhead_shares,
    purpose_table,
)
from repro.analysis.model import (
    HardwareModel,
    blocking_live_blocked_time,
    blocking_live_blocked_time_concurrent,
    blocking_recovery_messages,
    concurrent_recovery_duration,
    message_overhead_ratio,
    nonblocking_live_blocked_time,
    nonblocking_recovery_messages,
    recovery_duration,
)
from repro.analysis.report import format_table, format_run_summary
from repro.analysis.stats import Summary, summarize
from repro.analysis.timeline import TimelineRenderer, render_timeline

__all__ = [
    "format_table",
    "format_run_summary",
    "format_cost_report",
    "overhead_curve",
    "overhead_shares",
    "purpose_table",
    "Summary",
    "summarize",
    "HardwareModel",
    "blocking_recovery_messages",
    "nonblocking_recovery_messages",
    "message_overhead_ratio",
    "blocking_live_blocked_time",
    "blocking_live_blocked_time_concurrent",
    "nonblocking_live_blocked_time",
    "recovery_duration",
    "concurrent_recovery_duration",
    "TimelineRenderer",
    "render_timeline",
]
