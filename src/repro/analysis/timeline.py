"""ASCII timelines of a run.

Renders per-node lanes from the execution trace, so a recovery scenario
can be *seen*: when each process crashed, how long detection and restore
took, when the gather phases ran, and -- the paper's point -- which live
processes were stalled meanwhile.

::

    t=0.000                                                    t=8.100
    n0 |=============================================================|
    n3 |----X.........R~~~~g*=========================================|
    n5 |--------------X.........R~~~~*================================|

    legend: = live   # blocked   X crash   . down (undetected + detected)
            R restore begins   ~ restoring   g gathering   * recovered
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.sim.trace import TraceRecorder

#: lane glyphs, in increasing precedence (later overwrites earlier)
LIVE = "="
BLOCKED = "#"
DOWN = "."
RESTORING = "~"
RECOVERING = "g"
CRASH = "X"
RESTORE_MARK = "R"
RECOVERED = "*"


class TimelineRenderer:
    """Builds per-node lanes from a :class:`TraceRecorder`."""

    def __init__(self, trace: TraceRecorder, width: int = 72) -> None:
        if width < 20:
            raise ValueError(f"width must be >= 20, got {width!r}")
        self.trace = trace
        self.width = width

    # ------------------------------------------------------------------
    def _intervals(self, end_time: float) -> Dict[int, List[Tuple[float, float, str]]]:
        """Per node: (start, end, glyph) state intervals plus point marks."""
        nodes = sorted(
            {e.node for e in self.trace.events if e.category == "node" and e.node is not None}
        )
        lanes: Dict[int, List[Tuple[float, float, str]]] = {n: [] for n in nodes}
        state_since: Dict[int, Tuple[float, str]] = {n: (0.0, LIVE) for n in nodes}

        def close(node: int, at: float, new_glyph: str) -> None:
            since, glyph = state_since[node]
            if at > since:
                lanes[node].append((since, at, glyph))
            state_since[node] = (at, new_glyph)

        for event in self.trace.events:
            if event.node not in lanes:
                continue
            node, t = event.node, event.time
            if event.category == "node":
                if event.action == "crash":
                    close(node, t, DOWN)
                elif event.action == "restart_begin":
                    close(node, t, RESTORING)
                elif event.action == "restored":
                    close(node, t, RECOVERING)
                elif event.action == "recovered":
                    close(node, t, LIVE)
                elif event.action == "block":
                    close(node, t, BLOCKED)
                elif event.action == "unblock":
                    close(node, t, LIVE)
        for node in nodes:
            close(node, end_time, LIVE)
        return lanes

    def _marks(self) -> Dict[int, List[Tuple[float, str]]]:
        marks: Dict[int, List[Tuple[float, str]]] = {}
        for event in self.trace.events:
            if event.category == "node" and event.node is not None:
                glyph = {
                    "crash": CRASH,
                    "restart_begin": RESTORE_MARK,
                    "recovered": RECOVERED,
                }.get(event.action)
                if glyph:
                    marks.setdefault(event.node, []).append((event.time, glyph))
        return marks

    # ------------------------------------------------------------------
    def render(self, end_time: Optional[float] = None) -> str:
        """Render the timeline; ``end_time`` defaults to the last event."""
        if not self.trace.events:
            return "(empty trace)"
        if end_time is None:
            end_time = max(e.time for e in self.trace.events)
        if end_time <= 0:
            end_time = 1.0
        scale = (self.width - 1) / end_time

        def column(t: float) -> int:
            return min(self.width - 1, max(0, int(t * scale)))

        lanes = self._intervals(end_time)
        marks = self._marks()
        lines = [f"t=0.000{' ' * (self.width - 14)}t={end_time:.3f}"]
        for node in sorted(lanes):
            row = [LIVE] * self.width
            for start, end, glyph in lanes[node]:
                for col in range(column(start), column(end) + 1):
                    row[col] = glyph
            for t, glyph in marks.get(node, []):
                row[column(t)] = glyph
            lines.append(f"n{node:<2d} |{''.join(row)}|")
        lines.append("")
        lines.append(
            f"legend: {LIVE} live  {BLOCKED} blocked  {CRASH} crash  "
            f"{DOWN} down  {RESTORE_MARK}/{RESTORING} restoring  "
            f"{RECOVERING} recovering  {RECOVERED} recovered"
        )
        return "\n".join(lines)


def render_timeline(trace: TraceRecorder, width: int = 72) -> str:
    """One-call helper: render the whole run."""
    return TimelineRenderer(trace, width=width).render()
