"""The consistency oracle.

An omniscient observer, invisible to the protocols and free of simulated
cost, that records every send and delivery in the run and checks the
correctness properties the paper proves in Section 4:

* **Replay determinism** (liveness, Section 4.4): when a recovering
  process re-delivers rsn ``k``, it must deliver the *same message* and
  reach the *same state digest* as the original execution did at rsn
  ``k``.
* **Safety** (Section 4.3): at the end of the run, every antecedent of a
  delivery that survived at any process must itself have survived -- no
  live process may be left an orphan of a rolled-back delivery.

Violations are collected, not raised, so a failing run can still be
inspected; the test suite asserts ``oracle.violations == []``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple


@dataclass(frozen=True)
class OracleViolation:
    """One detected breach of a correctness property."""

    kind: str
    node: int
    detail: str

    def __str__(self) -> str:
        return f"[{self.kind}] node {self.node}: {self.detail}"


class ConsistencyOracle:
    """Records the causal structure of the run and checks invariants.

    Event naming: the *delivery event* ``(node, rsn)`` is node's
    ``rsn``-th delivery.  The happens-before DAG has a program-order edge
    ``(x, k-1) -> (x, k)`` and, for each message, an edge from the
    sender's latest delivery before the send to the delivery of that
    message.
    """

    def __init__(self) -> None:
        # (sender, ssn, dst) -> number of deliveries sender had made at send time
        self._send_context: Dict[Tuple[int, int, int], int] = {}
        # (receiver, rsn) -> (sender, ssn)
        self._delivery: Dict[Tuple[int, int], Tuple[int, int]] = {}
        # (receiver, rsn) -> digest after the delivery
        self._digest: Dict[Tuple[int, int], str] = {}
        # archives of permanently rolled-back events, kept so the safety
        # check can still traverse the causal edges they induced
        self._rolled_back_delivery: Dict[Tuple[int, int], Tuple[int, int]] = {}
        self._rolled_back_sends: Dict[Tuple[int, int, int], int] = {}
        self.violations: List[OracleViolation] = []

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def on_send(self, sender: int, ssn: int, dst: int, deliveries_so_far: int) -> None:
        """Record a send (or its regeneration during replay).

        Replay determinism requires a regenerated send to occur at the
        same point in the sender's delivery sequence.
        """
        key = (sender, ssn, dst)
        previous = self._send_context.get(key)
        if previous is None:
            self._send_context[key] = deliveries_so_far
        elif previous != deliveries_so_far:
            self.violations.append(
                OracleViolation(
                    kind="send-divergence",
                    node=sender,
                    detail=(
                        f"message ssn={ssn} to {dst} originally sent after "
                        f"{previous} deliveries, regenerated after {deliveries_so_far}"
                    ),
                )
            )

    def on_deliver(
        self, receiver: int, rsn: int, sender: int, ssn: int, digest: str
    ) -> None:
        """Record a delivery (or its replay)."""
        key = (receiver, rsn)
        previous = self._delivery.get(key)
        if previous is None:
            self._delivery[key] = (sender, ssn)
            self._digest[key] = digest
            return
        if previous != (sender, ssn):
            self.violations.append(
                OracleViolation(
                    kind="replay-order",
                    node=receiver,
                    detail=(
                        f"rsn {rsn} originally delivered {previous}, "
                        f"replayed as {(sender, ssn)}"
                    ),
                )
            )
        elif self._digest[key] != digest:
            self.violations.append(
                OracleViolation(
                    kind="replay-digest",
                    node=receiver,
                    detail=f"rsn {rsn} digest diverged on replay",
                )
            )

    def on_rollback(self, node: int, final_count: int) -> None:
        """A recovery finished with ``node`` at ``final_count`` deliveries.

        Deliveries at rsn >= ``final_count`` (and the sends they caused)
        were *invisible* -- no surviving delivery depends on them -- and
        are permanently rolled back.  They are forgotten so that the
        node's fresh post-recovery execution is not misreported as replay
        divergence.  The safety check will still flag any surviving
        delivery that depended on them, because its antecedent events are
        reconstructed from the surviving record.
        """
        stale_deliveries = [
            key for key in self._delivery if key[0] == node and key[1] >= final_count
        ]
        for key in stale_deliveries:
            self._rolled_back_delivery[key] = self._delivery.pop(key)
            self._digest.pop(key, None)
        stale_sends = [
            key
            for key, context in self._send_context.items()
            if key[0] == node and context > final_count
        ]
        for key in stale_sends:
            self._rolled_back_sends[key] = self._send_context.pop(key)

    # ------------------------------------------------------------------
    # end-of-run checks
    # ------------------------------------------------------------------
    def _antecedents(self, event: Tuple[int, int]) -> Set[Tuple[int, int]]:
        """Backward closure of one delivery event in the happens-before DAG."""
        seen: Set[Tuple[int, int]] = set()
        stack = [event]
        while stack:
            node, rsn = stack.pop()
            if (node, rsn) in seen or rsn < 0:
                continue
            seen.add((node, rsn))
            if rsn > 0:
                stack.append((node, rsn - 1))
            delivered = self._delivery.get((node, rsn))
            if delivered is None:
                delivered = self._rolled_back_delivery.get((node, rsn))
            if delivered is not None:
                sender, ssn = delivered
                context = self._send_context.get((sender, ssn, node))
                if context is None:
                    context = self._rolled_back_sends.get((sender, ssn, node))
                if context is not None and context > 0:
                    stack.append((sender, context - 1))
        return seen

    def check_safety(self, final_histories: Dict[int, List[Tuple[int, int]]]) -> None:
        """Verify no surviving delivery depends on a rolled-back delivery.

        ``final_histories`` maps node -> its delivery history (list of
        ``(sender, ssn)``) at the end of the run.  A delivery event
        ``(x, k)`` *survived* iff ``k < len(final_histories[x])``.
        """
        frontier = [
            (node, len(history) - 1)
            for node, history in final_histories.items()
            if history
        ]
        reached: Set[Tuple[int, int]] = set()
        for event in frontier:
            reached |= self._antecedents(event)
        for node, rsn in sorted(reached):
            history = final_histories.get(node, [])
            if rsn >= len(history):
                self.violations.append(
                    OracleViolation(
                        kind="orphan",
                        node=node,
                        detail=(
                            f"delivery (node={node}, rsn={rsn}) was rolled back but a "
                            f"surviving delivery depends on it"
                        ),
                    )
                )
                continue
            recorded = self._delivery.get((node, rsn))
            if recorded is not None and recorded != tuple(history[rsn]):
                self.violations.append(
                    OracleViolation(
                        kind="history-divergence",
                        node=node,
                        detail=(
                            f"final history at rsn {rsn} is {history[rsn]}, oracle "
                            f"recorded {recorded}"
                        ),
                    )
                )

    @property
    def consistent(self) -> bool:
        """No violations so far."""
        return not self.violations

    def deliveries_recorded(self) -> int:
        """Total distinct delivery events observed."""
        return len(self._delivery)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ConsistencyOracle(deliveries={len(self._delivery)}, "
            f"violations={len(self.violations)})"
        )


class NullOracle(ConsistencyOracle):
    """An oracle that observes nothing.

    Used for protocols whose post-rollback re-execution legitimately
    diverges from the original run (coordinated checkpointing re-executes
    live rather than replaying), where the replay-determinism checks do
    not apply.
    """

    def on_send(self, sender: int, ssn: int, dst: int, deliveries_so_far: int) -> None:
        pass

    def on_deliver(
        self, receiver: int, rsn: int, sender: int, ssn: int, digest: str
    ) -> None:
        pass

    def on_rollback(self, node: int, final_count: int) -> None:
        pass

    def check_safety(self, final_histories: Dict[int, List[Tuple[int, int]]]) -> None:
        pass
