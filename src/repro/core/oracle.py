"""The consistency oracle.

An omniscient observer, invisible to the protocols and free of simulated
cost, that records every send and delivery in the run and checks the
correctness properties the paper proves in Section 4:

* **Replay determinism** (liveness, Section 4.4): when a recovering
  process re-delivers rsn ``k``, it must deliver the *same message* and
  reach the *same state digest* as the original execution did at rsn
  ``k``.
* **Safety** (Section 4.3): at the end of the run, every antecedent of a
  delivery that survived at any process must itself have survived -- no
  live process may be left an orphan of a rolled-back delivery.

The causal record itself (sends, deliveries, rollback archives, the
happens-before closure) lives in the shared
:class:`~repro.sanitizer.causal.CausalGraph`, which the online
:class:`~repro.sanitizer.monitor.Sanitizer` uses for the same checks
mid-run; the oracle layers the replay-determinism bookkeeping (state
digests) on top and audits safety once at the end.

Rollback archives are bounded: :meth:`ConsistencyOracle.on_gc` prunes
entries below a node's durable-checkpoint horizon, mirroring the
protocols' own garbage collection, so long sweeps no longer grow memory
linearly with rolled-back history.

Violations are collected, not raised, so a failing run can still be
inspected; the test suite asserts ``oracle.violations == []``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from repro.sanitizer.causal import CausalGraph


@dataclass(frozen=True)
class OracleViolation:
    """One detected breach of a correctness property."""

    kind: str
    node: int
    detail: str

    def __str__(self) -> str:
        return f"[{self.kind}] node {self.node}: {self.detail}"


class ConsistencyOracle:
    """Records the causal structure of the run and checks invariants.

    Event naming: the *delivery event* ``(node, rsn)`` is node's
    ``rsn``-th delivery.  The happens-before DAG has a program-order edge
    ``(x, k-1) -> (x, k)`` and, for each message, an edge from the
    sender's latest delivery before the send to the delivery of that
    message.
    """

    def __init__(self) -> None:
        self.graph = CausalGraph()
        # (receiver, rsn) -> digest after the delivery
        self._digest: Dict[Tuple[int, int], str] = {}
        self.violations: List[OracleViolation] = []

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def on_send(self, sender: int, ssn: int, dst: int, deliveries_so_far: int) -> None:
        """Record a send (or its regeneration during replay).

        Replay determinism requires a regenerated send to occur at the
        same point in the sender's delivery sequence.
        """
        previous = self.graph.record_send(sender, ssn, dst, deliveries_so_far)
        if previous is not None and previous != deliveries_so_far:
            self.violations.append(
                OracleViolation(
                    kind="send-divergence",
                    node=sender,
                    detail=(
                        f"message ssn={ssn} to {dst} originally sent after "
                        f"{previous} deliveries, regenerated after {deliveries_so_far}"
                    ),
                )
            )

    def on_deliver(
        self, receiver: int, rsn: int, sender: int, ssn: int, digest: str
    ) -> None:
        """Record a delivery (or its replay)."""
        key = (receiver, rsn)
        previous = self.graph.record_delivery(receiver, rsn, sender, ssn)
        if previous is None:
            self._digest[key] = digest
            return
        if previous != (sender, ssn):
            self.violations.append(
                OracleViolation(
                    kind="replay-order",
                    node=receiver,
                    detail=(
                        f"rsn {rsn} originally delivered {previous}, "
                        f"replayed as {(sender, ssn)}"
                    ),
                )
            )
        elif self._digest.get(key) != digest:
            self.violations.append(
                OracleViolation(
                    kind="replay-digest",
                    node=receiver,
                    detail=f"rsn {rsn} digest diverged on replay",
                )
            )

    def on_rollback(self, node: int, final_count: int) -> None:
        """A recovery finished with ``node`` at ``final_count`` deliveries.

        Deliveries at rsn >= ``final_count`` (and the sends they caused)
        were *invisible* -- no surviving delivery depends on them -- and
        are permanently rolled back.  They are forgotten so that the
        node's fresh post-recovery execution is not misreported as replay
        divergence.  The safety check will still flag any surviving
        delivery that depended on them, because its antecedent events are
        reconstructed from the surviving record.
        """
        for key in self.graph.roll_back(node, final_count):
            self._digest.pop(key, None)

    def on_gc(self, node: int, covered: int) -> None:
        """A durable checkpoint covers ``covered`` deliveries of ``node``:
        archived rolled-back entries below that horizon can never feed a
        future violation (see :meth:`CausalGraph.prune`) and are dropped,
        keeping the archives bounded on long runs."""
        self.graph.prune(node, covered)

    # ------------------------------------------------------------------
    # end-of-run checks
    # ------------------------------------------------------------------
    def _antecedents(self, event: Tuple[int, int]) -> Set[Tuple[int, int]]:
        """Backward closure of one delivery event in the happens-before DAG."""
        return self.graph.antecedents(event)

    def check_safety(self, final_histories: Dict[int, List[Tuple[int, int]]]) -> None:
        """Verify no surviving delivery depends on a rolled-back delivery.

        ``final_histories`` maps node -> its delivery history (list of
        ``(sender, ssn)``) at the end of the run.  A delivery event
        ``(x, k)`` *survived* iff ``k < len(final_histories[x])``.
        """
        frontier = [
            (node, len(history) - 1)
            for node, history in final_histories.items()
            if history
        ]
        reached: Set[Tuple[int, int]] = set()
        for event in frontier:
            reached |= self._antecedents(event)
        for node, rsn in sorted(reached):
            history = final_histories.get(node, [])
            if rsn >= len(history):
                self.violations.append(
                    OracleViolation(
                        kind="orphan",
                        node=node,
                        detail=(
                            f"delivery (node={node}, rsn={rsn}) was rolled back but a "
                            f"surviving delivery depends on it"
                        ),
                    )
                )
                continue
            recorded = self.graph.delivery.get((node, rsn))
            if recorded is not None and recorded != tuple(history[rsn]):
                self.violations.append(
                    OracleViolation(
                        kind="history-divergence",
                        node=node,
                        detail=(
                            f"final history at rsn {rsn} is {history[rsn]}, oracle "
                            f"recorded {recorded}"
                        ),
                    )
                )

    @property
    def consistent(self) -> bool:
        """No violations so far."""
        return not self.violations

    def deliveries_recorded(self) -> int:
        """Total distinct delivery events observed."""
        return len(self.graph.delivery)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ConsistencyOracle(deliveries={len(self.graph.delivery)}, "
            f"violations={len(self.violations)})"
        )


class NullOracle(ConsistencyOracle):
    """An oracle that observes nothing.

    Used for protocols whose post-rollback re-execution legitimately
    diverges from the original run (coordinated checkpointing re-executes
    live rather than replaying), where the replay-determinism checks do
    not apply.
    """

    def on_send(self, sender: int, ssn: int, dst: int, deliveries_so_far: int) -> None:
        pass

    def on_deliver(
        self, receiver: int, rsn: int, sender: int, ssn: int, digest: str
    ) -> None:
        pass

    def on_rollback(self, node: int, final_count: int) -> None:
        pass

    def on_gc(self, node: int, covered: int) -> None:
        pass

    def check_safety(self, final_histories: Dict[int, List[Tuple[int, int]]]) -> None:
        pass
