"""System assembly and execution.

:func:`build_system` wires every substrate together from a
:class:`~repro.core.config.SystemConfig`; :class:`System` runs the
simulation and produces a :class:`~repro.core.metrics.RunResult` with the
paper's measurements plus the oracle's consistency verdict.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.core.config import SystemConfig
from repro.core.metrics import MetricsCollector, RunResult
from repro.core.metrics_registry import MetricsRegistry
from repro.core.node import Node, NodeState
from repro.core.oracle import ConsistencyOracle, OracleViolation
from repro.core.output import OutputDevice
from repro.net.latency import AtmLinkModel
from repro.net.network import Network
from repro.net.topology import Topology
from repro.procs.failure import FailureDetector, FailureInjector
from repro.procs.process import ApplicationProcess
from repro.recovery import RECOVERY_MANAGERS
from repro.recovery.sequencer import Sequencer
from repro.sim.kernel import Simulator
from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceRecorder
from repro.workloads import make_workload


def _build_protocol(config: SystemConfig):
    from repro.protocols import PROTOCOLS

    params = dict(config.protocol_params)
    if config.protocol == "manetho":
        params.setdefault("n_nodes", config.n)
    if config.protocol == "adaptive" and config.adaptive is not None:
        for key, value in config.adaptive.protocol_kwargs().items():
            params.setdefault(key, value)
    return PROTOCOLS[config.protocol](**params)


class System:
    """A fully wired simulated system, ready to run."""

    def __init__(self, config: SystemConfig) -> None:
        config.validate()
        self.config = config
        # the default latency model doubles as the sharding lookahead
        # bound, so it is built before the kernel
        latency_model = AtmLinkModel(**config.network_params)
        if config.shard_count > 1:
            from repro.sim.shard import ShardedSimulator

            lookahead = latency_model.min_delay()
            if lookahead <= 0:
                raise ValueError(
                    "shard_count > 1 needs a positive minimum link latency "
                    "to derive the lookahead window"
                )
            # more shards than nodes (n apps + the sequencer) would only
            # add empty heaps to every window
            self.sim = ShardedSimulator(
                shard_count=min(config.shard_count, config.n + 1),
                lookahead=lookahead,
                tiebreak_seed=config.tiebreak_seed,
                drain_max_events=config.drain_max_events,
            )
        else:
            # shard_count == 1 keeps the plain single-heap kernel: the
            # seed goldens stay byte-identical by construction
            self.sim = Simulator(
                tiebreak_seed=config.tiebreak_seed,
                drain_max_events=config.drain_max_events,
            )
        self.rngs = RngRegistry(config.seed)
        self.trace = TraceRecorder(
            keep_events=config.keep_trace_events,
            spill_path=config.trace_spill_path,
            spill_window=config.trace_spill_window,
        )
        if config.shard_count > 1:
            # consumers (sanitizer, spans, spill) need the globally
            # time-monotone stream a single heap emits naturally; buffer
            # each window and release it time-sorted at the barrier
            self.trace.begin_merge_buffer()
            self.sim.add_barrier_hook(self._on_shard_barrier)
        if config.spans or config.sanitize:
            # the sanitizer needs span events to attach causal chains
            self.trace.spans.enable()
        self.profiler = None
        if config.profile:
            from repro.sim.profile import SimProfiler

            self.profiler = SimProfiler().attach(self.sim)
        self.sanitizer = None
        if config.sanitize:
            from repro.sanitizer.monitor import Sanitizer

            self.sanitizer = Sanitizer(config)
            self.trace.subscribe(self.sanitizer.on_event)
        self.registry = MetricsRegistry()
        self.metrics = MetricsCollector()
        from repro.core.oracle import NullOracle
        from repro.protocols import PROTOCOLS

        if PROTOCOLS[config.protocol].oracle_compatible:
            self.oracle = ConsistencyOracle()
        else:
            self.oracle = NullOracle()

        # topology covers the application nodes plus the sequencer
        self.topology = Topology(range(config.n + 1))
        fault_model = (
            config.faults.build_network_model() if config.faults is not None else None
        )
        self.network = Network(
            self.sim,
            self.topology,
            latency=latency_model,
            rngs=self.rngs,
            trace=self.trace,
            faults=fault_model,
            header_bytes=config.header_bytes,
            determinant_bytes=config.determinant_bytes,
        )
        self.network.registry = self.registry
        self.transport = None
        if config.transport == "reliable":
            from repro.net.transport import ReliableTransport, TransportParams

            self.transport = ReliableTransport(
                self.sim,
                self.network,
                params=TransportParams(**config.transport_params),
                trace=self.trace,
            )
            self.transport.registry = self.registry
        self.detector = FailureDetector(
            self.sim,
            detection_delay=config.detection_delay,
            trace=self.trace,
        )
        self.sequencer = Sequencer(
            config.sequencer_id, self.sim, self.network, self.trace
        )

        self.output_device = OutputDevice()
        workload = make_workload(config.workload, **config.workload_params)
        self.nodes: List[Node] = []
        realism = config.storage_realism
        dirty_per_delivery = (
            realism.dirty_bytes_per_delivery
            if realism is not None and realism.incremental_checkpoints
            else 0
        )
        for node_id in range(config.n):
            app = ApplicationProcess(
                node_id,
                config.n,
                workload,
                state_bytes=config.state_bytes,
                dirty_bytes_per_delivery=dirty_per_delivery,
            )
            protocol = _build_protocol(config)
            recovery = RECOVERY_MANAGERS[config.recovery]()
            node = Node(
                node_id=node_id,
                sim=self.sim,
                network=self.network,
                detector=self.detector,
                trace=self.trace,
                metrics=self.metrics,
                oracle=self.oracle,
                config=config,
                app=app,
                protocol=protocol,
                recovery=recovery,
                output_device=self.output_device,
            )
            node.storage.registry = self.registry
            self.nodes.append(node)

        # communication-cost ledger: host-side attribution of every wire
        # and storage byte to (process, peer, purpose, phase) accounts.
        # It never schedules events or draws randomness, so enabling it
        # leaves runs byte-identical.
        self.cost = None
        self.cost_sampler = None
        if config.cost_ledger or config.timeseries_window is not None:
            from repro.obs import CostLedger, CostSampler

            self.cost = CostLedger()
            if self.trace.spans.enabled:
                from repro.sim.spans import SpanChainTracker

                tracker = SpanChainTracker()
                self.trace.subscribe(tracker.on_event)
                self.cost.spans = tracker
            if config.timeseries_window is not None:
                self.cost_sampler = CostSampler(
                    self.cost,
                    config.timeseries_window,
                    max_samples=config.timeseries_max_samples,
                    registry=self.registry,
                    trace=self.trace,
                )
            self.network.cost = self.cost
            for node in self.nodes:
                node.storage.cost = self.cost
            self.metrics.cost = self.cost

        # detector events fan out to every node's recovery manager
        self.detector.add_listener(self._on_peer_status)

        self.injector = FailureInjector(
            self.sim,
            self.trace,
            self.crash_node,
            plans=list(config.crashes) + list(config.injections),
            network=self.network,
            storages={node.node_id: node.storage for node in self.nodes},
        )
        self._started = False
        self._registry_finalized = False

    # ------------------------------------------------------------------
    def _on_shard_barrier(self, window_start: float, window_end: float) -> None:
        self.trace.flush_merge_buffer()

    def _home(self, node_id: int):
        """Context manager pinning boot-time scheduling to a node's shard
        (a no-op null context on the single-heap kernel)."""
        from contextlib import nullcontext

        home = getattr(self.sim, "home", None)
        return nullcontext() if home is None else home(node_id)

    # ------------------------------------------------------------------
    def _on_peer_status(self, node_id: int, status: str) -> None:
        for node in self.nodes:
            if node.node_id != node_id and node.state != NodeState.CRASHED:
                node.recovery.on_peer_status(node_id, status)

    def crash_node(self, node_id: int) -> None:
        """Crash one application node (no-op if already crashed)."""
        self.nodes[node_id].crash()

    def node(self, node_id: int) -> Node:
        """Access one node (tests and examples)."""
        return self.nodes[node_id]

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Boot the sequencer and every node, and arm the failure plan."""
        if self._started:
            raise RuntimeError("system already started")
        self._started = True
        with self._home(self.config.sequencer_id):
            self.sequencer.start()
        for node in self.nodes:
            with self._home(node.node_id):
                node.start()
        self.injector.arm()

    def run(self) -> RunResult:
        """Execute to quiescence (or the configured horizon) and summarize."""
        if not self._started:
            self.start()
        if self.config.run_until is not None:
            self.sim.run(until=self.config.run_until, max_events=self.config.max_events)
        else:
            self.sim.run(max_events=self.config.max_events)
            if self.sim.pending_events and self.sim.events_processed >= self.config.max_events:
                raise RuntimeError(
                    f"run exceeded max_events={self.config.max_events}; "
                    f"likely a livelock in the configuration"
                )
        return self.summarize()

    # ------------------------------------------------------------------
    def _check_output_safety(self) -> None:
        """No committed output may stem from a permanently rolled-back
        delivery: the digest recorded at commit time must match the
        (surviving or replay-verified) delivery at that slot."""
        from repro.core.oracle import NullOracle

        if isinstance(self.oracle, NullOracle):
            return
        for record in self.output_device.outputs:
            node_id, rsn, _index = record.output_id
            digest = self.oracle._digest.get((node_id, rsn))
            expected = record.payload.get("_digest8")
            if expected is None:
                continue
            if digest is None or digest[:8] != expected:
                self.oracle.violations.append(
                    OracleViolation(
                        kind="output-from-rolled-back-state",
                        node=node_id,
                        detail=(
                            f"output {record.output_id} was released but the "
                            f"delivery that produced it did not survive"
                        ),
                    )
                )

    def summarize(self) -> RunResult:
        """Build the RunResult (including the oracle's safety check)."""
        self.metrics.close_open_blocks(self.sim.now)
        # flush any trace spill file so it holds the complete run
        self.trace.finalize()

        all_live = all(node.is_live for node in self.nodes)
        if all_live:
            final_histories = {
                node.node_id: list(node.app.delivery_history) for node in self.nodes
            }
            self.oracle.check_safety(final_histories)
            self._check_output_safety()

        storage_ops: Dict[int, Dict[str, Any]] = {}
        for node in self.nodes:
            stats = node.storage.stats
            store = node.checkpoints
            storage_ops[node.node_id] = {
                "reads": stats.reads,
                "writes": stats.writes,
                "bytes_read": stats.bytes_read,
                "bytes_written": stats.bytes_written,
                "sync_stall": stats.sync_stall_time.get(node.node_id, 0.0),
                "faults_injected": stats.faults_injected,
                "retry_time": stats.retry_time,
                "busy_time": stats.busy_time,
                # group commit
                "batched_appends": stats.batched_appends,
                "batch_flushes": stats.batch_flushes,
                "batch_lost": stats.batch_lost,
                # GC / compaction
                "bytes_reclaimed": stats.bytes_reclaimed,
                "reclaims": stats.reclaims,
                # incremental checkpoint chain
                "full_segments": store.full_segments,
                "delta_segments": store.delta_segments,
                "full_bytes_written": store.full_bytes_written,
                "delta_bytes_written": store.delta_bytes_written,
                "chain_length": store.chain_length,
            }

        piggyback_count = sum(
            node.protocol.piggyback_determinants_sent for node in self.nodes
        )
        extra = {
            "final_delivered_counts": {
                node.node_id: node.app.delivered_count for node in self.nodes
            },
            "piggyback_bytes": self.network.determinant_bytes * piggyback_count,
            "piggyback_determinants": piggyback_count,
            "safety_checked": all_live,
            "non_live_nodes": [
                node.node_id for node in self.nodes if not node.is_live
            ],
            "outputs": {
                "count": len(self.output_device),
                "duplicates_filtered": self.output_device.duplicates_filtered,
                "latencies": self.output_device.latencies(),
            },
            "protocol_stats": {
                node.node_id: node.protocol.stats() for node in self.nodes
            },
            "recovery_stats": {
                node.node_id: node.recovery.stats() for node in self.nodes
            },
            "trace_counters": dict(self.trace.counters),
            "events_processed": self.sim.events_processed,
            "kernel": {
                "live_events": self.sim.live_events,
                "pending_events": self.sim.pending_events,
                "compactions": self.sim.compactions,
                "pool_reuses": self.sim.pool_reuses,
                "pool_size": self.sim.pool_size,
                "shards": getattr(self.sim, "shard_count", 1),
                "windows": getattr(self.sim, "windows", 0),
            },
        }
        if self.transport is not None:
            extra["transport_stats"] = self.transport.stats.as_dict()

        # recovery-level instruments are derived once per run (the
        # per-event ones were fed live by net/storage/transport)
        if not self._registry_finalized:
            self._registry_finalized = True
            episode_hist = self.registry.histogram("recovery.episode_duration")
            for episode in self.metrics.episodes:
                if episode.complete:
                    episode_hist.observe(episode.total_duration)
            block_hist = self.registry.histogram("recovery.block_duration")
            for interval in self.metrics.block_intervals:
                if interval.end is not None:
                    block_hist.observe(interval.duration)
            self.registry.counter("recovery.episodes").inc(len(self.metrics.episodes))
            self.registry.counter("recovery.gather_restarts").inc(
                sum(e.gather_restarts for e in self.metrics.episodes)
            )
            # churn counters: handoffs/resumes are episode-attributed;
            # stale-epoch drops also happen at live nodes and the
            # sequencer, so they are summed from the managers directly
            self.registry.counter("recovery.leader_handoffs").inc(
                sum(e.leader_handoffs for e in self.metrics.episodes)
            )
            self.registry.counter("recovery.rounds_resumed").inc(
                sum(e.rounds_resumed for e in self.metrics.episodes)
            )
            stale_drops = sum(
                node.recovery.stale_epoch_drops for node in self.nodes
            )
            if self.sequencer is not None:
                stale_drops += self.sequencer.stale_epoch_drops
            self.registry.counter("recovery.stale_epoch_drops").inc(stale_drops)
            self.registry.counter("recovery.reply_invalidations").inc(
                sum(e.reply_invalidations for e in self.metrics.episodes)
            )
            self.registry.counter("protocol.piggyback_determinants").inc(
                piggyback_count
            )
        self.registry.gauge("sim.events_processed").set(self.sim.events_processed)
        extra["metrics"] = self.registry.snapshot()
        if self.cost is not None:
            if self.cost_sampler is not None:
                self.cost_sampler.finalize(self.sim.now)
                extra["timeseries"] = list(self.cost_sampler.samples)
            extra["cost"] = self.cost.summary(
                self.network.stats,
                {node.node_id: node.storage.stats for node in self.nodes},
            )
        if self.profiler is not None:
            extra["profile"] = self.profiler.snapshot()
        if self.sanitizer is not None:
            self.sanitizer.finalize()
            extra["sanitizer"] = self.sanitizer.report()

        return RunResult(
            config_name=self.config.name,
            end_time=self.sim.now,
            deliveries=dict(self.metrics.deliveries),
            episodes=list(self.metrics.episodes),
            blocked_time_by_node=self.metrics.blocked_time_by_node(),
            network=self.network.stats,
            storage_ops=storage_ops,
            oracle_violations=list(self.oracle.violations),
            digests={node.node_id: node.app.digest for node in self.nodes},
            orphan_rollbacks=self.metrics.orphan_rollbacks,
            extra=extra,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"System({self.config.describe()})"


def build_system(config: SystemConfig) -> System:
    """Construct (but do not run) a system from its configuration."""
    return System(config)


def run_config(config: SystemConfig) -> RunResult:
    """Build, run to completion, and summarize in one call."""
    return System(config).run()
