"""Parameter sweeps and repeated runs.

The benchmarks use :class:`ExperimentRunner` to run a family of
configurations (e.g. blocking vs non-blocking recovery over a sweep of
storage latencies), aggregate the metrics the paper reports, and format
them as rows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional

from repro.core.config import SystemConfig
from repro.core.metrics import RunResult
from repro.core.system import run_config


@dataclass
class SweepResult:
    """All runs of one experiment, keyed by configuration name."""

    results: Dict[str, List[RunResult]] = field(default_factory=dict)

    def add(self, result: RunResult) -> None:
        self.results.setdefault(result.config_name, []).append(result)

    def names(self) -> List[str]:
        return list(self.results)

    def of(self, name: str) -> List[RunResult]:
        return self.results[name]

    def single(self, name: str) -> RunResult:
        runs = self.results[name]
        if len(runs) != 1:
            raise ValueError(f"{name!r} has {len(runs)} runs, expected one")
        return runs[0]

    def mean_over_runs(self, name: str, fn: Callable[[RunResult], float]) -> float:
        runs = self.results[name]
        return sum(fn(r) for r in runs) / len(runs)

    def all_consistent(self) -> bool:
        return all(r.consistent for runs in self.results.values() for r in runs)


class ExperimentRunner:
    """Runs configurations (optionally repeated over seeds)."""

    def __init__(self, repetitions: int = 1, base_seed: int = 0) -> None:
        if repetitions < 1:
            raise ValueError(f"repetitions must be >= 1, got {repetitions!r}")
        self.repetitions = repetitions
        self.base_seed = base_seed

    def run(self, configs: Iterable[SystemConfig]) -> SweepResult:
        """Run every config ``repetitions`` times with derived seeds."""
        sweep = SweepResult()
        for config in configs:
            for rep in range(self.repetitions):
                variant = _reseed(config, self.base_seed + rep)
                sweep.add(run_config(variant))
        return sweep

    def run_one(self, config: SystemConfig) -> RunResult:
        """Convenience for a single configuration, single repetition."""
        return run_config(_reseed(config, self.base_seed))


def _reseed(config: SystemConfig, seed_offset: int) -> SystemConfig:
    """Copy a config with a repetition-specific seed.

    CrashPlan objects hold trigger state, so they are re-created per run.
    """
    import copy

    variant = copy.deepcopy(config)
    variant.seed = config.seed + seed_offset * 10_007
    for plan in variant.crashes:
        plan._seen = 0
        plan._armed = True
    return variant
