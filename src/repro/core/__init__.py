"""Core: the assembled rollback-recovery system and its harness.

* :mod:`repro.core.config` -- one declarative description of a run
  (n, protocol, f, recovery algorithm, workload, failure schedule,
  hardware parameters).
* :mod:`repro.core.node` -- a simulated host: application process +
  logging protocol + recovery manager + incarnation bookkeeping.
* :mod:`repro.core.system` -- builds and runs a whole system, producing
  a :class:`~repro.core.metrics.RunResult`.
* :mod:`repro.core.metrics` -- measurements the paper reports (blocked
  time of live processes, recovery durations, control-message overhead,
  stable-storage stalls).
* :mod:`repro.core.oracle` -- an omniscient observer (zero simulated
  cost) that checks the paper's safety and liveness properties on every
  run: replayed deliveries match the original order and digests, and no
  delivery visible at a live process depends on a rolled-back delivery.
* :mod:`repro.core.experiment` -- parameter sweeps and repetition.
"""

from repro.core.config import SystemConfig
from repro.core.experiment import ExperimentRunner, SweepResult
from repro.core.metrics import MetricsCollector, RecoveryEpisode, RunResult
from repro.core.node import Node, NodeState
from repro.core.oracle import ConsistencyOracle, OracleViolation
from repro.core.system import System, build_system, run_config

__all__ = [
    "SystemConfig",
    "ExperimentRunner",
    "SweepResult",
    "MetricsCollector",
    "RecoveryEpisode",
    "RunResult",
    "Node",
    "NodeState",
    "ConsistencyOracle",
    "OracleViolation",
    "System",
    "build_system",
    "run_config",
]
