"""Run measurements.

The paper's evaluation reports, per experiment: how long failed processes
took to recover, how long each *live* process was blocked (50 ms for the
blocking algorithm on one failure; zero for the new algorithm), and the
communication overhead of recovery (milliseconds' worth of extra control
messages).  :class:`MetricsCollector` gathers exactly those quantities;
:class:`RunResult` is the immutable summary a benchmark prints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.net.network import MessageKind, NetworkStats


@dataclass
class RecoveryEpisode:
    """One crash-to-recovered episode of one node."""

    node: int
    crash_time: float
    restart_time: Optional[float] = None  # detection fired, restore begins
    restored_time: Optional[float] = None  # checkpoint reloaded
    replay_start_time: Optional[float] = None  # depinfo in hand
    complete_time: Optional[float] = None  # process live again
    gather_restarts: int = 0  # times the leader restarted the gather
    leader_handoffs: int = 0  # rounds adopted from a dead leader
    rounds_resumed: int = 0  # gather rounds resumed rather than restarted
    reply_invalidations: int = 0  # single replies voided by a failure
    stale_epoch_drops: int = 0  # dead-epoch control messages rejected
    was_leader: bool = False
    replayed_deliveries: int = 0

    @property
    def detection_duration(self) -> Optional[float]:
        if self.restart_time is None:
            return None
        return self.restart_time - self.crash_time

    @property
    def restore_duration(self) -> Optional[float]:
        if self.restored_time is None or self.restart_time is None:
            return None
        return self.restored_time - self.restart_time

    @property
    def total_duration(self) -> Optional[float]:
        """Crash to live again -- the paper's "time to recover"."""
        if self.complete_time is None:
            return None
        return self.complete_time - self.crash_time

    @property
    def complete(self) -> bool:
        return self.complete_time is not None


@dataclass
class BlockInterval:
    """A period during which a live process could not make progress."""

    node: int
    start: float
    end: Optional[float] = None

    @property
    def duration(self) -> float:
        if self.end is None:
            raise ValueError("interval still open")
        return self.end - self.start


class MetricsCollector:
    """Accumulates per-run measurements as the simulation executes."""

    def __init__(self) -> None:
        self.episodes: List[RecoveryEpisode] = []
        self._open_episode: Dict[int, RecoveryEpisode] = {}
        self.block_intervals: List[BlockInterval] = []
        self._open_block: Dict[int, BlockInterval] = {}
        self.deliveries: Dict[int, int] = {}
        self.replayed: Dict[int, int] = {}
        self.rolled_back_deliveries: int = 0
        self.orphan_rollbacks: int = 0
        #: optional repro.obs.CostLedger (set by System); episode starts
        #: and ends move the ledger's phase between failure-free and the
        #: numbered recovery episodes
        self.cost = None

    # -- recovery episodes ---------------------------------------------
    def start_episode(self, node: int, crash_time: float) -> RecoveryEpisode:
        episode = RecoveryEpisode(node=node, crash_time=crash_time)
        self.episodes.append(episode)
        self._open_episode[node] = episode
        if self.cost is not None:
            self.cost.begin_episode(node)
        return episode

    def episode_of(self, node: int) -> Optional[RecoveryEpisode]:
        """The node's in-progress episode, if any."""
        return self._open_episode.get(node)

    def finish_episode(self, node: int, complete_time: float) -> None:
        episode = self._open_episode.pop(node, None)
        if episode is not None:
            episode.complete_time = complete_time
            if self.cost is not None:
                self.cost.end_episode(node)

    # -- blocking -------------------------------------------------------
    def block_start(self, node: int, time: float) -> None:
        if node not in self._open_block:
            interval = BlockInterval(node=node, start=time)
            self.block_intervals.append(interval)
            self._open_block[node] = interval

    def block_end(self, node: int, time: float) -> None:
        interval = self._open_block.pop(node, None)
        if interval is not None:
            interval.end = time

    def close_open_blocks(self, time: float) -> None:
        """End-of-run hygiene: close any interval still open."""
        for node in list(self._open_block):
            self.block_end(node, time)

    def blocked_time(self, node: int) -> float:
        """Total blocked seconds for one node (closed intervals only)."""
        return sum(
            iv.duration for iv in self.block_intervals
            if iv.node == node and iv.end is not None
        )

    def blocked_time_by_node(self) -> Dict[int, float]:
        totals: Dict[int, float] = {}
        for iv in self.block_intervals:
            if iv.end is not None:
                totals[iv.node] = totals.get(iv.node, 0.0) + iv.duration
        return totals

    # -- progress --------------------------------------------------------
    def count_delivery(self, node: int, during_replay: bool) -> None:
        self.deliveries[node] = self.deliveries.get(node, 0) + 1
        if during_replay:
            self.replayed[node] = self.replayed.get(node, 0) + 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MetricsCollector(episodes={len(self.episodes)}, "
            f"blocks={len(self.block_intervals)})"
        )


@dataclass
class RunResult:
    """Summary of one completed simulation run."""

    config_name: str
    end_time: float
    deliveries: Dict[int, int]
    episodes: List[RecoveryEpisode]
    blocked_time_by_node: Dict[int, float]
    network: NetworkStats
    storage_ops: Dict[int, Dict[str, Any]]
    oracle_violations: List[Any]
    digests: Dict[int, str]
    orphan_rollbacks: int = 0
    extra: Dict[str, Any] = field(default_factory=dict)

    # -- derived quantities the benchmarks report -----------------------
    @property
    def total_deliveries(self) -> int:
        return sum(self.deliveries.values())

    @property
    def final_progress(self) -> int:
        """Sum of post-run delivered counts (replays not double-counted)."""
        counts = self.extra.get("final_delivered_counts", {})
        return sum(counts.values())

    @property
    def total_blocked_time(self) -> float:
        return sum(self.blocked_time_by_node.values())

    def mean_blocked_time(self, exclude: Optional[List[int]] = None) -> float:
        """Average blocked time over live processes.

        ``exclude`` lists the nodes that crashed (their stall is recovery,
        not intrusion).
        """
        excluded = set(exclude or [])
        nodes = [n for n in self.deliveries if n not in excluded]
        if not nodes:
            return 0.0
        return sum(self.blocked_time_by_node.get(n, 0.0) for n in nodes) / len(nodes)

    def recovery_durations(self) -> List[float]:
        return [e.total_duration for e in self.episodes if e.complete]

    def recovery_messages(self) -> int:
        return self.network.of_kind(MessageKind.RECOVERY)[0]

    def recovery_bytes(self) -> int:
        return self.network.of_kind(MessageKind.RECOVERY)[1]

    def piggyback_bytes(self) -> int:
        """Bytes attributable to determinant piggybacking (failure-free cost)."""
        return self.extra.get("piggyback_bytes", 0)

    # -- reliability overhead (faulty-network runs) ----------------------
    def retransmissions(self) -> int:
        """Transport retransmissions (0 on the default perfect network)."""
        return self.network.retransmits

    def retransmission_bytes(self) -> int:
        return self.network.retransmit_bytes

    def transport_messages(self) -> int:
        """Transport control messages (cumulative acks)."""
        return self.network.of_kind(MessageKind.TRANSPORT)[0]

    def transport_bytes(self) -> int:
        return self.network.of_kind(MessageKind.TRANSPORT)[1]

    def reliability_overhead_bytes(self) -> int:
        """Total wire bytes spent re-establishing reliable channels:
        retransmitted copies plus acknowledgement traffic."""
        return self.retransmission_bytes() + self.transport_bytes()

    def drops_by_cause(self) -> Dict[str, int]:
        """Dropped messages split by cause (``no_handler`` vs injected
        ``loss``/``partition``/``scheduled``)."""
        return dict(self.network.drops_by_cause)

    def injected_drops(self) -> int:
        """Drops caused by the fault model (not by crashed destinations)."""
        return sum(
            count
            for cause, count in self.network.drops_by_cause.items()
            if cause != "no_handler"
        )

    @property
    def consistent(self) -> bool:
        """No oracle violation was detected during or after the run."""
        return not self.oracle_violations

    def sync_stall_time(self, node: int) -> float:
        """Synchronous stable-storage stall charged to ``node``."""
        ops = self.storage_ops.get(node, {})
        return ops.get("sync_stall", 0.0)

    # -- output commit ---------------------------------------------------
    def output_latencies(self) -> List[float]:
        """Commit latency of every output released to the outside world."""
        return list(self.extra.get("outputs", {}).get("latencies", []))

    @property
    def outputs_committed(self) -> int:
        return self.extra.get("outputs", {}).get("count", 0)

    @property
    def output_duplicates_filtered(self) -> int:
        return self.extra.get("outputs", {}).get("duplicates_filtered", 0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RunResult({self.config_name}, t={self.end_time:.3f}, "
            f"deliveries={self.total_deliveries}, "
            f"episodes={len(self.episodes)}, consistent={self.consistent})"
        )
