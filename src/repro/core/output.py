"""The outside world: output commit.

Rollback-recovery's second classic yardstick (alongside blocked time) is
**output-commit latency**: a message to the outside world (a terminal, a
printer, another organisation) cannot be rolled back, so a protocol must
delay it until the state that produced it is guaranteed recoverable.
Manetho's headline feature was "fast output commit"; pessimistic logging
commits instantly; optimistic logging and coordinated checkpointing
commit slowly.  This module models the outside world and the
measurements.

An output is identified by ``(node, rsn, index)`` -- the delivery that
produced it and its position among that delivery's outputs.  Replay
regenerates the same ids, so the :class:`OutputDevice` (like any real
terminal driver or sequence-numbered external channel) filters
duplicates and the test suite can assert exactly-once release.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.procs.process import OUTPUT_DST  # noqa: F401  (canonical home)


@dataclass(frozen=True)
class CommittedOutput:
    """One output released to the outside world."""

    node: int
    output_id: Tuple[int, int, int]
    payload: dict
    requested_at: float
    committed_at: float

    @property
    def latency(self) -> float:
        """Output-commit latency: request to release."""
        return self.committed_at - self.requested_at


class OutputDevice:
    """The (never-failing, idempotent) outside world.

    Duplicate releases of the same output id -- a replayed delivery
    re-requesting an output that committed before the crash -- are
    filtered and counted, modelling a sequence-numbered external channel.
    """

    def __init__(self) -> None:
        self.outputs: List[CommittedOutput] = []
        self._seen: Dict[Tuple[int, int, int], CommittedOutput] = {}
        self.duplicates_filtered = 0

    def release(
        self,
        node: int,
        output_id: Tuple[int, int, int],
        payload: dict,
        requested_at: float,
        committed_at: float,
    ) -> bool:
        """Deliver one output to the outside world.

        Returns True if the output was new (False: duplicate, filtered).
        """
        if output_id in self._seen:
            self.duplicates_filtered += 1
            return False
        record = CommittedOutput(
            node=node,
            output_id=output_id,
            payload=dict(payload),
            requested_at=requested_at,
            committed_at=committed_at,
        )
        self._seen[output_id] = record
        self.outputs.append(record)
        return True

    # ------------------------------------------------------------------
    def latencies(self) -> List[float]:
        """Commit latency of every released output."""
        return [record.latency for record in self.outputs]

    def by_node(self) -> Dict[int, List[CommittedOutput]]:
        grouped: Dict[int, List[CommittedOutput]] = {}
        for record in self.outputs:
            grouped.setdefault(record.node, []).append(record)
        return grouped

    def __len__(self) -> int:
        return len(self.outputs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"OutputDevice({len(self.outputs)} outputs, "
            f"{self.duplicates_filtered} duplicates filtered)"
        )
