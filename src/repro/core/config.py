"""Declarative run configuration.

A :class:`SystemConfig` fully determines a simulation: same config +
same seed = identical run, event for event.  Defaults follow the paper's
testbed (Section 5): eight workstations, 155 Mb/s ATM network, ~1 MB
process images, mid-90s stable storage, and "several seconds" of failure
detection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.procs.failure import DEFAULT_DETECTION_DELAY, CrashPlan, TriggeredPlan
from repro.storage.stable import DEFAULT_BANDWIDTH, DEFAULT_OP_LATENCY


@dataclass
class FaultConfig:
    """Static fault environment of a run (see :mod:`repro.net.faults` and
    :mod:`repro.storage.stable`).

    These faults are *on from time zero* (dynamic, mid-run faults are
    injected with the plans in :mod:`repro.procs.failure` instead).  The
    all-defaults instance describes the seed's perfect environment; a
    config with ``faults=None`` skips even building the models, keeping
    the default path byte-identical to the seed.
    """

    # -- network ----------------------------------------------------------
    #: probability each transmission is silently lost
    loss_prob: float = 0.0
    #: probability a surviving transmission is delivered twice
    dup_prob: float = 0.0
    #: probability a surviving transmission gets reordering delay
    reorder_prob: float = 0.0
    #: maximum extra delay (uniform) applied to reordered messages
    reorder_delay: float = 0.002
    #: per-directed-link overrides, (src, dst) -> kwargs for LinkFaultSpec
    link_overrides: Dict[Tuple[int, int], Dict[str, float]] = field(
        default_factory=dict
    )
    #: partitions active from the start: (groups, heal_time_or_None)
    partitions: List[Tuple[Sequence[Iterable[int]], Optional[float]]] = field(
        default_factory=list
    )

    # -- stable storage ---------------------------------------------------
    #: probability each storage attempt fails transiently (every node)
    storage_fail_prob: float = 0.0
    #: outage windows (start, end_or_None) applied to every node
    storage_windows: List[Tuple[float, Optional[float]]] = field(default_factory=list)
    #: retry policy kwargs (base_delay, multiplier, max_delay, max_attempts)
    storage_retry: Dict[str, Any] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def any_network(self) -> bool:
        """Whether a network fault model is needed at all."""
        return bool(
            self.loss_prob
            or self.dup_prob
            or self.reorder_prob
            or self.link_overrides
            or self.partitions
        )

    def any_storage(self) -> bool:
        """Whether per-node storage fault models are needed."""
        return bool(self.storage_fail_prob or self.storage_windows)

    def validate(self) -> None:
        for name in ("loss_prob", "dup_prob", "reorder_prob", "storage_fail_prob"):
            value = getattr(self, name)
            if not 0.0 <= value < 1.0:
                raise ValueError(f"{name} must be in [0, 1), got {value!r}")
        if self.reorder_delay < 0:
            raise ValueError("reorder_delay must be non-negative")

    def build_network_model(self):
        """Materialize the :class:`~repro.net.faults.NetworkFaultModel`
        (or ``None`` when no network fault is configured)."""
        if not self.any_network():
            return None
        from repro.net.faults import LinkFaultSpec, NetworkFaultModel, Partition

        model = NetworkFaultModel(
            default=LinkFaultSpec(
                loss_prob=self.loss_prob,
                dup_prob=self.dup_prob,
                reorder_prob=self.reorder_prob,
                reorder_delay=self.reorder_delay,
            )
        )
        for (src, dst), kwargs in self.link_overrides.items():
            model.set_link(src, dst, LinkFaultSpec(**kwargs))
        for groups, heal in self.partitions:
            model.add_partition(Partition(groups, start=0.0, end=heal))
        return model

    def build_storage_model(self):
        """Materialize one :class:`~repro.storage.stable.StorageFaultModel`
        (each node gets its own instance; ``None`` if storage is clean)."""
        if not self.any_storage():
            return None
        from repro.storage.stable import StorageFaultModel, StorageRetryPolicy

        return StorageFaultModel(
            fail_prob=self.storage_fail_prob,
            windows=[tuple(w) for w in self.storage_windows],
            retry=StorageRetryPolicy(**self.storage_retry),
        )


@dataclass
class StorageRealismConfig:
    """Storage-stack optimisations layered over the flat cost model.

    The seed's stable store charges one full-latency operation per write
    and a full ``state_bytes`` transfer per checkpoint.  This config
    enables the three classic optimisations real logging stacks use to
    amortise those costs -- incremental (copy-on-write) checkpoints,
    group commit of log appends, and log compaction with reclaimed-space
    accounting.  A config with ``storage_realism=None`` (the default)
    never builds any of this machinery, keeping the default path
    byte-identical to the seed.
    """

    # -- incremental checkpoints -----------------------------------------
    #: write delta checkpoints sized by the process's dirty bytes instead
    #: of a full ``state_bytes`` image every time
    incremental_checkpoints: bool = False
    #: force a full checkpoint every k-th checkpoint, bounding the delta
    #: chain a restart must read back
    full_checkpoint_every: int = 8
    #: modelled bytes dirtied by one delivery (saturates at state_bytes)
    dirty_bytes_per_delivery: int = 65_536
    #: floor on a delta segment's charged size (page-table + metadata)
    min_delta_bytes: int = 4_096

    # -- group commit ------------------------------------------------------
    #: coalesce pending log appends into one stable operation
    group_commit: bool = False
    #: flush window: an append waits at most this long before its batch
    #: is forced to the device
    batch_window: float = 0.005
    #: flush immediately once this many appends are queued
    batch_max_ops: int = 32
    #: flush immediately once this many bytes are queued
    batch_max_bytes: int = 262_144

    # -- compaction / GC ---------------------------------------------------
    #: reclaim checkpoint-covered log entries and superseded snapshots
    #: (changes replay-read sizes, so it is opt-in per run)
    log_compaction: bool = False

    # ------------------------------------------------------------------
    def any_enabled(self) -> bool:
        """Whether any optimisation deviates from the seed's flat model."""
        return bool(
            self.incremental_checkpoints or self.group_commit or self.log_compaction
        )

    def validate(self) -> None:
        """Raise ValueError on inconsistent settings."""
        if self.full_checkpoint_every < 1:
            raise ValueError(
                f"full_checkpoint_every must be >= 1, got {self.full_checkpoint_every!r}"
            )
        if self.dirty_bytes_per_delivery < 0:
            raise ValueError("dirty_bytes_per_delivery must be non-negative")
        if self.min_delta_bytes < 0:
            raise ValueError("min_delta_bytes must be non-negative")
        if self.batch_window < 0:
            raise ValueError("batch_window must be non-negative")
        if self.batch_max_ops < 1:
            raise ValueError(f"batch_max_ops must be >= 1, got {self.batch_max_ops!r}")
        if self.batch_max_bytes < 1:
            raise ValueError(
                f"batch_max_bytes must be >= 1, got {self.batch_max_bytes!r}"
            )

    def build_group_commit(self):
        """Materialize the :class:`~repro.storage.stable.GroupCommitPolicy`
        (or ``None`` when group commit is disabled)."""
        if not self.group_commit:
            return None
        from repro.storage.stable import GroupCommitPolicy

        return GroupCommitPolicy(
            window=self.batch_window,
            max_ops=self.batch_max_ops,
            max_bytes=self.batch_max_bytes,
        )


@dataclass
class AdaptiveConfig:
    """Knobs of the adaptive hybrid-logging stack (``protocol="adaptive"``).

    The adaptive protocol migrates each process independently between
    pessimistic / FBL(f) / optimistic logging modes at runtime under a
    byte-cost model (see :mod:`repro.protocols.adaptive`).  Everything
    here is count-based or a pure model constant — never wall-clock —
    so replayed decisions regenerate exactly.
    """

    #: mode every process starts in: pessimistic | fbl | optimistic
    initial_mode: str = "fbl"
    #: replication degree of the fbl mode (and of piggyback stability)
    f: int = 2
    #: controller cadence, in own deliveries
    eval_every: int = 16
    #: minimum own deliveries between two switches of one process
    min_dwell: int = 48
    #: switch only when best-mode cost < hysteresis * current-mode cost
    hysteresis: float = 0.9
    #: modelled on-disk bytes of one determinant record in the adaptive log
    det_record_bytes: int = 32

    def validate(self) -> None:
        """Raise ValueError on inconsistent settings."""
        from repro.protocols.adaptive import MODES

        if self.initial_mode not in MODES:
            raise ValueError(
                f"initial_mode must be one of {MODES}, got {self.initial_mode!r}"
            )
        if self.f < 1:
            raise ValueError(f"f must be >= 1, got {self.f!r}")
        if self.eval_every < 1:
            raise ValueError(f"eval_every must be >= 1, got {self.eval_every!r}")
        if self.min_dwell < 0:
            raise ValueError(f"min_dwell must be >= 0, got {self.min_dwell!r}")
        if not (0.0 < self.hysteresis <= 1.0):
            raise ValueError(f"hysteresis must be in (0, 1], got {self.hysteresis!r}")
        if self.det_record_bytes < 1:
            raise ValueError(
                f"det_record_bytes must be >= 1, got {self.det_record_bytes!r}"
            )

    def protocol_kwargs(self) -> Dict[str, Any]:
        """Constructor kwargs for :class:`repro.protocols.adaptive.AdaptiveLogging`."""
        return {
            "initial_mode": self.initial_mode,
            "f": self.f,
            "eval_every": self.eval_every,
            "min_dwell": self.min_dwell,
            "hysteresis": self.hysteresis,
            "det_record_bytes": self.det_record_bytes,
        }


@dataclass
class SystemConfig:
    """Everything needed to build and run one simulated system."""

    # -- topology ---------------------------------------------------------
    #: number of application processes (the paper used eight)
    n: int = 8
    #: root seed for every random stream in the run
    seed: int = 0
    #: label used in result tables
    name: str = "run"

    # -- protocol stack ---------------------------------------------------
    #: protocol name: fbl | sender_based | manetho | pessimistic |
    #: optimistic | coordinated
    protocol: str = "fbl"
    #: protocol construction parameters (e.g. {"f": 2} for fbl)
    protocol_params: Dict[str, Any] = field(default_factory=dict)
    #: recovery algorithm: nonblocking (the paper's new algorithm) |
    #: blocking (the message-optimal baseline) | local | optimistic |
    #: coordinated
    recovery: str = "nonblocking"

    # -- workload -----------------------------------------------------------
    #: workload name, see repro.workloads
    workload: str = "uniform"
    workload_params: Dict[str, Any] = field(default_factory=dict)

    # -- failure model ------------------------------------------------------
    #: scheduled / triggered crashes
    crashes: List[CrashPlan] = field(default_factory=list)
    #: additional fault plans (link faults, partitions, storage outages)
    injections: List[TriggeredPlan] = field(default_factory=list)
    #: static fault environment; None = the seed's perfect network/storage
    faults: Optional[FaultConfig] = None
    #: the paper's "several seconds of timeouts and retrials"
    detection_delay: float = DEFAULT_DETECTION_DELAY

    # -- transport ----------------------------------------------------------
    #: "raw" = the seed's perfect channels; "reliable" = layer the
    #: retransmitting transport of repro.net.transport over the network
    transport: str = "raw"
    #: kwargs for repro.net.transport.TransportParams
    transport_params: Dict[str, Any] = field(default_factory=dict)

    # -- hardware model -------------------------------------------------------
    #: process image size ("about one Mbyte" in the paper)
    state_bytes: int = 1_000_000
    #: per-operation stable-storage latency (seek + rotation)
    storage_op_latency: float = DEFAULT_OP_LATENCY
    #: stable-storage bandwidth, bytes/second
    storage_bandwidth: float = DEFAULT_BANDWIDTH
    #: network parameters (passed to AtmLinkModel); None = paper defaults
    network_params: Dict[str, Any] = field(default_factory=dict)
    #: bytes charged per message header (addresses, type, incarnation);
    #: the default matches the seed's hardcoded wire-cost model
    header_bytes: int = 64
    #: bytes charged per piggybacked determinant
    determinant_bytes: int = 32
    #: storage-stack optimisations (incremental checkpoints, group
    #: commit, compaction); None = the seed's flat cost model
    storage_realism: Optional[StorageRealismConfig] = None
    #: knobs of the adaptive hybrid-logging stack; only read when
    #: ``protocol="adaptive"`` (None = that protocol's defaults)
    adaptive: Optional[AdaptiveConfig] = None

    # -- policies ----------------------------------------------------------
    #: take a checkpoint every k deliveries (0 = only the initial one)
    checkpoint_every: int = 0
    #: protocol message types deferred while a node is blocked
    blocked_protocol_types: FrozenSet[str] = frozenset({"retransmit_data"})

    # -- observability ------------------------------------------------------
    #: record causal spans (repro.sim.spans) into the trace
    spans: bool = False
    #: enable wall-clock sim-kernel profiling (repro.sim.profile)
    profile: bool = False
    #: retain the full trace event list; False keeps only counters
    #: (the counters-only fast path for large parameter sweeps)
    keep_trace_events: bool = True
    #: stream retained trace events to this JSONL file, keeping only a
    #: bounded window in memory (flat-memory tracing at any horizon);
    #: the file is `repro trace`-compatible.  Only meaningful with
    #: keep_trace_events on
    trace_spill_path: Optional[str] = None
    #: in-memory window size for the trace spill log
    trace_spill_window: int = 10_000
    #: run the online invariant monitor (repro.sanitizer) over the trace
    #: stream; implies spans so violations carry causal span chains
    sanitize: bool = False
    #: perturb same-instant event ordering in the kernel with this seed
    #: (None = the seed's exact FIFO order); used by `repro check` to
    #: flag hidden schedule races across replicas
    tiebreak_seed: Optional[int] = None
    #: attribute every wire/storage byte to a (process, peer, purpose,
    #: phase) account (repro.obs); conservation-checked, zero-cost off
    cost_ledger: bool = False
    #: sample the cost ledger into windows of this many virtual seconds
    #: (RunResult.extra["timeseries"]); None = no sampler; setting it
    #: implies cost_ledger
    timeseries_window: Optional[float] = None
    #: bound on retained samples: past it, adjacent windows merge and
    #: the width doubles (memory stays flat at any horizon)
    timeseries_max_samples: int = 512

    # -- run control -----------------------------------------------------------
    #: partition the event heap across this many shards, each advancing
    #: up to a conservative lookahead horizon (the minimum link latency);
    #: 1 = the classic single heap, byte-identical to the seed goldens.
    #: Any shard count yields the same semantic fingerprint for a given
    #: seed (enforced by the shard-parity CI job); the exact event
    #: interleaving -- and thus strict per-run details -- is deterministic
    #: per (seed, shard_count)
    shard_count: int = 1
    #: stop at this virtual time; None runs to quiescence
    run_until: Optional[float] = None
    #: safety valve on total events
    max_events: int = 5_000_000
    #: ceiling for Simulator.drain when no explicit max_events is given;
    #: None = the kernel default (repro.sim.kernel.DRAIN_MAX_EVENTS)
    drain_max_events: Optional[int] = None

    # ------------------------------------------------------------------
    @property
    def sequencer_id(self) -> int:
        """Node id of the never-failing ordinal service."""
        return self.n

    def validate(self) -> None:
        """Raise ValueError on inconsistent settings."""
        from repro.protocols import PROTOCOLS
        from repro.recovery import RECOVERY_MANAGERS

        if self.n < 2:
            raise ValueError(f"need at least two processes, got n={self.n}")
        if self.protocol not in PROTOCOLS:
            raise ValueError(
                f"unknown protocol {self.protocol!r}; choose from {sorted(PROTOCOLS)}"
            )
        if self.recovery not in RECOVERY_MANAGERS:
            raise ValueError(
                f"unknown recovery {self.recovery!r}; "
                f"choose from {sorted(RECOVERY_MANAGERS)}"
            )
        supported = PROTOCOLS[self.protocol].supported_recovery
        if self.recovery not in supported:
            raise ValueError(
                f"protocol {self.protocol!r} supports recovery {supported}, "
                f"not {self.recovery!r}"
            )
        for plan in self.crashes:
            if not 0 <= plan.node < self.n:
                raise ValueError(f"crash plan references unknown node {plan.node}")
        if self.transport not in ("raw", "reliable"):
            raise ValueError(
                f"transport must be 'raw' or 'reliable', got {self.transport!r}"
            )
        if self.faults is not None:
            self.faults.validate()
            if (
                self.transport == "raw"
                and (self.faults.loss_prob or self.faults.partitions)
            ):
                # loss without retransmission silently stalls protocols that
                # assume reliable channels; make the footgun explicit
                raise ValueError(
                    "message loss/partitions need transport='reliable' "
                    "(the protocols assume reliable channels)"
                )
        if self.detection_delay < 0:
            raise ValueError("detection_delay must be non-negative")
        if self.state_bytes <= 0:
            raise ValueError("state_bytes must be positive")
        if self.header_bytes < 0:
            raise ValueError("header_bytes must be non-negative")
        if self.determinant_bytes < 0:
            raise ValueError("determinant_bytes must be non-negative")
        if self.timeseries_window is not None and self.timeseries_window <= 0:
            raise ValueError("timeseries_window must be positive")
        if self.timeseries_max_samples < 2:
            raise ValueError("timeseries_max_samples must be >= 2")
        if self.trace_spill_window < 1:
            raise ValueError("trace_spill_window must be >= 1")
        if self.drain_max_events is not None and self.drain_max_events < 1:
            raise ValueError("drain_max_events must be >= 1")
        if self.shard_count < 1:
            raise ValueError(f"shard_count must be >= 1, got {self.shard_count!r}")
        if self.storage_realism is not None:
            self.storage_realism.validate()
        if self.adaptive is not None:
            self.adaptive.validate()

    def describe(self) -> str:
        """One-line human summary for reports."""
        f = self.protocol_params.get("f")
        proto = self.protocol if f is None else f"{self.protocol}(f={f})"
        return (
            f"{self.name}: n={self.n} {proto} + {self.recovery} recovery, "
            f"workload={self.workload}, crashes={len(self.crashes)}"
        )
