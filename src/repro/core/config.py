"""Declarative run configuration.

A :class:`SystemConfig` fully determines a simulation: same config +
same seed = identical run, event for event.  Defaults follow the paper's
testbed (Section 5): eight workstations, 155 Mb/s ATM network, ~1 MB
process images, mid-90s stable storage, and "several seconds" of failure
detection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Optional

from repro.procs.failure import DEFAULT_DETECTION_DELAY, CrashPlan
from repro.storage.stable import DEFAULT_BANDWIDTH, DEFAULT_OP_LATENCY


@dataclass
class SystemConfig:
    """Everything needed to build and run one simulated system."""

    # -- topology ---------------------------------------------------------
    #: number of application processes (the paper used eight)
    n: int = 8
    #: root seed for every random stream in the run
    seed: int = 0
    #: label used in result tables
    name: str = "run"

    # -- protocol stack ---------------------------------------------------
    #: protocol name: fbl | sender_based | manetho | pessimistic |
    #: optimistic | coordinated
    protocol: str = "fbl"
    #: protocol construction parameters (e.g. {"f": 2} for fbl)
    protocol_params: Dict[str, Any] = field(default_factory=dict)
    #: recovery algorithm: nonblocking (the paper's new algorithm) |
    #: blocking (the message-optimal baseline) | local | optimistic |
    #: coordinated
    recovery: str = "nonblocking"

    # -- workload -----------------------------------------------------------
    #: workload name, see repro.workloads
    workload: str = "uniform"
    workload_params: Dict[str, Any] = field(default_factory=dict)

    # -- failure model ------------------------------------------------------
    #: scheduled / triggered crashes
    crashes: List[CrashPlan] = field(default_factory=list)
    #: the paper's "several seconds of timeouts and retrials"
    detection_delay: float = DEFAULT_DETECTION_DELAY

    # -- hardware model -------------------------------------------------------
    #: process image size ("about one Mbyte" in the paper)
    state_bytes: int = 1_000_000
    #: per-operation stable-storage latency (seek + rotation)
    storage_op_latency: float = DEFAULT_OP_LATENCY
    #: stable-storage bandwidth, bytes/second
    storage_bandwidth: float = DEFAULT_BANDWIDTH
    #: network parameters (passed to AtmLinkModel); None = paper defaults
    network_params: Dict[str, Any] = field(default_factory=dict)

    # -- policies ----------------------------------------------------------
    #: take a checkpoint every k deliveries (0 = only the initial one)
    checkpoint_every: int = 0
    #: protocol message types deferred while a node is blocked
    blocked_protocol_types: FrozenSet[str] = frozenset({"retransmit_data"})

    # -- run control -----------------------------------------------------------
    #: stop at this virtual time; None runs to quiescence
    run_until: Optional[float] = None
    #: safety valve on total events
    max_events: int = 5_000_000

    # ------------------------------------------------------------------
    @property
    def sequencer_id(self) -> int:
        """Node id of the never-failing ordinal service."""
        return self.n

    def validate(self) -> None:
        """Raise ValueError on inconsistent settings."""
        from repro.protocols import PROTOCOLS
        from repro.recovery import RECOVERY_MANAGERS

        if self.n < 2:
            raise ValueError(f"need at least two processes, got n={self.n}")
        if self.protocol not in PROTOCOLS:
            raise ValueError(
                f"unknown protocol {self.protocol!r}; choose from {sorted(PROTOCOLS)}"
            )
        if self.recovery not in RECOVERY_MANAGERS:
            raise ValueError(
                f"unknown recovery {self.recovery!r}; "
                f"choose from {sorted(RECOVERY_MANAGERS)}"
            )
        supported = PROTOCOLS[self.protocol].supported_recovery
        if self.recovery not in supported:
            raise ValueError(
                f"protocol {self.protocol!r} supports recovery {supported}, "
                f"not {self.recovery!r}"
            )
        for plan in self.crashes:
            if not 0 <= plan.node < self.n:
                raise ValueError(f"crash plan references unknown node {plan.node}")
        if self.detection_delay < 0:
            raise ValueError("detection_delay must be non-negative")
        if self.state_bytes <= 0:
            raise ValueError("state_bytes must be positive")

    def describe(self) -> str:
        """One-line human summary for reports."""
        f = self.protocol_params.get("f")
        proto = self.protocol if f is None else f"{self.protocol}(f={f})"
        return (
            f"{self.name}: n={self.n} {proto} + {self.recovery} recovery, "
            f"workload={self.workload}, crashes={len(self.crashes)}"
        )
