"""A registry of named run metrics: counters, gauges, histograms.

The seed grew measurement organically: ``NetworkStats`` here, protocol
``stats()`` dicts there, trace counters everywhere.  The registry gives
every subsystem one place to *declare* what it measures:

* :class:`Counter` — monotone totals (``net.messages_sent``);
* :class:`Gauge` — last-written level (``transport.inflight``), with the
  high-water mark kept alongside;
* :class:`Histogram` — latency/size distributions with p50/p95/max
  (``storage.write_latency``, ``recovery.episode_duration``).

Names are dotted ``subsystem.metric`` strings; :meth:`Registry.snapshot`
is JSON-able and can be taken mid-run (a snapshot never mutates state),
which is how ``RunResult.extra['metrics']`` and ``repro.analysis.report``
consume it.

Like the span and profiler layers, everything here is host-side
bookkeeping: observing a value schedules nothing on the simulator and
draws no randomness, so registering metrics can never perturb a run.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional

_SUBSYSTEMS = ("net", "transport", "storage", "protocol", "recovery", "sim")


def _percentile(ordered: List[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted sample."""
    if not ordered:
        return 0.0
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


class Counter:
    """Monotonically increasing total."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (inc {amount})")
        self.value += amount

    def snapshot(self) -> Dict[str, Any]:
        return {"type": "counter", "value": self.value}


class Gauge:
    """Last-set level, with its high-water mark."""

    __slots__ = ("name", "value", "high_water")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self.high_water = 0.0

    def set(self, value: float) -> None:
        self.value = value
        if value > self.high_water:
            self.high_water = value

    def add(self, delta: float) -> None:
        self.set(self.value + delta)

    def snapshot(self) -> Dict[str, Any]:
        return {"type": "gauge", "value": self.value, "high_water": self.high_water}


class Histogram:
    """Sample distribution summarized as count/sum/p50/p95/max.

    Keeps the raw samples (runs here are at most a few hundred thousand
    observations); percentile computation is deferred to snapshot time
    so observation stays O(1).
    """

    __slots__ = ("name", "samples", "_sum")

    def __init__(self, name: str) -> None:
        self.name = name
        self.samples: List[float] = []
        self._sum = 0.0

    def observe(self, value: float) -> None:
        self.samples.append(value)
        self._sum += value

    @property
    def count(self) -> int:
        return len(self.samples)

    def snapshot(self) -> Dict[str, Any]:
        ordered = sorted(self.samples)
        n = len(ordered)
        return {
            "type": "histogram",
            "count": n,
            "sum": self._sum,
            "mean": (self._sum / n) if n else 0.0,
            "p50": _percentile(ordered, 0.50),
            "p95": _percentile(ordered, 0.95),
            "max": ordered[-1] if n else 0.0,
        }


class MetricsRegistry:
    """Namespace of metrics keyed ``subsystem.metric``.

    ``register_*`` is idempotent: asking twice for the same name returns
    the same instrument (so call sites don't need to coordinate), but a
    name can only ever be one type.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Any] = {}

    # ------------------------------------------------------------------
    def _register(self, name: str, cls: type) -> Any:
        subsystem, _, metric = name.partition(".")
        if not metric or not subsystem:
            raise ValueError(f"metric name must be 'subsystem.metric', got {name!r}")
        if subsystem not in _SUBSYSTEMS:
            raise ValueError(
                f"unknown subsystem {subsystem!r} in {name!r}; "
                f"choose from {_SUBSYSTEMS}"
            )
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{type(existing).__name__}, not {cls.__name__}"
                )
            return existing
        instrument = cls(name)
        self._metrics[name] = instrument
        return instrument

    def counter(self, name: str) -> Counter:
        return self._register(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._register(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._register(name, Histogram)

    # ------------------------------------------------------------------
    def get(self, name: str) -> Optional[Any]:
        return self._metrics.get(name)

    def names(self, subsystem: Optional[str] = None) -> List[str]:
        if subsystem is None:
            return sorted(self._metrics)
        prefix = subsystem + "."
        return sorted(n for n in self._metrics if n.startswith(prefix))

    def snapshot(self, subsystem: Optional[str] = None) -> Dict[str, Dict[str, Any]]:
        """JSON-able state of every (or one subsystem's) metric.

        Safe to call mid-run; reading never mutates the instruments.
        """
        return {
            name: self._metrics[name].snapshot()
            for name in self.names(subsystem)
        }

    # ------------------------------------------------------------------
    # cross-trial merging (repro.runner)
    # ------------------------------------------------------------------
    def dump(self) -> Dict[str, Dict[str, Any]]:
        """Mergeable, picklable state of every metric.

        Unlike :meth:`snapshot` this keeps histograms' raw samples, so
        dumps from independent trials can be combined *exactly* with
        :meth:`merge` -- percentiles of the merged distribution, not an
        average of per-trial percentiles.
        """
        out: Dict[str, Dict[str, Any]] = {}
        for name in self.names():
            instrument = self._metrics[name]
            if isinstance(instrument, Counter):
                out[name] = {"type": "counter", "value": instrument.value}
            elif isinstance(instrument, Gauge):
                out[name] = {
                    "type": "gauge",
                    "value": instrument.value,
                    "high_water": instrument.high_water,
                }
            else:
                out[name] = {
                    "type": "histogram",
                    "samples": list(instrument.samples),
                }
        return out

    @classmethod
    def merge(cls, dumps: List[Dict[str, Dict[str, Any]]]) -> "MetricsRegistry":
        """Combine per-trial :meth:`dump` outputs into one registry.

        Counters sum; gauges sum their values and take the max
        high-water; histograms concatenate raw samples.  Merging is done
        strictly in the order given (the runner passes dumps in spec
        order), so the result is identical however the trials were
        scheduled.
        """
        merged = cls()
        for dump in dumps:
            for name, state in dump.items():
                kind = state["type"]
                if kind == "counter":
                    merged.counter(name).inc(state["value"])
                elif kind == "gauge":
                    gauge = merged.gauge(name)
                    gauge.value += state["value"]
                    if state["high_water"] > gauge.high_water:
                        gauge.high_water = state["high_water"]
                elif kind == "histogram":
                    histogram = merged.histogram(name)
                    for sample in state["samples"]:
                        histogram.observe(sample)
                else:  # pragma: no cover - corrupt dump
                    raise ValueError(f"unknown metric type {kind!r} for {name!r}")
        return merged

    def __len__(self) -> int:
        return len(self._metrics)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MetricsRegistry({len(self._metrics)} metrics)"
