"""A simulated host: application + protocol + recovery manager.

:class:`Node` owns the lifecycle the paper's Section 3 data structures
describe: the ``state`` variable (live / crashed / restoring /
recovering), the ``incarnation`` counter, and the ``incvector`` used to
reject stale messages from pre-failure incarnations.  It routes incoming
messages to the right layer, implements crash/restore semantics (all
volatile state vanishes; restore costs real stable-storage time), and
provides the blocking primitive the baseline recovery algorithm uses.
"""

from __future__ import annotations

import enum
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.core.output import OutputDevice
from repro.net.network import Message, MessageKind
from repro.procs.process import OUTPUT_DST, ApplicationProcess, Send
from repro.storage.checkpoint import Checkpoint, CheckpointStore
from repro.storage.stable import StableStorage


class NodeState(enum.Enum):
    """Lifecycle states of a simulated host."""

    LIVE = "live"
    CRASHED = "crashed"
    RESTORING = "restoring"  # reading the checkpoint back
    RECOVERING = "recovering"  # running the recovery algorithm / replaying


class Node:
    """One host of the distributed system under test.

    ``__slots__`` keeps per-node bookkeeping in a fixed struct-like
    layout instead of a per-instance ``__dict__``: at the 10k-process
    scale the ``huge_system`` benchmark targets, the dict per node (and
    the hash-lookup per attribute touch on the delivery hot path) is
    measurable in both RSS and events/sec.
    """

    __slots__ = (
        "node_id", "sim", "network", "detector", "trace", "metrics",
        "oracle", "config", "app", "protocol", "recovery", "output_device",
        "storage", "checkpoints", "state", "incarnation", "incvector",
        "send_seqnos", "delivered_ids", "blocked", "_blocked_queue",
        "_restore_queue", "_restored_checkpoint", "_crash_epoch",
        "crash_count", "_episode_span", "_phase_span", "_block_span",
    )

    def __init__(
        self,
        node_id: int,
        sim: "Simulator",
        network: "Network",
        detector: "FailureDetector",
        trace: "TraceRecorder",
        metrics: "MetricsCollector",
        oracle: "ConsistencyOracle",
        config: "SystemConfig",
        app: ApplicationProcess,
        protocol: "LoggingProtocol",
        recovery: "RecoveryManager",
        output_device: Optional[OutputDevice] = None,
    ) -> None:
        self.node_id = node_id
        self.sim = sim
        self.network = network
        self.detector = detector
        self.trace = trace
        self.metrics = metrics
        self.oracle = oracle
        self.config = config
        self.app = app
        self.protocol = protocol
        self.recovery = recovery
        self.output_device = output_device if output_device is not None else OutputDevice()

        # each node gets its own fault model instance (stateful windows)
        # and its own RNG stream, so one node's faults never perturb
        # another's and a run is deterministic per (seed, config)
        storage_faults = (
            config.faults.build_storage_model() if config.faults is not None else None
        )
        realism = config.storage_realism
        self.storage = StableStorage(
            sim,
            owner=node_id,
            op_latency=config.storage_op_latency,
            bandwidth_bps=config.storage_bandwidth,
            trace=trace,
            faults=storage_faults,
            rng=network.rngs.stream(f"storage.faults.{node_id}")
            if storage_faults is not None
            else None,
            group_commit=realism.build_group_commit() if realism is not None else None,
        )
        self.checkpoints = CheckpointStore(
            self.storage,
            node_id,
            incremental=bool(realism is not None and realism.incremental_checkpoints),
            full_every=realism.full_checkpoint_every if realism is not None else 8,
            min_delta_bytes=realism.min_delta_bytes if realism is not None else 4_096,
            retain_history=getattr(protocol, "retain_checkpoint_history", False),
        )

        self.state = NodeState.CRASHED  # becomes LIVE in start()
        self.incarnation = 0
        #: peer -> minimum acceptable incarnation (the paper's incvector)
        self.incvector: Dict[int, int] = {}
        self.send_seqnos: Dict[int, int] = {}
        self.delivered_ids: Set[Tuple[int, int]] = set()

        self.blocked = False
        self._blocked_queue: List[Message] = []
        self._restore_queue: List[Message] = []
        self._restored_checkpoint: Optional[Checkpoint] = None
        self._crash_epoch = 0
        self.crash_count = 0

        # open causal spans (repro.sim.spans); all None while disabled
        self._episode_span: Optional[int] = None
        self._phase_span: Optional[int] = None
        self._block_span: Optional[int] = None

        protocol.attach(self)
        recovery.attach(self)

    # ------------------------------------------------------------------
    # derived state
    # ------------------------------------------------------------------
    @property
    def is_live(self) -> bool:
        return self.state == NodeState.LIVE

    @property
    def is_recovering(self) -> bool:
        return self.state == NodeState.RECOVERING

    # ------------------------------------------------------------------
    # causal spans
    # ------------------------------------------------------------------
    def _span_phase(self, kind: Optional[str]) -> None:
        """Close the current episode phase span and open ``kind``.

        Recovery phases are contiguous by construction: each phase ends
        at the exact instant the next begins, so the critical-path
        extractor can partition the episode without gaps.
        """
        spans = self.trace.spans
        if not spans.enabled:
            return
        now = self.sim.now
        if self._phase_span is not None:
            spans.end(self._phase_span, now)
            self._phase_span = None
        if kind is not None:
            self._phase_span = spans.begin(
                kind, self.node_id, now, parent=self._episode_span
            )

    def episode_span(self) -> Optional[int]:
        """The open ``recovery.episode`` span id (for child spans)."""
        return self._episode_span

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Boot the node: the workload's first sends, then the initial
        checkpoint (which therefore covers the initial sends' sequence
        numbers and logged data)."""
        self.state = NodeState.LIVE
        self.network.register(self.node_id, self.receive)
        self.detector.register_node(self.node_id)
        self.trace.record(self.sim.now, "node", self.node_id, "start")
        self.protocol.on_start()
        # The initial image is on disk before the process launches, so
        # this bootstrap checkpoint is durable immediately.
        self._take_checkpoint(bootstrap=True)

    def crash(self) -> None:
        """Fail-stop: every volatile structure is lost instantly."""
        if self.state == NodeState.CRASHED:
            return
        if self.blocked:
            self.metrics.block_end(self.node_id, self.sim.now)
            self.trace.spans.end(self._block_span, self.sim.now, aborted=True)
            self._block_span = None
            self.blocked = False
            self._blocked_queue.clear()
        self.state = NodeState.CRASHED
        self._crash_epoch += 1
        self.crash_count += 1
        self.network.deregister(self.node_id)
        self.storage.abort_pending()
        self.app.reset()
        self.delivered_ids = set()
        self.send_seqnos = {}
        self.protocol.on_crash()
        self.recovery.on_crash()
        self.metrics.start_episode(self.node_id, self.sim.now)
        spans = self.trace.spans
        if spans.enabled:
            # a crash mid-recovery aborts the old episode; the new one
            # links to it so the trace shows the causal chain
            self._span_phase(None)
            superseded = self._episode_span
            if superseded is not None:
                spans.end(superseded, self.sim.now, aborted=True)
            self._episode_span = spans.begin(
                "recovery.episode",
                self.node_id,
                self.sim.now,
                links=(superseded,),
                crash_count=self.crash_count,
            )
            self._phase_span = spans.begin(
                "recovery.detect", self.node_id, self.sim.now,
                parent=self._episode_span,
            )
        self.trace.record(self.sim.now, "node", self.node_id, "crash")
        self.detector.notify_crash(self.node_id)
        # The watchdog restarts the process once the failure is detected
        # ("several seconds of timeouts and retrials").  Handle-free: the
        # restart is never cancelled, only invalidated by the epoch check.
        self.sim.schedule_fast(
            self.config.detection_delay,
            self._restart_if_current,
            self._crash_epoch,
            label=f"restart:{self.node_id}",
        )

    def _restart_if_current(self, epoch: int) -> None:
        if epoch == self._crash_epoch and self.state == NodeState.CRASHED:
            self.begin_restart()

    def begin_restart(self) -> None:
        """Reload the checkpoint from stable storage (a slow, real cost)."""
        self.state = NodeState.RESTORING
        self._restore_queue = []
        episode = self.metrics.episode_of(self.node_id)
        if episode is not None:
            episode.restart_time = self.sim.now
        self._span_phase("recovery.restore")
        self.network.register(self.node_id, self.receive)
        self.trace.record(self.sim.now, "node", self.node_id, "restart_begin")
        self.checkpoints.restore(self._on_restored)

    def _on_restored(self, checkpoint: Optional[Checkpoint]) -> None:
        if checkpoint is None:
            raise RuntimeError(
                f"node {self.node_id} has no durable checkpoint to restore"
            )
        if self.state != NodeState.RESTORING:
            return  # crashed again while the read was in flight
        self.apply_checkpoint(checkpoint)
        self.protocol.restore_stable(self._finish_restore)

    def apply_checkpoint(self, checkpoint: Checkpoint) -> None:
        """Load one checkpoint's replayable state into the process.

        Normally called once per restart with the latest line; a
        protocol may call it again from ``restore_stable`` after
        swapping in an earlier line (orphaned-checkpoint fallback).
        """
        self._restored_checkpoint = checkpoint
        self.app.restore(checkpoint.app_state)
        self.send_seqnos = dict(checkpoint.send_seqnos)
        self.delivered_ids = {
            tuple(item) for item in checkpoint.extra.get("delivered_ids", [])
        }
        self.protocol.on_restore(checkpoint)

    def _finish_restore(self) -> None:
        if self.state != NodeState.RESTORING:
            return
        checkpoint = self._restored_checkpoint
        # Paper step 2: incarnation <- incarnation + 1.  The counter is a
        # restart count, trivially persisted by the watchdog.
        self.incarnation += 1
        self.state = NodeState.RECOVERING
        episode = self.metrics.episode_of(self.node_id)
        if episode is not None:
            episode.restored_time = self.sim.now
        self._span_phase("recovery.gather")
        self.trace.record(
            self.sim.now,
            "node",
            self.node_id,
            "restored",
            checkpoint_id=checkpoint.checkpoint_id,
            delivered=self.app.delivered_count,
            incarnation=self.incarnation,
            # segments the restore read back: 1 for a flat image, the
            # full+delta chain length under incremental checkpointing
            chain_segments=self.checkpoints.chain_length,
        )
        queued, self._restore_queue = self._restore_queue, []
        for msg in queued:
            self.recovery.on_control(msg)
        self.recovery.begin_recovery()

    def mark_replay_start(self) -> None:
        """Recovery manager has the depinfo in hand; replay begins now.

        Centralizes what every recovery manager used to do by hand:
        stamp the episode's ``replay_start_time`` and flip the episode
        phase span from gather to replay.
        """
        episode = self.metrics.episode_of(self.node_id)
        if episode is not None:
            episode.replay_start_time = self.sim.now
        self._span_phase("recovery.replay")

    def complete_recovery(self) -> None:
        """Recovery manager finished; the process is live again."""
        self.state = NodeState.LIVE
        episode = self.metrics.episode_of(self.node_id)
        if episode is not None:
            episode.replayed_deliveries = self.metrics.replayed.get(self.node_id, 0)
        self.metrics.finish_episode(self.node_id, self.sim.now)
        self._span_phase(None)
        if self._episode_span is not None:
            self.trace.spans.end(
                self._episode_span,
                self.sim.now,
                incarnation=self.incarnation,
                replayed=self.metrics.replayed.get(self.node_id, 0),
            )
            self._episode_span = None
        self.oracle.on_rollback(self.node_id, self.app.delivered_count)
        self.trace.record(
            self.sim.now,
            "node",
            self.node_id,
            "recovered",
            delivered=self.app.delivered_count,
            incarnation=self.incarnation,
        )
        self.detector.notify_up(self.node_id)

    # ------------------------------------------------------------------
    # message routing
    # ------------------------------------------------------------------
    def receive(self, msg: Message) -> None:
        if self.state == NodeState.CRASHED:
            return
        if self.state == NodeState.RESTORING:
            # The process image is still being read back; it cannot run
            # any code yet.  Recovery control is queued so the algorithm
            # sees announcements made during the restore; everything else
            # is dropped (it will be retransmitted or regenerated).
            if msg.kind == MessageKind.RECOVERY:
                self._restore_queue.append(msg)
            return
        if msg.kind == MessageKind.RECOVERY:
            self.recovery.on_control(msg)
            return
        # Reject stale messages from superseded incarnations (Section 3.2:
        # "A receiver rejects any message that originates from a previous
        # incarnation of its sender").
        if msg.incarnation < self.incvector.get(msg.src, 0):
            self.trace.record(
                self.sim.now, "node", self.node_id, "reject_stale",
                src=msg.src, incarnation=msg.incarnation,
            )
            return
        if msg.kind == MessageKind.PROTOCOL:
            if self.blocked and msg.mtype in self.config.blocked_protocol_types:
                self._blocked_queue.append(msg)
                return
            self.protocol.on_protocol_message(msg)
            return
        # application traffic
        if self.state == NodeState.RECOVERING:
            self.protocol.on_app_message_during_recovery(msg)
            return
        if self.blocked:
            self._blocked_queue.append(msg)
            return
        self.protocol.on_app_message(msg)

    # ------------------------------------------------------------------
    # application-side services
    # ------------------------------------------------------------------
    def next_ssn(self, dst: int) -> int:
        ssn = self.send_seqnos.get(dst, 0)
        self.send_seqnos[dst] = ssn + 1
        return ssn

    def deliver_app(
        self, sender: int, ssn: int, payload: Dict[str, Any]
    ) -> List[Send]:
        """Deliver one message to the application; returns its *network*
        sends.  Output sends (``dst == OUTPUT_DST``) are intercepted and
        routed to the protocol's output-commit machinery."""
        rsn = self.app.delivered_count
        self.delivered_ids.add((sender, ssn))
        sends = self.app.deliver(sender, ssn, payload)
        self.oracle.on_deliver(self.node_id, rsn, sender, ssn, self.app.digest)
        self.metrics.count_delivery(self.node_id, during_replay=self.is_recovering)
        self.trace.record(
            self.sim.now, "app", self.node_id, "deliver",
            sender=sender, ssn=ssn, rsn=rsn,
        )
        network_sends = []
        output_index = 0
        for send in sends:
            if send.dst == OUTPUT_DST:
                output_id = (self.node_id, rsn, output_index)
                output_index += 1
                payload_with_digest = dict(send.payload)
                payload_with_digest["_digest8"] = self.app.digest[:8]
                self.protocol.request_output_commit(output_id, payload_with_digest)
            else:
                network_sends.append(send)
        return network_sends

    def commit_output(
        self, output_id: tuple, payload: Dict[str, Any], requested_at: float
    ) -> None:
        """Release one output to the outside world (it is now safe)."""
        fresh = self.output_device.release(
            self.node_id, output_id, payload, requested_at, self.sim.now
        )
        self.trace.record(
            self.sim.now, "output", self.node_id, "commit",
            output_id=output_id, duplicate=not fresh,
            latency=self.sim.now - requested_at,
        )

    def maybe_checkpoint(self) -> None:
        """Count-based checkpoint policy (deterministic, so replay-safe)."""
        every = self.config.checkpoint_every
        if every and self.app.delivered_count % every == 0:
            self._take_checkpoint()

    def force_checkpoint(self) -> Optional[Checkpoint]:
        """Protocol-driven checkpoint outside the count-based policy.

        Used by the adaptive stack at a mode switch so the new mode
        starts from a durable line.  A no-op while the node is down or
        recovering: replay rebuilds state, and checkpointing a partially
        replayed image would corrupt the recovery horizon."""
        if not self.is_live or self.is_recovering:
            return None
        return self._take_checkpoint()

    def _take_checkpoint(self, bootstrap: bool = False) -> Checkpoint:
        extra = {
            "delivered_ids": sorted(self.delivered_ids),
            "protocol": self.protocol.checkpoint_extra(),
        }
        spans = self.trace.spans
        ckpt_span = spans.begin(
            "node.checkpoint", self.node_id, self.sim.now, bootstrap=bootstrap,
        )

        def on_done(ckpt: Checkpoint, _done=self.protocol.on_checkpoint) -> None:
            spans.end(ckpt_span, self.sim.now, checkpoint_id=ckpt.checkpoint_id)
            # the checkpoint is now on stable storage: deliveries below its
            # count can never be replayed, so rolled-back causal archives
            # under that horizon are dead weight (oracle + sanitizer GC)
            self.trace.record(
                self.sim.now, "node", self.node_id, "checkpoint_durable",
                checkpoint_id=ckpt.checkpoint_id, delivered=ckpt.delivered_count,
            )
            self.oracle.on_gc(self.node_id, ckpt.delivered_count)
            _done(ckpt)

        checkpoint = self.checkpoints.save(
            delivered_count=self.app.delivered_count,
            app_state=self.app.snapshot(),
            send_seqnos=self.send_seqnos,
            state_bytes=self.config.state_bytes,
            taken_at=self.sim.now,
            extra=extra,
            on_done=on_done,
            bootstrap=bootstrap,
            dirty_bytes=self.app.dirty_bytes,
        )
        # the snapshot captured everything dirtied so far; the next
        # delta is measured against this checkpoint
        self.app.mark_clean()
        self.trace.record(
            self.sim.now, "node", self.node_id, "checkpoint",
            checkpoint_id=checkpoint.checkpoint_id,
            delivered=self.app.delivered_count,
        )
        return checkpoint

    # ------------------------------------------------------------------
    # rollback primitives (used by optimistic and coordinated recovery)
    # ------------------------------------------------------------------
    def voluntary_rollback(self) -> None:
        """Self-inflicted rollback (an orphaned process killing itself).

        Semantically a crash, but no failure detection is needed -- the
        process knows it is rolling back, so the restart begins
        immediately.
        """
        if self.state == NodeState.CRASHED:
            return
        pre_epoch = self._crash_epoch
        self.crash()
        if self._crash_epoch == pre_epoch + 1:
            self._crash_epoch += 1  # invalidate the detection-delayed restart
            self.sim.schedule_fast(
                0.0,
                self._restart_if_current,
                self._crash_epoch,
                label=f"voluntary-restart:{self.node_id}",
            )

    def apply_snapshot(
        self,
        app_state: Dict[str, Any],
        send_seqnos: Dict[int, int],
        delivered_ids: List[Tuple[int, int]],
    ) -> int:
        """Overwrite replayable state in place (coordinated rollback).

        Returns the number of deliveries rolled back.
        """
        lost = max(0, self.app.delivered_count - app_state["delivered_count"])
        self.app.restore(app_state)
        self.send_seqnos = dict(send_seqnos)
        self.delivered_ids = {tuple(item) for item in delivered_ids}
        self.metrics.rolled_back_deliveries += lost
        return lost

    # ------------------------------------------------------------------
    # blocking primitive (used by the baseline recovery algorithm)
    # ------------------------------------------------------------------
    def block(self) -> None:
        """Suspend application progress (deliveries queue up)."""
        if not self.blocked and self.is_live:
            self.blocked = True
            self.metrics.block_start(self.node_id, self.sim.now)
            self._block_span = self.trace.spans.begin(
                "node.blocked", self.node_id, self.sim.now
            )
            self.trace.record(self.sim.now, "node", self.node_id, "block")

    def unblock(self) -> None:
        """Resume application progress and drain the queue."""
        if not self.blocked:
            return
        self.blocked = False
        self.metrics.block_end(self.node_id, self.sim.now)
        self.trace.spans.end(self._block_span, self.sim.now)
        self._block_span = None
        self.trace.record(self.sim.now, "node", self.node_id, "unblock")
        queued, self._blocked_queue = self._blocked_queue, []
        for msg in queued:
            self.receive(msg)

    def blocked_app_messages(self) -> List[Message]:
        """Application messages queued while blocked.

        Blocking suspends *delivery*, but the messages themselves have
        arrived at this host; recovery may read their piggybacked
        metadata before they are delivered.
        """
        return [m for m in self._blocked_queue if m.kind is MessageKind.APPLICATION]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Node({self.node_id}, {self.state.value}, inc={self.incarnation}, "
            f"delivered={self.app.delivered_count})"
        )
