"""repro -- reproduction of Elnozahy, "On the Relevance of Communication
Costs of Rollback-Recovery Protocols" (PODC 1995).

The package implements, from scratch and in pure Python:

* a deterministic discrete-event simulation of a message-passing cluster
  (network, stable storage, crash failures, failure detection),
* the Family-Based Logging protocols FBL(f), with sender-based message
  logging (f = 1) and Manetho-style logging (f = n) as instances,
* the paper's **new non-blocking recovery algorithm** and the blocking,
  message-optimal baseline it is evaluated against,
* comparator protocols (pessimistic logging, optimistic logging with
  orphan rollbacks, coordinated checkpointing),
* an experiment harness regenerating every result of the paper's
  evaluation section, plus the sweeps its argument implies.

Quickstart::

    from repro import SystemConfig, run_config, crash_at

    config = SystemConfig(
        n=8,
        protocol="fbl",
        protocol_params={"f": 2},
        recovery="nonblocking",
        workload="uniform",
        workload_params={"hops": 20, "fanout": 2},
        crashes=[crash_at(node=3, time=0.05)],
    )
    result = run_config(config)
    print(result.recovery_durations(), result.mean_blocked_time(exclude=[3]))
"""

from repro.core.config import SystemConfig
from repro.core.experiment import ExperimentRunner, SweepResult
from repro.core.metrics import RecoveryEpisode, RunResult
from repro.core.system import System, build_system, run_config
from repro.procs.failure import crash_at, crash_on

# scenario builders for the paper's experiments live in repro.experiments;
# analysis/report/timeline tooling in repro.analysis

__version__ = "1.0.0"

__all__ = [
    "SystemConfig",
    "ExperimentRunner",
    "SweepResult",
    "RecoveryEpisode",
    "RunResult",
    "System",
    "build_system",
    "run_config",
    "crash_at",
    "crash_on",
    "__version__",
]
