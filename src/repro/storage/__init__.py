"""Storage substrate.

Three layers, mirroring the paper's cost model:

* :mod:`repro.storage.volatile` -- in-memory logs that are *lost on a
  crash* (sender message logs, determinant logs).  Free to access.
* :mod:`repro.storage.stable` -- stable storage with a synchronous-write
  latency and finite bandwidth.  The paper's central claim is that this
  latency (and the blocking it induces) dominates recovery cost in
  modern systems, so the model tracks every operation and the time each
  caller spent stalled on it.
* :mod:`repro.storage.checkpoint` -- checkpoint save/restore built on
  stable storage; restoring a "one Mbyte process" takes seconds with the
  default DEC-5000-era parameters, as in the paper's evaluation.
"""

from repro.storage.checkpoint import Checkpoint, CheckpointStore
from repro.storage.stable import StableStorage, StableStorageStats
from repro.storage.volatile import DeterminantLog, SendLog, VolatileLog

__all__ = [
    "Checkpoint",
    "CheckpointStore",
    "StableStorage",
    "StableStorageStats",
    "DeterminantLog",
    "SendLog",
    "VolatileLog",
]
