"""Checkpoints on stable storage.

A :class:`Checkpoint` freezes the replayable part of a process: the
application state, the delivery counter (rsn high-water mark), and the
per-destination send sequence numbers.  :class:`CheckpointStore` persists
checkpoints through the :class:`~repro.storage.stable.StableStorage`
model, so saving and (crucially for the paper's argument) *restoring*
them costs realistic stable-storage time -- the dominant term in the
evaluation's measured ~5 s recovery.

The store has two modes.  The default (flat) mode writes every
checkpoint as a full ``state_bytes`` image, exactly the seed's cost
model.  Incremental mode (enabled by
:class:`~repro.core.config.StorageRealismConfig`) writes copy-on-write
*delta* segments sized by the process's dirty bytes, forces a periodic
full segment to bound the chain a restart must read back, and reclaims
superseded segments once a new full lands.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.storage.stable import StableStorage


@dataclass(frozen=True)
class Checkpoint:
    """An immutable snapshot of a process's replayable state.

    Attributes
    ----------
    node:
        Owning node id.
    delivered_count:
        Number of messages delivered when the snapshot was taken; equals
        the next rsn to be assigned.
    app_state:
        Opaque deep-copied application state.
    send_seqnos:
        Per-destination next send sequence number.
    state_bytes:
        Modelled size of the process image (the paper's processes were
        "about one Mbyte").
    checkpoint_id:
        Monotone id assigned by the store.
    taken_at:
        Virtual time the snapshot was taken.
    extra:
        Protocol-specific replayable state riding along.
    incremental:
        Whether this segment was written as a delta (incremental mode).
    charged_bytes:
        Bytes actually charged to the device for this segment (equals
        ``state_bytes`` for full segments, the clamped dirty size for
        deltas).
    """

    node: int
    delivered_count: int
    app_state: Dict[str, Any]
    send_seqnos: Dict[int, int]
    state_bytes: int
    checkpoint_id: int = 0
    taken_at: float = 0.0
    extra: Dict[str, Any] = field(default_factory=dict)
    incremental: bool = False
    charged_bytes: int = 0


class CheckpointStore:
    """Persists one node's checkpoints through the stable-storage model.

    Only the latest recovery line is retained (the FBL protocols never
    need an earlier one: message logging replays everything after it).
    In flat mode that line is a single full image; in incremental mode
    it is a chain ``[full, delta, delta, ...]`` whose segments restore
    reads back one by one.
    """

    def __init__(
        self,
        storage: StableStorage,
        node: int,
        incremental: bool = False,
        full_every: int = 8,
        min_delta_bytes: int = 4_096,
        retain_history: bool = False,
    ) -> None:
        """Attach the store to ``storage``; see class docstring for modes.

        ``retain_history`` keeps every durable checkpoint instead of just
        the latest line.  Optimistic logging needs this: the newest
        checkpoint may capture state that *depends on rolled-back
        intervals* of a peer (an orphaned checkpoint), and restarting
        from it would only re-orphan the process -- the restart must be
        able to fall back to an earlier, non-orphaned line
        (:meth:`restore_line`).
        """
        if full_every < 1:
            raise ValueError(f"full_every must be >= 1, got {full_every!r}")
        self.storage = storage
        self.node = node
        self.incremental = incremental
        self.full_every = full_every
        self.min_delta_bytes = min_delta_bytes
        self.retain_history = retain_history
        self._durable_history: List[Checkpoint] = []
        self._next_id = 1
        self._latest_durable: Optional[Checkpoint] = None
        # durable chain, full segment first (incremental mode only); the
        # device is FIFO and a crash aborts everything in flight, so the
        # durable chain is always a consistent prefix of what was written
        self._chain: List[Checkpoint] = []
        self._deltas_since_full = 0
        self._force_full = True  # first runtime checkpoint after boot/restore
        #: full/delta segment counters (accounting, zero-cost)
        self.full_segments = 0
        self.delta_segments = 0
        self.delta_bytes_written = 0
        self.full_bytes_written = 0

    # ------------------------------------------------------------------
    def _charge_for(self, dirty_bytes: Optional[int], state_bytes: int) -> int:
        """Delta segment size: dirty bytes clamped to [floor, full]."""
        if dirty_bytes is None:
            return state_bytes
        return max(self.min_delta_bytes, min(dirty_bytes, state_bytes))

    def save(
        self,
        delivered_count: int,
        app_state: Dict[str, Any],
        send_seqnos: Dict[int, int],
        state_bytes: int,
        taken_at: float,
        extra: Optional[Dict[str, Any]] = None,
        on_done: Optional[Callable[[Checkpoint], None]] = None,
        bootstrap: bool = False,
        dirty_bytes: Optional[int] = None,
    ) -> Checkpoint:
        """Write a new checkpoint; ``on_done`` fires when it is durable.

        ``bootstrap`` marks the time-zero checkpoint: the initial process
        image already sits on stable storage before the process launches,
        so it is durable immediately and costs no simulated I/O.

        ``dirty_bytes`` (incremental mode) is the modelled amount of
        state touched since the previous checkpoint; when the store
        decides to write a delta, that -- clamped to
        ``[min_delta_bytes, state_bytes]`` -- is the size charged to the
        device instead of the full image.
        """
        if not self.incremental:
            return self._save_flat(
                delivered_count, app_state, send_seqnos, state_bytes,
                taken_at, extra, on_done, bootstrap,
            )

        charge = self._charge_for(dirty_bytes, state_bytes)
        # write a full segment when the chain budget is spent, after a
        # boot/restore (no baseline to delta against), or when the
        # process dirtied its whole image anyway
        full = (
            bootstrap
            or self._force_full
            or self._deltas_since_full >= self.full_every - 1
            or charge >= state_bytes
        )
        charged = state_bytes if full else charge
        checkpoint = Checkpoint(
            node=self.node,
            delivered_count=delivered_count,
            app_state=copy.deepcopy(app_state),
            send_seqnos=dict(send_seqnos),
            state_bytes=state_bytes,
            checkpoint_id=self._next_id,
            taken_at=taken_at,
            extra=copy.deepcopy(extra) if extra else {},
            incremental=not full,
            charged_bytes=charged,
        )
        self._next_id += 1
        if full:
            self._force_full = False
            self._deltas_since_full = 0
            self.full_segments += 1
            self.full_bytes_written += charged
        else:
            self._deltas_since_full += 1
            self.delta_segments += 1
            self.delta_bytes_written += charged

        def done() -> None:
            """Chain bookkeeping once the segment is durable."""
            self._latest_durable = checkpoint
            if self.retain_history:
                self._durable_history.append(checkpoint)
            if full:
                # the new full supersedes the old chain: reclaim it
                for old in self._chain:
                    self.storage.reclaim(
                        f"checkpoint:{self.node}:{old.checkpoint_id}",
                        old.charged_bytes,
                    )
                self._chain = [checkpoint]
            else:
                self._chain.append(checkpoint)
            if on_done is not None:
                on_done(checkpoint)

        key = f"checkpoint:{self.node}:{checkpoint.checkpoint_id}"
        if bootstrap:
            self.storage.write_bootstrap(key, checkpoint)
            done()
        else:
            self.storage.write(key, checkpoint, charged, on_done=done)
        return checkpoint

    def _save_flat(
        self,
        delivered_count: int,
        app_state: Dict[str, Any],
        send_seqnos: Dict[int, int],
        state_bytes: int,
        taken_at: float,
        extra: Optional[Dict[str, Any]],
        on_done: Optional[Callable[[Checkpoint], None]],
        bootstrap: bool,
    ) -> Checkpoint:
        """The seed's flat path: one full image per checkpoint."""
        checkpoint = Checkpoint(
            node=self.node,
            delivered_count=delivered_count,
            app_state=copy.deepcopy(app_state),
            send_seqnos=dict(send_seqnos),
            state_bytes=state_bytes,
            checkpoint_id=self._next_id,
            taken_at=taken_at,
            extra=copy.deepcopy(extra) if extra else {},
            charged_bytes=state_bytes,
        )
        self._next_id += 1

        def done() -> None:
            """Publish the durable snapshot and notify the caller."""
            self._latest_durable = checkpoint
            if self.retain_history:
                self._durable_history.append(checkpoint)
            if on_done is not None:
                on_done(checkpoint)

        if bootstrap:
            done()
        else:
            self.storage.write(
                f"checkpoint:{self.node}", checkpoint, state_bytes, on_done=done
            )
        return checkpoint

    def restore(self, on_done: Callable[[Optional[Checkpoint]], None]) -> float:
        """Read the latest durable recovery line back (full state transfer).

        Flat mode reads one full image -- the "restoring its state may
        take tens of seconds" cost from the paper.  Incremental mode
        reads every segment of the durable chain (one device operation
        each, charged its segment size), which is why periodic full
        checkpoints bound recovery time.  ``on_done`` receives the last
        segment -- the newest state -- or ``None`` if nothing was ever
        saved.  Returns the modelled completion time.
        """
        if self.incremental and self._chain:
            # the next checkpoint after a restore has no dirty baseline
            self._force_full = True
            last = self._chain[-1]
            finish = 0.0
            for segment in self._chain:
                callback = (lambda _v, s=segment: None)
                if segment is last:
                    callback = lambda _v: on_done(last)  # noqa: E731
                finish = self.storage.read(
                    f"checkpoint:{self.node}:{segment.checkpoint_id}",
                    segment.charged_bytes,
                    callback,
                )
            return finish
        size = self._latest_durable.state_bytes if self._latest_durable else 0
        durable = self._latest_durable

        def done(_value: Any) -> None:
            """Hand the reloaded checkpoint to the caller."""
            on_done(durable)

        return self.storage.read(f"checkpoint:{self.node}", size, done)

    def restore_line(
        self, checkpoint: Checkpoint, on_done: Callable[[Checkpoint], None]
    ) -> float:
        """Re-read a specific retained checkpoint (orphan-aware restart).

        Used when the just-restored latest line turns out to depend on a
        peer's rolled-back state: the caller picks an earlier entry of
        :attr:`durable_history` and pays a second full state read for it.
        The chosen line becomes the store's latest -- every retained
        checkpoint after it is orphaned for good (recovery bounds only
        tighten), so a later crash restores the good line directly.
        """
        if not self.retain_history:
            raise ValueError("restore_line requires retain_history")
        self._latest_durable = checkpoint
        self._durable_history = [
            c for c in self._durable_history
            if c.checkpoint_id <= checkpoint.checkpoint_id
        ]

        def done(_value: Any) -> None:
            on_done(checkpoint)

        return self.storage.read(
            f"checkpoint:{self.node}", checkpoint.state_bytes, done
        )

    # ------------------------------------------------------------------
    @property
    def latest(self) -> Optional[Checkpoint]:
        """Latest durable checkpoint (zero-cost; for tests/assertions)."""
        return self._latest_durable

    @property
    def durable_history(self) -> List[Checkpoint]:
        """Every durable checkpoint, oldest first (``retain_history``)."""
        return list(self._durable_history)

    @property
    def chain_length(self) -> int:
        """Durable segments a restore must read (1 in flat mode)."""
        if self.incremental:
            return len(self._chain)
        return 1 if self._latest_durable is not None else 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        cid = self._latest_durable.checkpoint_id if self._latest_durable else None
        return f"CheckpointStore(node={self.node}, latest={cid})"
