"""Checkpoints on stable storage.

A :class:`Checkpoint` freezes the replayable part of a process: the
application state, the delivery counter (rsn high-water mark), and the
per-destination send sequence numbers.  :class:`CheckpointStore` persists
checkpoints through the :class:`~repro.storage.stable.StableStorage`
model, so saving and (crucially for the paper's argument) *restoring*
them costs realistic stable-storage time -- the dominant term in the
evaluation's measured ~5 s recovery.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from repro.storage.stable import StableStorage


@dataclass(frozen=True)
class Checkpoint:
    """An immutable snapshot of a process's replayable state.

    Attributes
    ----------
    node:
        Owning node id.
    delivered_count:
        Number of messages delivered when the snapshot was taken; equals
        the next rsn to be assigned.
    app_state:
        Opaque deep-copied application state.
    send_seqnos:
        Per-destination next send sequence number.
    state_bytes:
        Modelled size of the process image (the paper's processes were
        "about one Mbyte").
    """

    node: int
    delivered_count: int
    app_state: Dict[str, Any]
    send_seqnos: Dict[int, int]
    state_bytes: int
    checkpoint_id: int = 0
    taken_at: float = 0.0
    extra: Dict[str, Any] = field(default_factory=dict)


class CheckpointStore:
    """Persists one node's checkpoints through the stable-storage model.

    Only the latest checkpoint is retained (the FBL protocols never need
    an earlier one: message logging replays everything after it).
    """

    def __init__(self, storage: StableStorage, node: int) -> None:
        self.storage = storage
        self.node = node
        self._next_id = 1
        self._latest_durable: Optional[Checkpoint] = None

    # ------------------------------------------------------------------
    def save(
        self,
        delivered_count: int,
        app_state: Dict[str, Any],
        send_seqnos: Dict[int, int],
        state_bytes: int,
        taken_at: float,
        extra: Optional[Dict[str, Any]] = None,
        on_done: Optional[Callable[[Checkpoint], None]] = None,
        bootstrap: bool = False,
    ) -> Checkpoint:
        """Write a new checkpoint; ``on_done`` fires when it is durable.

        ``bootstrap`` marks the time-zero checkpoint: the initial process
        image already sits on stable storage before the process launches,
        so it is durable immediately and costs no simulated I/O.
        """
        checkpoint = Checkpoint(
            node=self.node,
            delivered_count=delivered_count,
            app_state=copy.deepcopy(app_state),
            send_seqnos=dict(send_seqnos),
            state_bytes=state_bytes,
            checkpoint_id=self._next_id,
            taken_at=taken_at,
            extra=copy.deepcopy(extra) if extra else {},
        )
        self._next_id += 1

        def done() -> None:
            self._latest_durable = checkpoint
            if on_done is not None:
                on_done(checkpoint)

        if bootstrap:
            done()
        else:
            self.storage.write(
                f"checkpoint:{self.node}", checkpoint, state_bytes, on_done=done
            )
        return checkpoint

    def restore(self, on_done: Callable[[Optional[Checkpoint]], None]) -> float:
        """Read the latest durable checkpoint back (full state transfer).

        The read is charged the full ``state_bytes`` -- this is the
        "restoring its state may take tens of seconds" cost from the
        paper.  ``on_done(None)`` fires if no checkpoint was ever saved.
        Returns the modelled completion time.
        """
        size = self._latest_durable.state_bytes if self._latest_durable else 0
        durable = self._latest_durable

        def done(_value: Any) -> None:
            on_done(durable)

        return self.storage.read(f"checkpoint:{self.node}", size, done)

    # ------------------------------------------------------------------
    @property
    def latest(self) -> Optional[Checkpoint]:
        """Latest durable checkpoint (zero-cost; for tests/assertions)."""
        return self._latest_durable

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        cid = self._latest_durable.checkpoint_id if self._latest_durable else None
        return f"CheckpointStore(node={self.node}, latest={cid})"
