"""Volatile (crash-lossy) logs.

Everything here lives in a process's memory and is wiped by
:meth:`clear` when the process crashes.  The FBL protocols keep two
volatile structures: the *send log* (message data, kept by the sender for
replay) and the *determinant log* (receipt orders of its own and other
processes' deliveries, replicated via piggybacking).
"""

from __future__ import annotations

from typing import Any, Dict, Generic, Iterable, Iterator, List, Optional, Tuple, TypeVar

from repro.causality.determinant import Determinant

T = TypeVar("T")


class VolatileLog(Generic[T]):
    """A generic append-only in-memory log."""

    def __init__(self) -> None:
        self._entries: List[T] = []

    def append(self, entry: T) -> None:
        """Append ``entry`` to the log."""
        self._entries.append(entry)

    def entries(self) -> List[T]:
        """Snapshot of the log contents."""
        return list(self._entries)

    def clear(self) -> None:
        """Crash: all volatile contents are lost."""
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[T]:
        return iter(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VolatileLog({len(self)} entries)"


class SendLog:
    """Sender-side volatile log of outgoing message data.

    Keyed by ``(dst, ssn)``; holds the application payload so the sender
    can retransmit during a receiver's recovery.  This is the "log each
    message in the volatile store of its sender" half of the FBL idea.
    """

    def __init__(self) -> None:
        self._by_key: Dict[Tuple[int, int], Dict[str, Any]] = {}
        self.bytes_logged = 0
        #: cumulative bytes released by checkpoint-driven pruning
        self.bytes_pruned = 0
        #: cumulative entries released by checkpoint-driven pruning
        self.entries_pruned = 0

    def log(self, dst: int, ssn: int, payload: Dict[str, Any], size_bytes: int) -> None:
        """Record an outgoing message for possible replay."""
        key = (dst, ssn)
        if key in self._by_key:
            return  # duplicate regeneration during replay
        self._by_key[key] = {"payload": dict(payload), "size": size_bytes}
        self.bytes_logged += size_bytes

    def lookup(self, dst: int, ssn: int) -> Optional[Dict[str, Any]]:
        """Logged record for ``(dst, ssn)``, or None."""
        return self._by_key.get((dst, ssn))

    def messages_for(self, dst: int) -> List[Tuple[int, Dict[str, Any]]]:
        """All logged ``(ssn, record)`` pairs destined for ``dst``, by ssn."""
        found = [
            (ssn, record) for (d, ssn), record in self._by_key.items() if d == dst
        ]
        return sorted(found)

    def prune_upto(self, dst: int, ssn: int) -> int:
        """Garbage-collect entries for ``dst`` with ssn <= the given bound.

        Returns how many entries were dropped.  Called when the receiver
        checkpoints (it will never need those messages replayed again).
        """
        victims = [key for key in self._by_key if key[0] == dst and key[1] <= ssn]
        for key in victims:
            self.bytes_logged -= self._by_key[key]["size"]
            self.bytes_pruned += self._by_key[key]["size"]
            del self._by_key[key]
        self.entries_pruned += len(victims)
        return len(victims)

    def clear(self) -> None:
        """Crash: the send log is volatile."""
        self._by_key.clear()
        self.bytes_logged = 0

    # -- checkpoint support ------------------------------------------------
    def to_state(self) -> List[Tuple[int, int, Dict[str, Any], int]]:
        """Serializable snapshot: list of (dst, ssn, payload, size)."""
        return [
            (dst, ssn, dict(record["payload"]), record["size"])
            for (dst, ssn), record in sorted(self._by_key.items())
        ]

    def load_state(self, state: List[Tuple[int, int, Dict[str, Any], int]]) -> None:
        """Rebuild from a checkpointed snapshot."""
        self.clear()
        for dst, ssn, payload, size in state:
            self.log(dst, ssn, payload, size)

    def __len__(self) -> int:
        return len(self._by_key)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SendLog({len(self)} messages, {self.bytes_logged}B)"


class DeterminantLog:
    """Volatile store of determinants known to a process.

    Besides the determinants themselves it tracks, per determinant, the
    set of hosts *known to have logged it* -- the information FBL uses to
    stop piggybacking once a determinant is replicated at ``f + 1``
    hosts.
    """

    def __init__(self) -> None:
        self._dets: Dict[Tuple[int, int], Determinant] = {}
        self._logged_at: Dict[Tuple[int, int], frozenset] = {}
        #: cumulative determinants released by checkpoint-driven pruning
        self.entries_pruned = 0

    # ------------------------------------------------------------------
    def add(self, det: Determinant, logged_at: Iterable[int] = ()) -> bool:
        """Record ``det``; merge ``logged_at`` host knowledge.

        Returns True if the determinant was new to this log.
        """
        key = det.delivery_id
        new = key not in self._dets
        if new:
            self._dets[key] = det
            self._logged_at[key] = frozenset(logged_at)
        else:
            self._logged_at[key] = self._logged_at[key] | frozenset(logged_at)
        return new

    def note_logged_at(self, det: Determinant, host: int) -> None:
        """Record that ``host`` now stores ``det``."""
        key = det.delivery_id
        if key not in self._dets:
            self.add(det)
        self._logged_at[key] = self._logged_at[key] | {host}

    def logged_at(self, det: Determinant) -> frozenset:
        """Hosts known to store ``det`` (possibly empty)."""
        return self._logged_at.get(det.delivery_id, frozenset())

    # ------------------------------------------------------------------
    def determinants(self) -> List[Determinant]:
        """Every stored determinant, deterministically ordered."""
        return sorted(self._dets.values())

    def unstable(self, replication_target: int) -> List[Determinant]:
        """Determinants logged at fewer than ``replication_target`` hosts."""
        return sorted(
            det
            for key, det in self._dets.items()
            if len(self._logged_at[key]) < replication_target
        )

    def for_receiver(self, receiver: int) -> Dict[int, Determinant]:
        """``rsn -> determinant`` for one receiver."""
        return {
            rsn: det for (recv, rsn), det in self._dets.items() if recv == receiver
        }

    def __contains__(self, det: Determinant) -> bool:
        return self._dets.get(det.delivery_id) == det

    def drop_receiver_prefix(self, receiver: int, before_rsn: int) -> int:
        """Garbage-collect determinants of ``receiver``'s deliveries with
        rsn < ``before_rsn`` (covered by its durable checkpoint, so never
        needed for replay again).  Returns how many were dropped."""
        victims = [
            key for key in self._dets
            if key[0] == receiver and key[1] < before_rsn
        ]
        for key in victims:
            del self._dets[key]
            del self._logged_at[key]
        self.entries_pruned += len(victims)
        return len(victims)

    def clear(self) -> None:
        """Crash: all volatile contents are lost."""
        self._dets.clear()
        self._logged_at.clear()

    # -- checkpoint support ------------------------------------------------
    def to_state(self) -> List[Tuple[Tuple[int, int, int, int], Tuple[int, ...]]]:
        """Serializable snapshot: list of (det tuple, sorted hosts)."""
        return [
            (det.to_tuple(), tuple(sorted(self._logged_at[key])))
            for key, det in sorted(self._dets.items())
        ]

    def load_state(
        self, state: List[Tuple[Tuple[int, int, int, int], Tuple[int, ...]]]
    ) -> None:
        """Rebuild from a checkpointed snapshot."""
        self.clear()
        for det_tuple, hosts in state:
            self.add(Determinant.from_tuple(tuple(det_tuple)), logged_at=hosts)

    def __len__(self) -> int:
        return len(self._dets)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DeterminantLog({len(self)} determinants)"
