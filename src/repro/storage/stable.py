"""Stable storage with realistic (mid-90s) access costs.

The paper's thesis is that "latency in accessing stable storage" has
become a first-class cost of recovery.  :class:`StableStorage` models a
per-node stable store (a local disk, or a survivable storage service)
with a fixed per-operation latency plus a size-proportional transfer
time, serialized per device.  Default parameters are chosen so restoring
the paper's "about one Mbyte" process state costs on the order of a
second -- consistent with the evaluation's "restoring its state may take
tens of seconds or a few minutes" for large processes and its measured
~5 s recovery dominated by detection plus state restore.

Contents written to stable storage survive crashes; the data itself is
held in plain Python dictionaries keyed by name.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.sim.kernel import Simulator
from repro.sim.rng import derive_seed
from repro.sim.trace import TraceRecorder

#: Per-operation latency (seek + rotation + controller), seconds.
DEFAULT_OP_LATENCY = 0.020
#: Sustained transfer bandwidth, bytes/second (mid-90s SCSI disk).
DEFAULT_BANDWIDTH = 1_000_000.0


class StorageFaultError(RuntimeError):
    """An operation exhausted its retry budget (a non-transient fault)."""


@dataclass
class GroupCommitPolicy:
    """Flush policy for group-committed log appends.

    Appends queue in a volatile write buffer and are flushed to the
    device as one operation when the oldest queued append has waited
    ``window`` seconds, or immediately once ``max_ops`` appends or
    ``max_bytes`` bytes are queued.  One batch costs a single
    per-operation latency plus the transfer time of its total bytes --
    this is the amortisation real logging stacks get from group commit.
    """

    window: float = 0.005
    max_ops: int = 32
    max_bytes: int = 262_144

    def __post_init__(self) -> None:
        if self.window < 0:
            raise ValueError(f"window must be non-negative, got {self.window!r}")
        if self.max_ops < 1:
            raise ValueError(f"max_ops must be >= 1, got {self.max_ops!r}")
        if self.max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {self.max_bytes!r}")


@dataclass
class StorageRetryPolicy:
    """Retry-with-backoff applied to faulted operations.

    A failed attempt still costs the full operation duration (the
    controller noticed the error only at the end), then waits
    ``base_delay * multiplier**attempt`` (capped at ``max_delay``) before
    trying again.  ``max_attempts`` bounds the total number of attempts;
    exhausting it raises :class:`StorageFaultError` -- transient fault
    configurations should make that practically impossible.
    """

    base_delay: float = 0.005
    multiplier: float = 2.0
    max_delay: float = 0.1
    max_attempts: int = 50

    def __post_init__(self) -> None:
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("retry delays must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier!r}")
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts!r}")

    def delay_for(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (0-based)."""
        return min(self.base_delay * (self.multiplier ** attempt), self.max_delay)


@dataclass
class StorageFaultModel:
    """Transient I/O fault injection for one stable-storage device.

    ``fail_prob`` fails each attempt independently (drawn from the
    device's seeded stream); ``fail_ops`` fails specific operation
    indices (0-based, matching the device's op counter, deterministic,
    first attempt only); ``windows`` fail every attempt
    started inside ``[start, end)`` -- an ``end`` of ``None`` never
    heals, so pair it with a finite retry budget on purpose.
    """

    fail_prob: float = 0.0
    fail_ops: Tuple[int, ...] = ()
    windows: List[Tuple[float, Optional[float]]] = field(default_factory=list)
    retry: StorageRetryPolicy = field(default_factory=StorageRetryPolicy)

    def __post_init__(self) -> None:
        if not 0.0 <= self.fail_prob < 1.0:
            raise ValueError(f"fail_prob must be in [0, 1), got {self.fail_prob!r}")
        for start, end in self.windows:
            if end is not None and end < start:
                raise ValueError(f"fault window heals before it starts: {start} > {end}")

    def add_window(self, start: float, end: Optional[float]) -> None:
        """Add an outage window; ``end=None`` means it never heals."""
        self.windows.append((start, end))

    def attempt_fails(
        self, op_index: int, attempt: int, at: float, rng: random.Random
    ) -> bool:
        """Whether attempt number ``attempt`` (0-based) of op ``op_index``
        starting at time ``at`` fails.  ``fail_ops`` entries are transient:
        they fail only the first attempt, the retry succeeds."""
        if attempt == 0 and op_index in self.fail_ops:
            return True
        for start, end in self.windows:
            if at >= start and (end is None or at < end):
                return True
        return bool(self.fail_prob) and rng.random() < self.fail_prob


@dataclass
class StableStorageStats:
    """Operation counters for one stable-storage device."""

    reads: int = 0
    writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    busy_time: float = 0.0
    #: transient I/O faults injected (failed attempts that were retried)
    faults_injected: int = 0
    #: extra device time spent on failed attempts and backoff waits
    retry_time: float = 0.0
    #: time callers spent waiting for synchronous operations, by node
    sync_stall_time: Dict[int, float] = field(default_factory=dict)
    #: log appends absorbed into group-commit batches
    batched_appends: int = 0
    #: group-commit batches flushed to the device
    batch_flushes: int = 0
    #: queued appends lost to a crash before their batch flushed
    batch_lost: int = 0
    #: space reclaimed by GC / compaction (metadata operations)
    bytes_reclaimed: int = 0
    #: reclaim operations (checkpoint supersession, log compaction)
    reclaims: int = 0

    def add_stall(self, node: int, duration: float) -> None:
        """Charge ``duration`` seconds of synchronous wait to ``node``."""
        self.sync_stall_time[node] = self.sync_stall_time.get(node, 0.0) + duration

    @property
    def operations(self) -> int:
        """Total device operations (reads + writes)."""
        return self.reads + self.writes

    @property
    def total_bytes(self) -> int:
        """Total bytes transferred (read + written)."""
        return self.bytes_read + self.bytes_written


class StableStorage:
    """An asynchronous stable-storage device attached to one node.

    Operations complete via callback after the modelled delay; the device
    serializes concurrent operations (one head).  Use ``owner`` for
    attribution in traces and stall accounting.
    """

    def __init__(
        self,
        sim: Simulator,
        owner: int,
        op_latency: float = DEFAULT_OP_LATENCY,
        bandwidth_bps: float = DEFAULT_BANDWIDTH,
        trace: Optional[TraceRecorder] = None,
        faults: Optional[StorageFaultModel] = None,
        rng: Optional[random.Random] = None,
        group_commit: Optional[GroupCommitPolicy] = None,
    ) -> None:
        if op_latency < 0:
            raise ValueError(f"op_latency must be non-negative, got {op_latency!r}")
        if bandwidth_bps <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth_bps!r}")
        self.sim = sim
        self.owner = owner
        self.op_latency = op_latency
        self.bandwidth_bps = bandwidth_bps
        self.trace = trace
        self.faults = faults
        self.rng = rng
        self.group_commit = group_commit
        self.stats = StableStorageStats()
        #: optional repro.core.metrics_registry.MetricsRegistry (set by System)
        self.registry = None
        #: optional repro.obs.CostLedger (set by System; None = zero cost);
        #: charged beside every stats mutation so account sums conserve
        self.cost = None
        self._data: Dict[str, Any] = {}
        self._device_free_at = 0.0
        self._pending: Dict[int, Any] = {}
        self._op_spans: Dict[int, int] = {}
        self._next_op_id = 0
        # group-commit write buffer: (log, entry, size, on_done, stall_node,
        # enqueued_at), volatile until the batch flush lands
        self._batch_queue: List[Tuple[str, Any, int, Any, Optional[int], float]] = []
        self._batch_bytes = 0
        self._batch_timer: Optional[Any] = None

    # ------------------------------------------------------------------
    def _fault_rng(self) -> random.Random:
        if self.rng is None:
            self.rng = random.Random(derive_seed(0, f"storage.faults.{self.owner}"))
        return self.rng

    def _op_duration(self, size_bytes: int) -> float:
        return self.op_latency + size_bytes / self.bandwidth_bps

    def _faulted_start(self, op_id: int, start: float, duration: float) -> float:
        """Push the successful attempt's start time past injected faults.

        Each failed attempt occupies the device for the full operation
        duration, then waits out the retry backoff.  Raises
        :class:`StorageFaultError` once the retry budget is exhausted.
        """
        attempt = 0
        rng = self._fault_rng()
        while self.faults.attempt_fails(op_id, attempt, start, rng):
            attempt += 1
            if attempt >= self.faults.retry.max_attempts:
                raise StorageFaultError(
                    f"storage device {self.owner}: op {op_id} failed "
                    f"{attempt} attempts (non-transient fault?)"
                )
            wasted = duration + self.faults.retry.delay_for(attempt - 1)
            self.stats.faults_injected += 1
            self.stats.retry_time += wasted
            if self.trace is not None:
                self.trace.record(
                    self.sim.now, "storage", self.owner, "fault",
                    op=op_id, attempt=attempt, retry_at=start + wasted,
                )
            start += wasted
        return start

    def _schedule_op(
        self, size_bytes: int, done: Callable[[], None], kind: str = "op"
    ) -> float:
        """Serialize on the device; returns completion time."""
        start = max(self.sim.now, self._device_free_at)
        duration = self._op_duration(size_bytes)
        op_id = self._next_op_id
        self._next_op_id += 1
        if self.faults is not None:
            start = self._faulted_start(op_id, start, duration)
        finish = start + duration
        self._device_free_at = finish
        self.stats.busy_time += duration
        if self.trace is not None and self.trace.spans.enabled:
            # span covers request -> durable: queueing and injected
            # retries included, which is the latency callers experience
            span = self.trace.spans.begin(
                f"storage.{kind}", self.owner, self.sim.now, size=size_bytes
            )
            if span is not None:
                self._op_spans[op_id] = span
        if self.registry is not None:
            self.registry.histogram("storage.op_latency").observe(
                finish - self.sim.now
            )
            self.registry.counter("storage.ops").inc()
            self.registry.counter("storage.bytes").inc(size_bytes)

        def complete() -> None:
            self._pending.pop(op_id, None)
            span = self._op_spans.pop(op_id, None)
            if span is not None:
                self.trace.spans.end(span, self.sim.now)
            done()

        self._pending[op_id] = self.sim.schedule_at(finish, complete, label="stable_op")
        return finish

    def abort_pending(self) -> int:
        """Drop operations still in flight (the owner crashed).

        Data queued in write buffers but not yet committed is lost with
        the crash -- this is what makes asynchronous (optimistic) logging
        lossy and synchronous (pessimistic) logging safe.  Returns the
        number of aborted operations.
        """
        count = len(self._pending)
        for handle in self._pending.values():
            handle.cancel()
        self._pending.clear()
        if self._op_spans and self.trace is not None:
            for span in self._op_spans.values():
                self.trace.spans.end(span, self.sim.now, aborted=True)
        self._op_spans.clear()
        self._device_free_at = self.sim.now
        # the group-commit write buffer is volatile: queued appends that
        # never flushed die with the process, exactly like an in-flight op
        if self._batch_timer is not None:
            self._batch_timer.cancel()
            self._batch_timer = None
        if self._batch_queue:
            self.stats.batch_lost += len(self._batch_queue)
            self._batch_queue.clear()
            self._batch_bytes = 0
        return count

    # ------------------------------------------------------------------
    def write(
        self,
        name: str,
        value: Any,
        size_bytes: int,
        on_done: Optional[Callable[[], None]] = None,
        stall_node: Optional[int] = None,
    ) -> float:
        """Durably write ``value`` under ``name``.

        ``on_done`` fires when the write is on stable storage.  If
        ``stall_node`` is given, the wait is charged to that node's
        synchronous-stall account (the cost the paper's new algorithm
        avoids imposing on live processes).

        Returns the completion time.
        """
        self.stats.writes += 1
        self.stats.bytes_written += size_bytes
        if self.cost is not None:
            self.cost.charge_storage(self.sim.now, self.owner, "write", name, size_bytes)
        if self.trace is not None:
            self.trace.record(
                self.sim.now, "storage", self.owner, "write", name=name, size=size_bytes
            )

        def done() -> None:
            """Apply the write once the device op completes."""
            self._data[name] = value
            if on_done is not None:
                on_done()

        finish = self._schedule_op(size_bytes, done, kind="write")
        if stall_node is not None:
            self.stats.add_stall(stall_node, finish - self.sim.now)
        return finish

    def read(
        self,
        name: str,
        size_bytes: int,
        on_done: Callable[[Any], None],
        stall_node: Optional[int] = None,
    ) -> float:
        """Read ``name`` back; ``on_done(value)`` fires on completion.

        Reading a missing name delivers ``None``.  Returns completion time.
        """
        self.stats.reads += 1
        self.stats.bytes_read += size_bytes
        if self.cost is not None:
            self.cost.charge_storage(self.sim.now, self.owner, "read", name, size_bytes)
        if self.trace is not None:
            self.trace.record(
                self.sim.now, "storage", self.owner, "read", name=name, size=size_bytes
            )

        def done() -> None:
            """Deliver the value once the device op completes."""
            on_done(self._data.get(name))

        finish = self._schedule_op(size_bytes, done, kind="read")
        if stall_node is not None:
            self.stats.add_stall(stall_node, finish - self.sim.now)
        return finish

    def write_bootstrap(self, name: str, value: Any) -> None:
        """Install ``name`` durably at time zero, free of charge.

        For state that exists on disk before the process launches (the
        initial image, the round-0 snapshot); not for runtime writes.
        """
        self._data[name] = value

    # ------------------------------------------------------------------
    # append-only logs (used by Manetho-style and receiver-based logging)
    # ------------------------------------------------------------------
    def log_append(
        self,
        log: str,
        entry: Any,
        size_bytes: int,
        on_done: Optional[Callable[[], None]] = None,
        stall_node: Optional[int] = None,
    ) -> float:
        """Durably append ``entry`` to the named log.

        Without group commit this costs one write of ``size_bytes`` and
        returns the completion time.  With a :class:`GroupCommitPolicy`
        attached, the append joins the volatile write buffer and is
        durable only when its batch flushes -- ``on_done`` still fires
        exactly at durability, but the returned time is the *projected*
        flush deadline (the batch may flush earlier on a size threshold).
        """
        if self.group_commit is not None:
            return self._enqueue_append(log, entry, size_bytes, on_done, stall_node)
        self.stats.writes += 1
        self.stats.bytes_written += size_bytes
        if self.cost is not None:
            self.cost.charge_storage(
                self.sim.now, self.owner, "write", log, size_bytes, is_log=True
            )
        if self.trace is not None:
            self.trace.record(
                self.sim.now, "storage", self.owner, "log_append", log=log, size=size_bytes
            )

        def done() -> None:
            """Append the entry once the device op completes."""
            self._data.setdefault(f"log:{log}", []).append(entry)
            if on_done is not None:
                on_done()

        finish = self._schedule_op(size_bytes, done, kind="log_append")
        if stall_node is not None:
            self.stats.add_stall(stall_node, finish - self.sim.now)
        return finish

    def _enqueue_append(
        self,
        log: str,
        entry: Any,
        size_bytes: int,
        on_done: Optional[Callable[[], None]],
        stall_node: Optional[int],
    ) -> float:
        """Queue one append in the group-commit buffer; maybe flush."""
        policy = self.group_commit
        self.stats.batched_appends += 1
        if self.trace is not None:
            self.trace.record(
                self.sim.now, "storage", self.owner, "log_append",
                log=log, size=size_bytes, batched=True,
            )
        self._batch_queue.append(
            (log, entry, size_bytes, on_done, stall_node, self.sim.now)
        )
        self._batch_bytes += size_bytes
        if self.registry is not None:
            self.registry.counter("storage.batched_appends").inc()
        if (
            len(self._batch_queue) >= policy.max_ops
            or self._batch_bytes >= policy.max_bytes
        ):
            return self._flush_batch()
        if self._batch_timer is None:
            self._batch_timer = self.sim.schedule(
                policy.window, self._flush_on_window, label=f"group_commit:{self.owner}"
            )
        return self.sim.now + policy.window

    def _flush_on_window(self) -> None:
        """Window timer fired: force the pending batch to the device."""
        self._batch_timer = None
        if self._batch_queue:
            self._flush_batch()

    def _flush_batch(self) -> float:
        """Write every queued append as one device operation."""
        if self._batch_timer is not None:
            self._batch_timer.cancel()
            self._batch_timer = None
        batch, self._batch_queue = self._batch_queue, []
        total = self._batch_bytes
        self._batch_bytes = 0
        self.stats.writes += 1
        self.stats.bytes_written += total
        self.stats.batch_flushes += 1
        if self.cost is not None:
            # one device op; per-entry bytes keep purpose attribution exact
            self.cost.charge_batch(
                self.sim.now,
                self.owner,
                [(log, size) for log, _e, size, _cb, _s, _at in batch],
                total,
            )
        if self.trace is not None:
            self.trace.record(
                self.sim.now, "storage", self.owner, "batch_flush",
                ops=len(batch), size=total,
            )

        def done() -> None:
            # entries become visible (and callers learn of durability)
            # in enqueue order, matching the device's FIFO semantics
            for log, entry, _size, _on_done, _stall, _at in batch:
                self._data.setdefault(f"log:{log}", []).append(entry)
            for _log, _entry, _size, batch_on_done, _stall, _at in batch:
                if batch_on_done is not None:
                    batch_on_done()

        finish = self._schedule_op(total, done, kind="batch_flush")
        for _log, _entry, _size, _on_done, stall_node, enqueued_at in batch:
            if stall_node is not None:
                # a batched caller stalls from enqueue to durable: the
                # window wait is part of the latency it experiences
                self.stats.add_stall(stall_node, finish - enqueued_at)
            if self.registry is not None:
                self.registry.histogram("storage.batch_queue_wait").observe(
                    self.sim.now - enqueued_at
                )
        if self.registry is not None:
            self.registry.counter("storage.batch_flushes").inc()
            self.registry.histogram("storage.batch_size_ops").observe(len(batch))
            self.registry.histogram("storage.batch_size_bytes").observe(total)
        return finish

    def log_read(
        self,
        log: str,
        entry_bytes: int,
        on_done: Callable[[list], None],
        stall_node: Optional[int] = None,
    ) -> float:
        """Read the whole named log back (cost: entries * ``entry_bytes``).

        ``on_done`` receives a list copy (empty if the log was never
        written).  Returns the completion time.
        """
        entries = list(self._data.get(f"log:{log}", []))
        size = entry_bytes * len(entries)
        self.stats.reads += 1
        self.stats.bytes_read += size
        if self.cost is not None:
            self.cost.charge_storage(
                self.sim.now, self.owner, "read", log, size, is_log=True
            )
        if self.trace is not None:
            self.trace.record(
                self.sim.now, "storage", self.owner, "log_read", log=log, size=size
            )

        def done() -> None:
            """Deliver the log snapshot once the device op completes."""
            on_done(entries)

        finish = self._schedule_op(size, done, kind="log_read")
        if stall_node is not None:
            self.stats.add_stall(stall_node, finish - self.sim.now)
        return finish

    def log_len(self, log: str) -> int:
        """Zero-cost length of the named log (tests/assertions)."""
        return len(self._data.get(f"log:{log}", []))

    def log_truncate_head(self, log: str, keep, size_of=None) -> int:
        """Drop log entries that ``keep`` rejects (garbage collection).

        Modelled as a metadata operation (advancing the log's start
        pointer / recycling extents), so it costs no simulated I/O time.
        ``size_of(entry)`` -- when given -- credits each dropped entry's
        bytes to the device's reclaimed-space account, so per-protocol GC
        effectiveness is measurable without changing any timing.
        Returns the number of entries dropped.
        """
        key = f"log:{log}"
        entries = self._data.get(key)
        if not entries:
            return 0
        kept = [entry for entry in entries if keep(entry)]
        dropped = len(entries) - len(kept)
        self._data[key] = kept
        if dropped and size_of is not None:
            freed = sum(size_of(entry) for entry in entries if not keep(entry))
            self.stats.bytes_reclaimed += freed
            self.stats.reclaims += 1
            if self.cost is not None:
                self.cost.charge_gc(self.sim.now, self.owner, freed)
            if self.registry is not None:
                self.registry.counter("storage.bytes_reclaimed").inc(freed)
        return dropped

    def reclaim(self, name: str, size_bytes: int) -> None:
        """Free a durable object and credit its space to the GC account.

        A metadata operation (extent recycling): no simulated I/O time.
        Used by incremental checkpointing to drop superseded chain
        segments and by coordinated GC to drop committed rounds.
        """
        self._data.pop(name, None)
        self.stats.bytes_reclaimed += size_bytes
        self.stats.reclaims += 1
        if self.cost is not None:
            self.cost.charge_gc(self.sim.now, self.owner, size_bytes)
        if self.trace is not None:
            self.trace.record(
                self.sim.now, "storage", self.owner, "reclaim",
                name=name, size=size_bytes,
            )
        if self.registry is not None:
            self.registry.counter("storage.bytes_reclaimed").inc(size_bytes)

    # ------------------------------------------------------------------
    def peek(self, name: str) -> Any:
        """Zero-cost inspection for tests and assertions (not simulation)."""
        return self._data.get(name)

    def contains(self, name: str) -> bool:
        """Whether ``name`` has been durably written."""
        return name in self._data

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"StableStorage(owner={self.owner}, reads={self.stats.reads}, "
            f"writes={self.stats.writes})"
        )
