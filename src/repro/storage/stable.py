"""Stable storage with realistic (mid-90s) access costs.

The paper's thesis is that "latency in accessing stable storage" has
become a first-class cost of recovery.  :class:`StableStorage` models a
per-node stable store (a local disk, or a survivable storage service)
with a fixed per-operation latency plus a size-proportional transfer
time, serialized per device.  Default parameters are chosen so restoring
the paper's "about one Mbyte" process state costs on the order of a
second -- consistent with the evaluation's "restoring its state may take
tens of seconds or a few minutes" for large processes and its measured
~5 s recovery dominated by detection plus state restore.

Contents written to stable storage survive crashes; the data itself is
held in plain Python dictionaries keyed by name.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.sim.kernel import Simulator
from repro.sim.rng import derive_seed
from repro.sim.trace import TraceRecorder

#: Per-operation latency (seek + rotation + controller), seconds.
DEFAULT_OP_LATENCY = 0.020
#: Sustained transfer bandwidth, bytes/second (mid-90s SCSI disk).
DEFAULT_BANDWIDTH = 1_000_000.0


class StorageFaultError(RuntimeError):
    """An operation exhausted its retry budget (a non-transient fault)."""


@dataclass
class StorageRetryPolicy:
    """Retry-with-backoff applied to faulted operations.

    A failed attempt still costs the full operation duration (the
    controller noticed the error only at the end), then waits
    ``base_delay * multiplier**attempt`` (capped at ``max_delay``) before
    trying again.  ``max_attempts`` bounds the total number of attempts;
    exhausting it raises :class:`StorageFaultError` -- transient fault
    configurations should make that practically impossible.
    """

    base_delay: float = 0.005
    multiplier: float = 2.0
    max_delay: float = 0.1
    max_attempts: int = 50

    def __post_init__(self) -> None:
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("retry delays must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier!r}")
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts!r}")

    def delay_for(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (0-based)."""
        return min(self.base_delay * (self.multiplier ** attempt), self.max_delay)


@dataclass
class StorageFaultModel:
    """Transient I/O fault injection for one stable-storage device.

    ``fail_prob`` fails each attempt independently (drawn from the
    device's seeded stream); ``fail_ops`` fails specific operation
    indices (0-based, matching the device's op counter, deterministic,
    first attempt only); ``windows`` fail every attempt
    started inside ``[start, end)`` -- an ``end`` of ``None`` never
    heals, so pair it with a finite retry budget on purpose.
    """

    fail_prob: float = 0.0
    fail_ops: Tuple[int, ...] = ()
    windows: List[Tuple[float, Optional[float]]] = field(default_factory=list)
    retry: StorageRetryPolicy = field(default_factory=StorageRetryPolicy)

    def __post_init__(self) -> None:
        if not 0.0 <= self.fail_prob < 1.0:
            raise ValueError(f"fail_prob must be in [0, 1), got {self.fail_prob!r}")
        for start, end in self.windows:
            if end is not None and end < start:
                raise ValueError(f"fault window heals before it starts: {start} > {end}")

    def add_window(self, start: float, end: Optional[float]) -> None:
        self.windows.append((start, end))

    def attempt_fails(
        self, op_index: int, attempt: int, at: float, rng: random.Random
    ) -> bool:
        """Whether attempt number ``attempt`` (0-based) of op ``op_index``
        starting at time ``at`` fails.  ``fail_ops`` entries are transient:
        they fail only the first attempt, the retry succeeds."""
        if attempt == 0 and op_index in self.fail_ops:
            return True
        for start, end in self.windows:
            if at >= start and (end is None or at < end):
                return True
        return bool(self.fail_prob) and rng.random() < self.fail_prob


@dataclass
class StableStorageStats:
    """Operation counters for one stable-storage device."""

    reads: int = 0
    writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    busy_time: float = 0.0
    #: transient I/O faults injected (failed attempts that were retried)
    faults_injected: int = 0
    #: extra device time spent on failed attempts and backoff waits
    retry_time: float = 0.0
    #: time callers spent waiting for synchronous operations, by node
    sync_stall_time: Dict[int, float] = field(default_factory=dict)

    def add_stall(self, node: int, duration: float) -> None:
        self.sync_stall_time[node] = self.sync_stall_time.get(node, 0.0) + duration

    @property
    def operations(self) -> int:
        return self.reads + self.writes

    @property
    def total_bytes(self) -> int:
        return self.bytes_read + self.bytes_written


class StableStorage:
    """An asynchronous stable-storage device attached to one node.

    Operations complete via callback after the modelled delay; the device
    serializes concurrent operations (one head).  Use ``owner`` for
    attribution in traces and stall accounting.
    """

    def __init__(
        self,
        sim: Simulator,
        owner: int,
        op_latency: float = DEFAULT_OP_LATENCY,
        bandwidth_bps: float = DEFAULT_BANDWIDTH,
        trace: Optional[TraceRecorder] = None,
        faults: Optional[StorageFaultModel] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        if op_latency < 0:
            raise ValueError(f"op_latency must be non-negative, got {op_latency!r}")
        if bandwidth_bps <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth_bps!r}")
        self.sim = sim
        self.owner = owner
        self.op_latency = op_latency
        self.bandwidth_bps = bandwidth_bps
        self.trace = trace
        self.faults = faults
        self.rng = rng
        self.stats = StableStorageStats()
        #: optional repro.core.metrics_registry.MetricsRegistry (set by System)
        self.registry = None
        self._data: Dict[str, Any] = {}
        self._device_free_at = 0.0
        self._pending: Dict[int, Any] = {}
        self._op_spans: Dict[int, int] = {}
        self._next_op_id = 0

    # ------------------------------------------------------------------
    def _fault_rng(self) -> random.Random:
        if self.rng is None:
            self.rng = random.Random(derive_seed(0, f"storage.faults.{self.owner}"))
        return self.rng

    def _op_duration(self, size_bytes: int) -> float:
        return self.op_latency + size_bytes / self.bandwidth_bps

    def _faulted_start(self, op_id: int, start: float, duration: float) -> float:
        """Push the successful attempt's start time past injected faults.

        Each failed attempt occupies the device for the full operation
        duration, then waits out the retry backoff.  Raises
        :class:`StorageFaultError` once the retry budget is exhausted.
        """
        attempt = 0
        rng = self._fault_rng()
        while self.faults.attempt_fails(op_id, attempt, start, rng):
            attempt += 1
            if attempt >= self.faults.retry.max_attempts:
                raise StorageFaultError(
                    f"storage device {self.owner}: op {op_id} failed "
                    f"{attempt} attempts (non-transient fault?)"
                )
            wasted = duration + self.faults.retry.delay_for(attempt - 1)
            self.stats.faults_injected += 1
            self.stats.retry_time += wasted
            if self.trace is not None:
                self.trace.record(
                    self.sim.now, "storage", self.owner, "fault",
                    op=op_id, attempt=attempt, retry_at=start + wasted,
                )
            start += wasted
        return start

    def _schedule_op(
        self, size_bytes: int, done: Callable[[], None], kind: str = "op"
    ) -> float:
        """Serialize on the device; returns completion time."""
        start = max(self.sim.now, self._device_free_at)
        duration = self._op_duration(size_bytes)
        op_id = self._next_op_id
        self._next_op_id += 1
        if self.faults is not None:
            start = self._faulted_start(op_id, start, duration)
        finish = start + duration
        self._device_free_at = finish
        self.stats.busy_time += duration
        if self.trace is not None and self.trace.spans.enabled:
            # span covers request -> durable: queueing and injected
            # retries included, which is the latency callers experience
            span = self.trace.spans.begin(
                f"storage.{kind}", self.owner, self.sim.now, size=size_bytes
            )
            if span is not None:
                self._op_spans[op_id] = span
        if self.registry is not None:
            self.registry.histogram("storage.op_latency").observe(
                finish - self.sim.now
            )
            self.registry.counter("storage.ops").inc()
            self.registry.counter("storage.bytes").inc(size_bytes)

        def complete() -> None:
            self._pending.pop(op_id, None)
            span = self._op_spans.pop(op_id, None)
            if span is not None:
                self.trace.spans.end(span, self.sim.now)
            done()

        self._pending[op_id] = self.sim.schedule_at(finish, complete, label="stable_op")
        return finish

    def abort_pending(self) -> int:
        """Drop operations still in flight (the owner crashed).

        Data queued in write buffers but not yet committed is lost with
        the crash -- this is what makes asynchronous (optimistic) logging
        lossy and synchronous (pessimistic) logging safe.  Returns the
        number of aborted operations.
        """
        count = len(self._pending)
        for handle in self._pending.values():
            handle.cancel()
        self._pending.clear()
        if self._op_spans and self.trace is not None:
            for span in self._op_spans.values():
                self.trace.spans.end(span, self.sim.now, aborted=True)
        self._op_spans.clear()
        self._device_free_at = self.sim.now
        return count

    # ------------------------------------------------------------------
    def write(
        self,
        name: str,
        value: Any,
        size_bytes: int,
        on_done: Optional[Callable[[], None]] = None,
        stall_node: Optional[int] = None,
    ) -> float:
        """Durably write ``value`` under ``name``.

        ``on_done`` fires when the write is on stable storage.  If
        ``stall_node`` is given, the wait is charged to that node's
        synchronous-stall account (the cost the paper's new algorithm
        avoids imposing on live processes).

        Returns the completion time.
        """
        self.stats.writes += 1
        self.stats.bytes_written += size_bytes
        if self.trace is not None:
            self.trace.record(
                self.sim.now, "storage", self.owner, "write", name=name, size=size_bytes
            )

        def done() -> None:
            self._data[name] = value
            if on_done is not None:
                on_done()

        finish = self._schedule_op(size_bytes, done, kind="write")
        if stall_node is not None:
            self.stats.add_stall(stall_node, finish - self.sim.now)
        return finish

    def read(
        self,
        name: str,
        size_bytes: int,
        on_done: Callable[[Any], None],
        stall_node: Optional[int] = None,
    ) -> float:
        """Read ``name`` back; ``on_done(value)`` fires on completion.

        Reading a missing name delivers ``None``.  Returns completion time.
        """
        self.stats.reads += 1
        self.stats.bytes_read += size_bytes
        if self.trace is not None:
            self.trace.record(
                self.sim.now, "storage", self.owner, "read", name=name, size=size_bytes
            )

        def done() -> None:
            on_done(self._data.get(name))

        finish = self._schedule_op(size_bytes, done, kind="read")
        if stall_node is not None:
            self.stats.add_stall(stall_node, finish - self.sim.now)
        return finish

    def write_bootstrap(self, name: str, value: Any) -> None:
        """Install ``name`` durably at time zero, free of charge.

        For state that exists on disk before the process launches (the
        initial image, the round-0 snapshot); not for runtime writes.
        """
        self._data[name] = value

    # ------------------------------------------------------------------
    # append-only logs (used by Manetho-style and receiver-based logging)
    # ------------------------------------------------------------------
    def log_append(
        self,
        log: str,
        entry: Any,
        size_bytes: int,
        on_done: Optional[Callable[[], None]] = None,
        stall_node: Optional[int] = None,
    ) -> float:
        """Durably append ``entry`` to the named log.

        Costs one write of ``size_bytes``.  Returns the completion time.
        """
        self.stats.writes += 1
        self.stats.bytes_written += size_bytes
        if self.trace is not None:
            self.trace.record(
                self.sim.now, "storage", self.owner, "log_append", log=log, size=size_bytes
            )

        def done() -> None:
            self._data.setdefault(f"log:{log}", []).append(entry)
            if on_done is not None:
                on_done()

        finish = self._schedule_op(size_bytes, done, kind="log_append")
        if stall_node is not None:
            self.stats.add_stall(stall_node, finish - self.sim.now)
        return finish

    def log_read(
        self,
        log: str,
        entry_bytes: int,
        on_done: Callable[[list], None],
        stall_node: Optional[int] = None,
    ) -> float:
        """Read the whole named log back (cost: entries * ``entry_bytes``).

        ``on_done`` receives a list copy (empty if the log was never
        written).  Returns the completion time.
        """
        entries = list(self._data.get(f"log:{log}", []))
        size = entry_bytes * len(entries)
        self.stats.reads += 1
        self.stats.bytes_read += size
        if self.trace is not None:
            self.trace.record(
                self.sim.now, "storage", self.owner, "log_read", log=log, size=size
            )

        def done() -> None:
            on_done(entries)

        finish = self._schedule_op(size, done, kind="log_read")
        if stall_node is not None:
            self.stats.add_stall(stall_node, finish - self.sim.now)
        return finish

    def log_len(self, log: str) -> int:
        """Zero-cost length of the named log (tests/assertions)."""
        return len(self._data.get(f"log:{log}", []))

    def log_truncate_head(self, log: str, keep) -> int:
        """Drop log entries that ``keep`` rejects (garbage collection).

        Modelled as a metadata operation (advancing the log's start
        pointer / recycling extents), so it costs no simulated I/O time.
        Returns the number of entries dropped.
        """
        key = f"log:{log}"
        entries = self._data.get(key)
        if not entries:
            return 0
        kept = [entry for entry in entries if keep(entry)]
        dropped = len(entries) - len(kept)
        self._data[key] = kept
        return dropped

    # ------------------------------------------------------------------
    def peek(self, name: str) -> Any:
        """Zero-cost inspection for tests and assertions (not simulation)."""
        return self._data.get(name)

    def contains(self, name: str) -> bool:
        """Whether ``name`` has been durably written."""
        return name in self._data

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"StableStorage(owner={self.owner}, reads={self.stats.reads}, "
            f"writes={self.stats.writes})"
        )
