"""Fault injection (crashes, link faults, partitions, storage faults)
and timeout failure detection.

The paper's evaluation hinges on *when* failures happen (a second crash
during another process's recovery is the interesting case) and on how
long they take to notice ("a typical implementation would require several
seconds of timeouts and retrials to detect that process q has indeed
failed").  This module provides:

* :class:`FailureInjector` -- the unified fault planner.  It applies a
  list of plans, each either *timed* (fire at a fixed virtual time) or
  *trace-triggered* ("the moment q receives p's depinfo request"):

  - :class:`CrashPlan` -- crash-stop a process (the seed's only fault),
  - :class:`LinkFaultPlan` -- switch probabilistic loss / duplication /
    reordering on for one link or the whole network, optionally
    reverting after a duration,
  - :class:`PartitionPlan` -- cut the network into groups, healing after
    a duration,
  - :class:`StorageFaultPlan` -- degrade a node's stable storage with
    transient I/O faults (an outage window or a failure probability).

* :class:`FailureDetector` -- a timeout-style detector modelled as an
  oracle with delay: a crash becomes visible to every peer (and to the
  restart machinery) exactly ``detection_delay`` seconds after it
  happens.  Within the crash-stop model and ≤ f failures this is a
  faithful abstraction of the paper's timeout/retry detector.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.sim.kernel import Simulator
from repro.sim.trace import TraceEvent, TraceRecorder

#: The paper's "several seconds of timeouts and retrials".
DEFAULT_DETECTION_DELAY = 3.0


class FailureDetector:
    """Timeout failure detector with a fixed detection latency.

    ``notify_crash``/``notify_up`` are called by the system at the
    instant a node crashes or completes recovery; listeners hear about it
    ``detection_delay`` (respectively ``up_delay``) seconds later.
    """

    def __init__(
        self,
        sim: Simulator,
        detection_delay: float = DEFAULT_DETECTION_DELAY,
        up_delay: float = 0.0,
        trace: Optional[TraceRecorder] = None,
    ) -> None:
        if detection_delay < 0 or up_delay < 0:
            raise ValueError("delays must be non-negative")
        self.sim = sim
        self.detection_delay = detection_delay
        self.up_delay = up_delay
        self.trace = trace
        self._listeners: List[Callable[[int, str], None]] = []
        self._suspected: Set[int] = set()
        self._known: Set[int] = set()
        #: per-node notification sequence; a pending announcement is
        #: superseded (dropped) by any later notify_crash/notify_up
        self._notify_seq: Dict[int, int] = {}

    # ------------------------------------------------------------------
    def register_node(self, node_id: int) -> None:
        """Declare a node as part of the membership."""
        self._known.add(node_id)

    def add_listener(self, callback: Callable[[int, str], None]) -> None:
        """``callback(node_id, status)`` with status ``"down"`` or ``"up"``."""
        self._listeners.append(callback)

    # ------------------------------------------------------------------
    def notify_crash(self, node_id: int) -> None:
        """Report a crash; suspicion propagates after the detection delay."""
        seq = self._notify_seq.get(node_id, 0) + 1
        self._notify_seq[node_id] = seq
        self.sim.schedule(
            self.detection_delay,
            self._announce,
            node_id,
            "down",
            seq,
            label="detector.down",
        )

    def notify_up(self, node_id: int) -> None:
        """Report a completed recovery; visibility after ``up_delay``."""
        seq = self._notify_seq.get(node_id, 0) + 1
        self._notify_seq[node_id] = seq
        self.sim.schedule(
            self.up_delay, self._announce, node_id, "up", seq, label="detector.up"
        )

    def _announce(self, node_id: int, status: str, seq: int) -> None:
        if seq != self._notify_seq.get(node_id, 0):
            return  # superseded by a newer crash/recovery of the same node
        if status == "down":
            self._suspected.add(node_id)
        else:
            self._suspected.discard(node_id)
        if self.trace is not None:
            self.trace.record(self.sim.now, "detector", node_id, status)
        for listener in list(self._listeners):
            listener(node_id, status)

    # ------------------------------------------------------------------
    def is_suspected(self, node_id: int) -> bool:
        """Whether ``node_id`` is currently suspected down."""
        return node_id in self._suspected

    def live_view(self) -> Set[int]:
        """Nodes not currently suspected (the detector's view of L)."""
        return self._known - self._suspected

    def suspected_view(self) -> Set[int]:
        """Nodes currently suspected (the detector's view of R)."""
        return set(self._suspected)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FailureDetector(delay={self.detection_delay}, suspected={sorted(self._suspected)})"


# ----------------------------------------------------------------------
# fault plans
# ----------------------------------------------------------------------
@dataclass
class TriggeredPlan:
    """Shared trigger machinery for every fault plan.

    Either ``at_time`` is set (timed plan) or ``category``/``action``
    describe a trace trigger, optionally filtered by ``match_node`` and
    fired ``delay`` seconds after the ``occurrence``-th matching event.
    ``immediate=True`` fires synchronously inside the trace callback,
    i.e. *before* the handler of the traced event runs -- it is
    incompatible with a positive ``delay`` (construction raises).
    """

    at_time: Optional[float] = None
    category: Optional[str] = None
    action: Optional[str] = None
    match_node: Optional[int] = None
    match_details: Optional[Dict[str, object]] = None
    delay: float = 0.0
    occurrence: int = 1
    immediate: bool = False
    _seen: int = field(default=0, repr=False)
    _armed: bool = field(default=True, repr=False)

    def __post_init__(self) -> None:
        if self.immediate and self.delay > 0:
            raise ValueError(
                "immediate=True fires inside the trace callback and cannot "
                f"be combined with delay={self.delay!r}; use one or the other"
            )
        if self.delay < 0:
            raise ValueError(f"delay must be non-negative, got {self.delay!r}")
        if self.occurrence < 1:
            raise ValueError(f"occurrence must be >= 1, got {self.occurrence!r}")
        if self.at_time is not None and self.at_time < 0:
            raise ValueError(f"at_time must be non-negative, got {self.at_time!r}")

    def is_timed(self) -> bool:
        return self.at_time is not None

    def matches(self, event: TraceEvent) -> bool:
        if not self._armed or self.is_timed():
            return False
        if not event.matches(self.category, self.match_node, self.action):
            return False
        if self.match_details:
            for key, value in self.match_details.items():
                if event.details.get(key) != value:
                    return False
        return True


@dataclass
class CrashPlan(TriggeredPlan):
    """One planned crash-stop failure of ``node``."""

    node: int = -1

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.node < 0:
            raise ValueError("CrashPlan needs a target node")


@dataclass
class LinkFaultPlan(TriggeredPlan):
    """Switch probabilistic link faults on (and optionally back off).

    With ``src``/``dst`` unset the plan replaces the network-wide default
    spec; with both set it overrides one directed link.  ``duration``
    restores the previous spec that many seconds after firing.
    """

    src: Optional[int] = None
    dst: Optional[int] = None
    loss_prob: float = 0.0
    dup_prob: float = 0.0
    reorder_prob: float = 0.0
    reorder_delay: float = 0.002
    duration: Optional[float] = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if (self.src is None) != (self.dst is None):
            raise ValueError("give both src and dst, or neither (whole network)")
        if self.duration is not None and self.duration <= 0:
            raise ValueError(f"duration must be positive, got {self.duration!r}")


@dataclass
class PartitionPlan(TriggeredPlan):
    """Cut the network into ``groups`` when fired; heal after ``duration``
    (``None`` = never heals)."""

    groups: Sequence[Iterable[int]] = ()
    duration: Optional[float] = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if len(tuple(self.groups)) < 2:
            raise ValueError("a partition plan needs at least two groups")
        if self.duration is not None and self.duration <= 0:
            raise ValueError(f"duration must be positive, got {self.duration!r}")


@dataclass
class StorageFaultPlan(TriggeredPlan):
    """Degrade stable storage on ``node`` (or every node if ``None``).

    With ``fail_prob`` unset the plan opens a full outage window: every
    operation attempted during ``duration`` fails and is retried with
    backoff until the window heals.  With ``fail_prob`` set, attempts
    fail with that probability for ``duration`` seconds (or forever).
    """

    node: Optional[int] = None
    fail_prob: Optional[float] = None
    duration: Optional[float] = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.fail_prob is None and self.duration is None:
            raise ValueError(
                "a permanent full outage would exhaust every retry budget; "
                "give a duration, a fail_prob, or both"
            )
        if self.fail_prob is not None and not 0.0 <= self.fail_prob < 1.0:
            raise ValueError(f"fail_prob must be in [0, 1), got {self.fail_prob!r}")
        if self.duration is not None and self.duration <= 0:
            raise ValueError(f"duration must be positive, got {self.duration!r}")


def crash_at(node: int, time: float) -> CrashPlan:
    """A crash of ``node`` at a fixed virtual time."""
    if time < 0:
        raise ValueError(f"crash time must be non-negative, got {time!r}")
    return CrashPlan(node=node, at_time=time)


def crash_on(
    node: int,
    category: str,
    action: str,
    match_node: Optional[int] = None,
    match_details: Optional[Dict[str, object]] = None,
    delay: float = 0.0,
    occurrence: int = 1,
    immediate: bool = False,
) -> CrashPlan:
    """A crash of ``node`` triggered by a trace event.

    Example: ``crash_on(2, "recovery", "depinfo_request_received",
    match_node=2)`` reproduces the paper's E2 scenario -- q dies exactly
    when it receives the recovery leader's request, before replying.
    """
    return CrashPlan(
        node=node,
        category=category,
        action=action,
        match_node=match_node,
        match_details=match_details,
        delay=delay,
        occurrence=occurrence,
        immediate=immediate,
    )


def partition_at(
    groups: Sequence[Iterable[int]], time: float, duration: Optional[float] = None
) -> PartitionPlan:
    """Partition the network into ``groups`` at ``time``; heal after
    ``duration`` seconds (``None`` = never)."""
    return PartitionPlan(groups=groups, at_time=time, duration=duration)


def link_faults_at(
    time: float,
    loss_prob: float = 0.0,
    dup_prob: float = 0.0,
    reorder_prob: float = 0.0,
    reorder_delay: float = 0.002,
    src: Optional[int] = None,
    dst: Optional[int] = None,
    duration: Optional[float] = None,
) -> LinkFaultPlan:
    """Turn probabilistic link faults on at ``time``."""
    return LinkFaultPlan(
        at_time=time,
        loss_prob=loss_prob,
        dup_prob=dup_prob,
        reorder_prob=reorder_prob,
        reorder_delay=reorder_delay,
        src=src,
        dst=dst,
        duration=duration,
    )


def storage_outage_at(
    node: Optional[int], time: float, duration: float
) -> StorageFaultPlan:
    """A full stable-storage outage on ``node`` over ``[time, time+duration)``."""
    return StorageFaultPlan(node=node, at_time=time, duration=duration)


class FailureInjector:
    """Applies fault plans (crash / link / partition / storage) to a
    running system.

    ``crash_fn(node_id)`` performs the actual crash; link and partition
    plans mutate the ``network``'s fault model (installing one on demand),
    and storage plans mutate the fault models of the ``storages`` mapping.
    The injector only decides *when*.  Crashing an already-crashed node
    is a silent no-op, matching the crash-stop model.
    """

    def __init__(
        self,
        sim: Simulator,
        trace: TraceRecorder,
        crash_fn: Callable[[int], None],
        plans: Optional[List[TriggeredPlan]] = None,
        network: Optional["Network"] = None,
        storages: Optional[Dict[int, "StableStorage"]] = None,
    ) -> None:
        self.sim = sim
        self.trace = trace
        self.crash_fn = crash_fn
        self.network = network
        self.storages = storages or {}
        self.plans: List[TriggeredPlan] = list(plans or [])
        self.crashes_fired: List[tuple] = []
        self.faults_fired: List[tuple] = []
        self._subscribed = False

    def arm(self) -> None:
        """Schedule timed plans and subscribe trace triggers."""
        for plan in self.plans:
            if plan.is_timed():
                self.sim.schedule_at(
                    plan.at_time, self._fire, plan, label="inject.plan"
                )
        if any(not plan.is_timed() for plan in self.plans) and not self._subscribed:
            self.trace.subscribe(self._on_trace_event)
            self._subscribed = True

    def add(self, plan: TriggeredPlan) -> None:
        """Add one more plan after arming."""
        self.plans.append(plan)
        if plan.is_timed():
            self.sim.schedule_at(plan.at_time, self._fire, plan, label="inject.plan")
        elif not self._subscribed:
            self.trace.subscribe(self._on_trace_event)
            self._subscribed = True

    # ------------------------------------------------------------------
    def _on_trace_event(self, event: TraceEvent) -> None:
        for plan in self.plans:
            if plan.matches(event):
                plan._seen += 1
                if plan._seen >= plan.occurrence:
                    plan._armed = False
                    if plan.immediate:
                        # preempt the traced event's handler (delay > 0 is
                        # rejected at plan construction)
                        self._fire(plan)
                    elif plan.delay > 0:
                        self.sim.schedule(plan.delay, self._fire, plan, label="inject.plan")
                    else:
                        # fire after the current event finishes dispatching
                        self.sim.schedule(0.0, self._fire, plan, label="inject.plan")

    # ------------------------------------------------------------------
    def _fire(self, plan: TriggeredPlan) -> None:
        if isinstance(plan, CrashPlan):
            self._fire_crash(plan)
        elif isinstance(plan, LinkFaultPlan):
            self._fire_link(plan)
        elif isinstance(plan, PartitionPlan):
            self._fire_partition(plan)
        elif isinstance(plan, StorageFaultPlan):
            self._fire_storage(plan)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown plan type {type(plan).__name__}")

    def _fire_crash(self, plan: CrashPlan) -> None:
        self.crashes_fired.append((self.sim.now, plan.node))
        self.trace.record(self.sim.now, "inject", plan.node, "crash")
        self.crash_fn(plan.node)

    def _require_network(self) -> "Network":
        if self.network is None:
            raise RuntimeError("link/partition plans need a network reference")
        return self.network

    def _fire_link(self, plan: LinkFaultPlan) -> None:
        from repro.net.faults import LinkFaultSpec

        model = self._require_network().ensure_faults()
        spec = LinkFaultSpec(
            loss_prob=plan.loss_prob,
            dup_prob=plan.dup_prob,
            reorder_prob=plan.reorder_prob,
            reorder_delay=plan.reorder_delay,
        )
        if plan.src is None:
            previous = model.set_default(spec)
            revert = lambda: model.set_default(previous)  # noqa: E731
        else:
            previous = model.set_link(plan.src, plan.dst, spec)
            if previous is None:
                revert = lambda: model.clear_link(plan.src, plan.dst)  # noqa: E731
            else:
                revert = lambda: model.set_link(plan.src, plan.dst, previous)  # noqa: E731
        self.faults_fired.append((self.sim.now, "link", plan.src, plan.dst))
        self.trace.record(
            self.sim.now, "inject", plan.src, "link_faults",
            dst=plan.dst, loss=plan.loss_prob, dup=plan.dup_prob,
            reorder=plan.reorder_prob,
        )
        if plan.duration is not None:
            self.sim.schedule(plan.duration, self._revert_link, plan, revert,
                              label="inject.revert")

    def _revert_link(self, plan: LinkFaultPlan, revert: Callable[[], None]) -> None:
        revert()
        self.trace.record(
            self.sim.now, "inject", plan.src, "link_faults_reverted", dst=plan.dst
        )

    def _fire_partition(self, plan: PartitionPlan) -> None:
        from repro.net.faults import Partition

        model = self._require_network().ensure_faults()
        end = None if plan.duration is None else self.sim.now + plan.duration
        partition = model.add_partition(
            Partition(plan.groups, start=self.sim.now, end=end)
        )
        self.faults_fired.append((self.sim.now, "partition", end))
        self.trace.record(
            self.sim.now, "inject", None, "partition",
            groups=[sorted(g) for g in partition.groups], heal_at=end,
        )
        if end is not None:
            self.sim.schedule_at(
                end,
                lambda: self.trace.record(self.sim.now, "inject", None, "partition_healed"),
                label="inject.heal",
            )

    def _fire_storage(self, plan: StorageFaultPlan) -> None:
        from repro.storage.stable import StorageFaultModel

        targets = (
            [self.storages[plan.node]] if plan.node is not None
            else [self.storages[k] for k in sorted(self.storages)]
        )
        end = None if plan.duration is None else self.sim.now + plan.duration
        for storage in targets:
            if storage.faults is None:
                storage.faults = StorageFaultModel()
                if storage.rng is None and self.network is not None:
                    storage.rng = self.network.rngs.stream(
                        f"storage.faults.{storage.owner}"
                    )
            if plan.fail_prob is None:
                storage.faults.add_window(self.sim.now, end)
            else:
                previous = storage.faults.fail_prob
                storage.faults.fail_prob = plan.fail_prob
                if end is not None:
                    self.sim.schedule_at(
                        end, self._revert_storage, storage, previous,
                        label="inject.revert",
                    )
        self.faults_fired.append((self.sim.now, "storage", plan.node))
        self.trace.record(
            self.sim.now, "inject", plan.node, "storage_faults",
            fail_prob=plan.fail_prob, heal_at=end,
        )

    def _revert_storage(self, storage: "StableStorage", previous: float) -> None:
        storage.faults.fail_prob = previous
        self.trace.record(
            self.sim.now, "inject", storage.owner, "storage_faults_reverted"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FailureInjector(plans={len(self.plans)}, "
            f"fired={len(self.crashes_fired) + len(self.faults_fired)})"
        )
