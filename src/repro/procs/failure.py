"""Crash-failure injection and timeout failure detection.

The paper's evaluation hinges on *when* failures happen (a second crash
during another process's recovery is the interesting case) and on how
long they take to notice ("a typical implementation would require several
seconds of timeouts and retrials to detect that process q has indeed
failed").  This module provides:

* :class:`FailureInjector` -- schedules crashes at fixed virtual times or
  *triggered* by trace events ("crash q the moment it receives p's
  depinfo request"), which is how experiment E2 reproduces the paper's
  failure-during-recovery scenario deterministically.
* :class:`FailureDetector` -- a timeout-style detector modelled as an
  oracle with delay: a crash becomes visible to every peer (and to the
  restart machinery) exactly ``detection_delay`` seconds after it
  happens.  Within the crash-stop model and ≤ f failures this is a
  faithful abstraction of the paper's timeout/retry detector.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set

from repro.sim.kernel import Simulator
from repro.sim.trace import TraceEvent, TraceRecorder

#: The paper's "several seconds of timeouts and retrials".
DEFAULT_DETECTION_DELAY = 3.0


class FailureDetector:
    """Timeout failure detector with a fixed detection latency.

    ``notify_crash``/``notify_up`` are called by the system at the
    instant a node crashes or completes recovery; listeners hear about it
    ``detection_delay`` (respectively ``up_delay``) seconds later.
    """

    def __init__(
        self,
        sim: Simulator,
        detection_delay: float = DEFAULT_DETECTION_DELAY,
        up_delay: float = 0.0,
        trace: Optional[TraceRecorder] = None,
    ) -> None:
        if detection_delay < 0 or up_delay < 0:
            raise ValueError("delays must be non-negative")
        self.sim = sim
        self.detection_delay = detection_delay
        self.up_delay = up_delay
        self.trace = trace
        self._listeners: List[Callable[[int, str], None]] = []
        self._suspected: Set[int] = set()
        self._known: Set[int] = set()
        #: per-node notification sequence; a pending announcement is
        #: superseded (dropped) by any later notify_crash/notify_up
        self._notify_seq: Dict[int, int] = {}

    # ------------------------------------------------------------------
    def register_node(self, node_id: int) -> None:
        """Declare a node as part of the membership."""
        self._known.add(node_id)

    def add_listener(self, callback: Callable[[int, str], None]) -> None:
        """``callback(node_id, status)`` with status ``"down"`` or ``"up"``."""
        self._listeners.append(callback)

    # ------------------------------------------------------------------
    def notify_crash(self, node_id: int) -> None:
        """Report a crash; suspicion propagates after the detection delay."""
        seq = self._notify_seq.get(node_id, 0) + 1
        self._notify_seq[node_id] = seq
        self.sim.schedule(
            self.detection_delay,
            self._announce,
            node_id,
            "down",
            seq,
            label="detector.down",
        )

    def notify_up(self, node_id: int) -> None:
        """Report a completed recovery; visibility after ``up_delay``."""
        seq = self._notify_seq.get(node_id, 0) + 1
        self._notify_seq[node_id] = seq
        self.sim.schedule(
            self.up_delay, self._announce, node_id, "up", seq, label="detector.up"
        )

    def _announce(self, node_id: int, status: str, seq: int) -> None:
        if seq != self._notify_seq.get(node_id, 0):
            return  # superseded by a newer crash/recovery of the same node
        if status == "down":
            self._suspected.add(node_id)
        else:
            self._suspected.discard(node_id)
        if self.trace is not None:
            self.trace.record(self.sim.now, "detector", node_id, status)
        for listener in list(self._listeners):
            listener(node_id, status)

    # ------------------------------------------------------------------
    def is_suspected(self, node_id: int) -> bool:
        """Whether ``node_id`` is currently suspected down."""
        return node_id in self._suspected

    def live_view(self) -> Set[int]:
        """Nodes not currently suspected (the detector's view of L)."""
        return self._known - self._suspected

    def suspected_view(self) -> Set[int]:
        """Nodes currently suspected (the detector's view of R)."""
        return set(self._suspected)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FailureDetector(delay={self.detection_delay}, suspected={sorted(self._suspected)})"


# ----------------------------------------------------------------------
# failure injection
# ----------------------------------------------------------------------
@dataclass
class CrashPlan:
    """One planned crash.

    Either ``at_time`` is set (timed crash) or ``category``/``action``
    describe a trace trigger, optionally filtered by ``match_node`` and
    fired ``delay`` seconds after the ``occurrence``-th matching event.
    """

    node: int
    at_time: Optional[float] = None
    category: Optional[str] = None
    action: Optional[str] = None
    match_node: Optional[int] = None
    match_details: Optional[Dict[str, object]] = None
    delay: float = 0.0
    occurrence: int = 1
    #: fire synchronously inside the trace callback, i.e. *before* the
    #: handler of the traced event runs (used to kill a process the
    #: instant a message is delivered to it, before it can reply)
    immediate: bool = False
    _seen: int = field(default=0, repr=False)
    _armed: bool = field(default=True, repr=False)

    def is_timed(self) -> bool:
        return self.at_time is not None

    def matches(self, event: TraceEvent) -> bool:
        if not self._armed or self.is_timed():
            return False
        if not event.matches(self.category, self.match_node, self.action):
            return False
        if self.match_details:
            for key, value in self.match_details.items():
                if event.details.get(key) != value:
                    return False
        return True


def crash_at(node: int, time: float) -> CrashPlan:
    """A crash of ``node`` at a fixed virtual time."""
    if time < 0:
        raise ValueError(f"crash time must be non-negative, got {time!r}")
    return CrashPlan(node=node, at_time=time)


def crash_on(
    node: int,
    category: str,
    action: str,
    match_node: Optional[int] = None,
    match_details: Optional[Dict[str, object]] = None,
    delay: float = 0.0,
    occurrence: int = 1,
    immediate: bool = False,
) -> CrashPlan:
    """A crash of ``node`` triggered by a trace event.

    Example: ``crash_on(2, "recovery", "depinfo_request_received",
    match_node=2)`` reproduces the paper's E2 scenario -- q dies exactly
    when it receives the recovery leader's request, before replying.
    """
    if delay < 0:
        raise ValueError(f"delay must be non-negative, got {delay!r}")
    if occurrence < 1:
        raise ValueError(f"occurrence must be >= 1, got {occurrence!r}")
    return CrashPlan(
        node=node,
        category=category,
        action=action,
        match_node=match_node,
        match_details=match_details,
        delay=delay,
        occurrence=occurrence,
        immediate=immediate,
    )


class FailureInjector:
    """Applies a list of :class:`CrashPlan` items to a running system.

    ``crash_fn(node_id)`` performs the actual crash; the injector only
    decides *when*.  Crashing an already-crashed node is a silent no-op,
    matching the crash-stop model.
    """

    def __init__(
        self,
        sim: Simulator,
        trace: TraceRecorder,
        crash_fn: Callable[[int], None],
        plans: Optional[List[CrashPlan]] = None,
    ) -> None:
        self.sim = sim
        self.trace = trace
        self.crash_fn = crash_fn
        self.plans: List[CrashPlan] = list(plans or [])
        self.crashes_fired: List[tuple] = []
        self._subscribed = False

    def arm(self) -> None:
        """Schedule timed crashes and subscribe trace triggers."""
        for plan in self.plans:
            if plan.is_timed():
                self.sim.schedule_at(
                    plan.at_time, self._fire, plan, label="inject.crash"
                )
        if any(not plan.is_timed() for plan in self.plans) and not self._subscribed:
            self.trace.subscribe(self._on_trace_event)
            self._subscribed = True

    def add(self, plan: CrashPlan) -> None:
        """Add one more plan after arming."""
        self.plans.append(plan)
        if plan.is_timed():
            self.sim.schedule_at(plan.at_time, self._fire, plan, label="inject.crash")
        elif not self._subscribed:
            self.trace.subscribe(self._on_trace_event)
            self._subscribed = True

    # ------------------------------------------------------------------
    def _on_trace_event(self, event: TraceEvent) -> None:
        for plan in self.plans:
            if plan.matches(event):
                plan._seen += 1
                if plan._seen >= plan.occurrence:
                    plan._armed = False
                    if plan.immediate and plan.delay == 0:
                        # preempt the traced event's handler
                        self._fire(plan)
                    elif plan.delay > 0:
                        self.sim.schedule(plan.delay, self._fire, plan, label="inject.crash")
                    else:
                        # fire after the current event finishes dispatching
                        self.sim.schedule(0.0, self._fire, plan, label="inject.crash")

    def _fire(self, plan: CrashPlan) -> None:
        self.crashes_fired.append((self.sim.now, plan.node))
        self.trace.record(self.sim.now, "inject", plan.node, "crash")
        self.crash_fn(plan.node)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FailureInjector(plans={len(self.plans)}, fired={len(self.crashes_fired)})"
