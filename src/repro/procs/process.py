"""The deterministic application process model.

Rollback-recovery by message logging rests on the *piecewise
deterministic* (PWD) assumption: a process's execution is a deterministic
function of its initial state and the sequence of messages it delivers.
:class:`ApplicationProcess` enforces PWD by construction -- all activity
is message-driven (initial sends are a deterministic function of the
initial state; there are no timers or other nondeterministic inputs) and
the reaction to each delivery is delegated to a pure
:class:`~repro.workloads.generators.Workload` function.

The process maintains a SHA-256 *digest chain* over its delivery history.
Two executions that delivered the same messages in the same order have
equal digests, which is how the test suite proves that replayed
executions reproduce the pre-crash state exactly.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

#: sentinel destination for sends aimed at the outside world (output
#: commit); see :mod:`repro.core.output`
OUTPUT_DST = -2


@dataclass(frozen=True)
class Send:
    """An application-level send request: destination, payload, size.

    ``dst = OUTPUT_DST`` requests an *output commit*: the payload goes
    to the outside world once the protocol deems the state recoverable.
    """

    dst: int
    payload: Dict[str, Any]
    body_bytes: int = 128


def stable_payload_repr(payload: Dict[str, Any]) -> str:
    """Canonical string form of a payload, stable across runs."""
    return repr(sorted(payload.items()))


class ApplicationProcess:
    """A replayable, deterministic application endpoint.

    Parameters
    ----------
    node_id:
        This process's id.
    n_nodes:
        Total application processes in the system.
    workload:
        Pure behaviour function; see :mod:`repro.workloads.generators`.
    state_bytes:
        Modelled size of the process image (checkpoint size).  The
        paper's processes were "about one Mbyte".
    dirty_bytes_per_delivery:
        Modelled bytes of state touched by each delivery, feeding the
        copy-on-write dirty counter that incremental checkpoints charge
        instead of the full image.  Zero (the default) disables the
        tracking entirely.
    """

    def __init__(
        self,
        node_id: int,
        n_nodes: int,
        workload: "Workload",
        state_bytes: int = 1_000_000,
        dirty_bytes_per_delivery: int = 0,
    ) -> None:
        self.node_id = node_id
        self.n_nodes = n_nodes
        self.workload = workload
        self.state_bytes = state_bytes
        self.dirty_bytes_per_delivery = dirty_bytes_per_delivery
        #: bytes dirtied since the last checkpoint (saturates at the
        #: full image size -- rewriting a page twice dirties it once)
        self.dirty_bytes = 0
        self.delivered_count = 0
        self.digest = self._initial_digest()
        self.delivery_history: List[Tuple[int, int]] = []  # (sender, ssn) in order

    def _initial_digest(self) -> str:
        seed = f"init:{self.node_id}:{self.n_nodes}"
        return hashlib.sha256(seed.encode("utf-8")).hexdigest()

    # ------------------------------------------------------------------
    # deterministic behaviour
    # ------------------------------------------------------------------
    def initial_sends(self) -> List[Send]:
        """Sends generated at startup (deterministic in the initial state)."""
        return self.workload.initial_sends(self.node_id, self.n_nodes)

    def deliver(self, sender: int, ssn: int, payload: Dict[str, Any]) -> List[Send]:
        """Deliver one message; returns the sends it triggers.

        Advances the digest chain.  Calling this with the same arguments
        in the same order always produces the same digests and sends --
        this *is* the PWD assumption.
        """
        record = f"{self.digest}|{sender}:{ssn}:{stable_payload_repr(payload)}"
        self.digest = hashlib.sha256(record.encode("utf-8")).hexdigest()
        rsn = self.delivered_count
        self.delivered_count += 1
        self.delivery_history.append((sender, ssn))
        if self.dirty_bytes_per_delivery:
            self.dirty_bytes = min(
                self.state_bytes, self.dirty_bytes + self.dirty_bytes_per_delivery
            )
        return self.workload.on_deliver(
            self.node_id, self.n_nodes, rsn, sender, payload
        )

    # ------------------------------------------------------------------
    # snapshot / restore (checkpointing support)
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """Replayable state for a checkpoint."""
        return {
            "delivered_count": self.delivered_count,
            "digest": self.digest,
            "delivery_history": list(self.delivery_history),
        }

    def mark_clean(self) -> None:
        """A checkpoint just snapshotted this state: nothing is dirty."""
        self.dirty_bytes = 0

    def restore(self, state: Dict[str, Any]) -> None:
        """Reset to a checkpointed state (start of replay)."""
        self.delivered_count = state["delivered_count"]
        self.digest = state["digest"]
        self.delivery_history = list(state["delivery_history"])
        self.dirty_bytes = 0

    def reset(self) -> None:
        """Crash: volatile state vanishes (until a checkpoint is restored)."""
        self.delivered_count = 0
        self.digest = self._initial_digest()
        self.delivery_history = []
        self.dirty_bytes = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ApplicationProcess(node={self.node_id}, "
            f"delivered={self.delivered_count}, digest={self.digest[:8]})"
        )
