"""Process substrate.

* :mod:`repro.procs.process` -- the deterministic, replayable application
  process model.  FBL protocols assume *piecewise deterministic*
  execution: the only nondeterminism is the order in which messages are
  delivered, so replaying the same deliveries in the same order
  regenerates the same sends and the same state.
* :mod:`repro.procs.failure` -- crash-failure injection (timed and
  trace-triggered) and the timeout failure detector whose detection
  latency ("several seconds of timeouts and retrials", per the paper)
  dominates the measured recovery times.
"""

from repro.procs.failure import FailureDetector, FailureInjector, crash_at, crash_on
from repro.procs.process import ApplicationProcess, Send

__all__ = [
    "FailureDetector",
    "FailureInjector",
    "crash_at",
    "crash_on",
    "ApplicationProcess",
    "Send",
]
