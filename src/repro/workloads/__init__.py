"""Workload generators.

Pure, deterministic application behaviours driving the simulated
processes: message-driven token rings, uniform random traffic,
client-server request/reply, all-to-all bursts.  Determinism is essential
-- replay after a crash must regenerate exactly the original sends -- so
every workload derives its "random" choices from a cryptographic hash of
``(seed, node, delivery index, payload)`` rather than from shared mutable
RNG state.
"""

from repro.workloads.generators import (
    AllToAllWorkload,
    ClientServerWorkload,
    PingPongWorkload,
    ShiftingWorkload,
    TokenRingWorkload,
    UniformWorkload,
    Workload,
    make_workload,
)

__all__ = [
    "AllToAllWorkload",
    "ClientServerWorkload",
    "PingPongWorkload",
    "ShiftingWorkload",
    "TokenRingWorkload",
    "UniformWorkload",
    "Workload",
    "make_workload",
]
