"""Deterministic workload behaviours.

A :class:`Workload` is a *pure* strategy object: given the identity of a
process and a delivered message, it returns the sends that delivery
triggers.  Purity matters -- during recovery the same deliveries are
replayed through the same functions and must regenerate byte-identical
sends (the liveness proof of the paper's Section 4.4 depends on exactly
this).  All pseudo-random choices are therefore derived from SHA-256 of
the call's arguments, never from shared mutable RNG state.

Workload activity is bounded by a hop counter (TTL) carried in every
payload, so simulations quiesce deterministically without timers (timers
would violate the piecewise-determinism assumption).
"""

from __future__ import annotations

import hashlib
from abc import ABC, abstractmethod
from typing import Any, Dict, List

from repro.procs.process import OUTPUT_DST, Send, stable_payload_repr


def _hash_int(*parts: Any) -> int:
    """Deterministic 64-bit integer from the given parts."""
    text = "|".join(str(p) for p in parts)
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class Workload(ABC):
    """Pure application behaviour.

    Subclasses must not keep mutable per-delivery state: everything a
    decision depends on must be in the arguments (including the payload).
    """

    def __init__(self, seed: int = 0, body_bytes: int = 128) -> None:
        self.seed = seed
        self.body_bytes = body_bytes

    @abstractmethod
    def initial_sends(self, node_id: int, n_nodes: int) -> List[Send]:
        """Sends emitted by ``node_id`` at startup."""

    @abstractmethod
    def on_deliver(
        self,
        node_id: int,
        n_nodes: int,
        rsn: int,
        sender: int,
        payload: Dict[str, Any],
    ) -> List[Send]:
        """Sends triggered at ``node_id`` by delivering ``payload``."""

    # ------------------------------------------------------------------
    def _choice(self, options: int, *parts: Any) -> int:
        """Deterministic choice in ``range(options)`` from hashed parts."""
        if options <= 0:
            raise ValueError("options must be positive")
        return _hash_int(self.seed, *parts) % options

    def _pick_peer(self, node_id: int, n_nodes: int, *parts: Any) -> int:
        """Deterministically pick a peer other than ``node_id``."""
        if n_nodes < 2:
            raise ValueError("need at least two nodes to pick a peer")
        offset = 1 + self._choice(n_nodes - 1, node_id, *parts)
        return (node_id + offset) % n_nodes


class TokenRingWorkload(Workload):
    """Tokens circulating around a logical ring.

    ``tokens`` tokens start at evenly spaced nodes; each delivery forwards
    the token to the next node on the ring until its hop counter runs out.
    A sparse, highly causal workload: every message is an antecedent of
    all later messages of the same token (the paper's Figure 1 chain,
    generalised).
    """

    def __init__(
        self, hops: int = 32, tokens: int = 1, seed: int = 0, body_bytes: int = 128
    ) -> None:
        super().__init__(seed, body_bytes)
        if hops < 0 or tokens < 1:
            raise ValueError("hops must be >= 0 and tokens >= 1")
        self.hops = hops
        self.tokens = tokens

    def initial_sends(self, node_id: int, n_nodes: int) -> List[Send]:
        sends = []
        for token in range(self.tokens):
            origin = (token * max(1, n_nodes // self.tokens)) % n_nodes
            if node_id == origin:
                sends.append(
                    Send(
                        dst=(node_id + 1) % n_nodes,
                        payload={"token": token, "hops": self.hops},
                        body_bytes=self.body_bytes,
                    )
                )
        return sends

    def on_deliver(
        self,
        node_id: int,
        n_nodes: int,
        rsn: int,
        sender: int,
        payload: Dict[str, Any],
    ) -> List[Send]:
        hops = payload.get("hops", 0)
        if hops <= 0:
            return []
        return [
            Send(
                dst=(node_id + 1) % n_nodes,
                payload={"token": payload["token"], "hops": hops - 1},
                body_bytes=self.body_bytes,
            )
        ]


class UniformWorkload(Workload):
    """Messages forwarded to uniformly pseudo-random peers.

    Each node seeds ``fanout`` chains; each delivery forwards the chain to
    a hash-chosen peer until the hop counter expires.  The default
    workload for the paper-style experiments: it spreads determinants
    across all processes.
    """

    def __init__(
        self,
        hops: int = 16,
        fanout: int = 2,
        seed: int = 0,
        body_bytes: int = 128,
        output_every: int = 0,
    ) -> None:
        super().__init__(seed, body_bytes)
        if hops < 0 or fanout < 0 or output_every < 0:
            raise ValueError("hops, fanout and output_every must be non-negative")
        self.hops = hops
        self.fanout = fanout
        self.output_every = output_every

    def initial_sends(self, node_id: int, n_nodes: int) -> List[Send]:
        if n_nodes < 2:
            return []
        sends = []
        for chain in range(self.fanout):
            dst = self._pick_peer(node_id, n_nodes, "init", chain)
            sends.append(
                Send(
                    dst=dst,
                    payload={"chain": f"{node_id}.{chain}", "hops": self.hops},
                    body_bytes=self.body_bytes,
                )
            )
        return sends

    def on_deliver(
        self,
        node_id: int,
        n_nodes: int,
        rsn: int,
        sender: int,
        payload: Dict[str, Any],
    ) -> List[Send]:
        sends = []
        if self.output_every and (rsn + 1) % self.output_every == 0:
            sends.append(
                Send(dst=OUTPUT_DST, payload={"report_after": rsn}, body_bytes=32)
            )
        hops = payload.get("hops", 0)
        if hops <= 0 or n_nodes < 2:
            return sends
        chain = payload.get("chain", "?")
        dst = self._pick_peer(node_id, n_nodes, "fwd", chain, hops, sender)
        sends.append(
            Send(
                dst=dst,
                payload={"chain": chain, "hops": hops - 1},
                body_bytes=self.body_bytes,
            )
        )
        return sends


class ClientServerWorkload(Workload):
    """Clients issue requests to a server node, which replies.

    Node ``server`` answers every request; every other node issues
    ``requests`` request/reply exchanges.  Models the paper's motivation
    of long-running services whose *live* clients should not stall while
    some other client recovers.
    """

    def __init__(
        self,
        requests: int = 8,
        server: int = 0,
        seed: int = 0,
        body_bytes: int = 128,
        output_replies: bool = False,
    ) -> None:
        super().__init__(seed, body_bytes)
        if requests < 0:
            raise ValueError("requests must be non-negative")
        self.requests = requests
        self.server = server
        #: if True the server externalises every request (think: a bank
        #: printing a receipt) -- an output-commit per request
        self.output_replies = output_replies

    def initial_sends(self, node_id: int, n_nodes: int) -> List[Send]:
        if node_id == self.server or self.requests == 0:
            return []
        return [
            Send(
                dst=self.server,
                payload={"op": "request", "client": node_id, "remaining": self.requests},
                body_bytes=self.body_bytes,
            )
        ]

    def on_deliver(
        self,
        node_id: int,
        n_nodes: int,
        rsn: int,
        sender: int,
        payload: Dict[str, Any],
    ) -> List[Send]:
        op = payload.get("op")
        if node_id == self.server and op == "request":
            sends = []
            if self.output_replies:
                sends.append(
                    Send(
                        dst=OUTPUT_DST,
                        payload={"receipt_for": payload["client"], "at": rsn},
                        body_bytes=32,
                    )
                )
            sends.append(
                Send(
                    dst=payload["client"],
                    payload={
                        "op": "reply",
                        "client": payload["client"],
                        "remaining": payload["remaining"],
                    },
                    body_bytes=self.body_bytes,
                )
            )
            return sends
        if node_id != self.server and op == "reply":
            remaining = payload["remaining"] - 1
            if remaining <= 0:
                return []
            return [
                Send(
                    dst=self.server,
                    payload={"op": "request", "client": node_id, "remaining": remaining},
                    body_bytes=self.body_bytes,
                )
            ]
        return []


class PingPongWorkload(Workload):
    """Adjacent node pairs exchange messages back and forth.

    Node ``2k`` pairs with node ``2k+1``; an odd last node stays idle.
    The simplest two-party causal chain, useful in unit tests.
    """

    def __init__(self, hops: int = 16, seed: int = 0, body_bytes: int = 128) -> None:
        super().__init__(seed, body_bytes)
        if hops < 0:
            raise ValueError("hops must be non-negative")
        self.hops = hops

    def _partner(self, node_id: int, n_nodes: int) -> int:
        partner = node_id + 1 if node_id % 2 == 0 else node_id - 1
        if partner >= n_nodes:
            return node_id  # unpaired trailing node
        return partner

    def initial_sends(self, node_id: int, n_nodes: int) -> List[Send]:
        partner = self._partner(node_id, n_nodes)
        if partner == node_id or node_id % 2 != 0:
            return []
        return [
            Send(dst=partner, payload={"hops": self.hops}, body_bytes=self.body_bytes)
        ]

    def on_deliver(
        self,
        node_id: int,
        n_nodes: int,
        rsn: int,
        sender: int,
        payload: Dict[str, Any],
    ) -> List[Send]:
        hops = payload.get("hops", 0)
        if hops <= 0:
            return []
        return [
            Send(dst=sender, payload={"hops": hops - 1}, body_bytes=self.body_bytes)
        ]


class AllToAllWorkload(Workload):
    """Bursty all-to-all traffic with deterministic thinning.

    Each node starts by sending to every peer.  On each delivery, a
    hash-based coin (expected success 1 in ``n - 1``) decides whether the
    receiver broadcasts a next-generation burst, keeping total traffic
    linear in hops instead of exponential.
    """

    def __init__(self, hops: int = 8, seed: int = 0, body_bytes: int = 128) -> None:
        super().__init__(seed, body_bytes)
        if hops < 0:
            raise ValueError("hops must be non-negative")
        self.hops = hops

    def initial_sends(self, node_id: int, n_nodes: int) -> List[Send]:
        return [
            Send(
                dst=dst,
                payload={"origin": node_id, "hops": self.hops},
                body_bytes=self.body_bytes,
            )
            for dst in range(n_nodes)
            if dst != node_id
        ]

    def on_deliver(
        self,
        node_id: int,
        n_nodes: int,
        rsn: int,
        sender: int,
        payload: Dict[str, Any],
    ) -> List[Send]:
        hops = payload.get("hops", 0)
        if hops <= 0 or n_nodes < 2:
            return []
        toss = self._choice(
            n_nodes - 1, "burst", node_id, sender, hops, stable_payload_repr(payload)
        )
        if toss != 0:
            return []
        return [
            Send(
                dst=dst,
                payload={"origin": node_id, "hops": hops - 1},
                body_bytes=self.body_bytes,
            )
            for dst in range(n_nodes)
            if dst != node_id
        ]


class ShiftingWorkload(Workload):
    """Three workload regimes chained in one run: bursty → steady →
    client-server.

    The regime a message belongs to travels *in its payload* (purity:
    replay regenerates the same phases), and each phase hands off to the
    next when its hop budget dies:

    * **bursty** — all-to-all bursts of large bodies
      (``bursty_body_bytes``), thinned like :class:`AllToAllWorkload`.
      A dying burst chain seeds one steady chain.
    * **steady** — sparse uniform forwarding of small bodies for
      ``steady_hops`` hops.  An expiring steady chain turns its holder
      into a client of ``server``.
    * **client-server** — ``requests`` request/reply exchanges against
      ``server``, which externalises a receipt per request (an output
      commit each).

    The phases deliberately favour *different* logging protocols (big
    bodies punish receiver-side data logging; sparse small bodies favour
    asynchronous determinant records; a hot output-committing server
    favours synchronous logging), which is what the adaptive stack's E14
    benchmark sweeps.
    """

    def __init__(
        self,
        bursty_hops: int = 6,
        steady_hops: int = 40,
        requests: int = 8,
        server: int = 0,
        seed: int = 0,
        body_bytes: int = 96,
        bursty_body_bytes: int = 4096,
        steady_one_in: int = 1,
    ) -> None:
        super().__init__(seed, body_bytes)
        if bursty_hops < 0 or steady_hops < 0 or requests < 0:
            raise ValueError("bursty_hops, steady_hops and requests must be >= 0")
        if steady_one_in < 1:
            raise ValueError("steady_one_in must be >= 1")
        self.bursty_hops = bursty_hops
        self.steady_hops = steady_hops
        self.requests = requests
        self.server = server
        self.bursty_body_bytes = bursty_body_bytes
        self.steady_one_in = steady_one_in

    def _workers(self, node_id: int, n_nodes: int) -> List[int]:
        """Peers of ``node_id`` excluding the server (the server only
        sees client-server traffic once ``n_nodes`` permits it)."""
        workers = [
            dst for dst in range(n_nodes)
            if dst != node_id and (dst != self.server or n_nodes <= 2)
        ]
        return workers

    def _pick_worker(self, node_id: int, n_nodes: int, *parts: Any) -> int:
        workers = self._workers(node_id, n_nodes)
        return workers[self._choice(len(workers), node_id, *parts)]

    def initial_sends(self, node_id: int, n_nodes: int) -> List[Send]:
        if node_id == self.server and n_nodes > 2:
            return []
        return [
            Send(
                dst=dst,
                payload={"phase": "bursty", "origin": node_id, "hops": self.bursty_hops},
                body_bytes=self.bursty_body_bytes,
            )
            for dst in self._workers(node_id, n_nodes)
        ]

    def _start_client(self, node_id: int, n_nodes: int) -> List[Send]:
        if self.requests == 0 or node_id == self.server:
            return []
        return [
            Send(
                dst=self.server,
                payload={
                    "phase": "cs",
                    "op": "request",
                    "client": node_id,
                    "remaining": self.requests,
                },
                body_bytes=self.body_bytes,
            )
        ]

    def on_deliver(
        self,
        node_id: int,
        n_nodes: int,
        rsn: int,
        sender: int,
        payload: Dict[str, Any],
    ) -> List[Send]:
        phase = payload.get("phase")
        if phase == "bursty":
            hops = payload.get("hops", 0)
            if hops <= 0 or n_nodes < 2:
                # the burst dies; one in ``steady_one_in`` dying bursts
                # seeds a steady chain, thinning traffic phase-to-phase
                if self._choice(self.steady_one_in, "seed", node_id, sender, rsn) != 0:
                    return []
                return [
                    Send(
                        dst=self._pick_worker(node_id, n_nodes, "handoff", sender, rsn),
                        payload={
                            "phase": "steady",
                            "chain": f"{node_id}.{rsn}",
                            "hops": self.steady_hops,
                        },
                        body_bytes=self.body_bytes,
                    )
                ]
            workers = self._workers(node_id, n_nodes)
            toss = self._choice(
                len(workers), "burst", node_id, sender, hops,
                stable_payload_repr(payload),
            )
            if toss != 0:
                return []
            return [
                Send(
                    dst=dst,
                    payload={"phase": "bursty", "origin": node_id, "hops": hops - 1},
                    body_bytes=self.bursty_body_bytes,
                )
                for dst in workers
            ]
        if phase == "steady":
            hops = payload.get("hops", 0)
            if hops <= 0 or n_nodes < 2:
                # the chain expires; its holder becomes a client
                return self._start_client(node_id, n_nodes)
            chain = payload.get("chain", "?")
            return [
                Send(
                    dst=self._pick_worker(node_id, n_nodes, "fwd", chain, hops, sender),
                    payload={"phase": "steady", "chain": chain, "hops": hops - 1},
                    body_bytes=self.body_bytes,
                )
            ]
        if phase == "cs":
            op = payload.get("op")
            if node_id == self.server and op == "request":
                return [
                    Send(
                        dst=OUTPUT_DST,
                        payload={"receipt_for": payload["client"], "at": rsn},
                        body_bytes=32,
                    ),
                    Send(
                        dst=payload["client"],
                        payload={
                            "phase": "cs",
                            "op": "reply",
                            "client": payload["client"],
                            "remaining": payload["remaining"],
                        },
                        body_bytes=self.body_bytes,
                    ),
                ]
            if node_id != self.server and op == "reply":
                remaining = payload["remaining"] - 1
                if remaining <= 0:
                    return []
                return [
                    Send(
                        dst=self.server,
                        payload={
                            "phase": "cs",
                            "op": "request",
                            "client": node_id,
                            "remaining": remaining,
                        },
                        body_bytes=self.body_bytes,
                    )
                ]
        return []


_WORKLOADS = {
    "token_ring": TokenRingWorkload,
    "uniform": UniformWorkload,
    "client_server": ClientServerWorkload,
    "ping_pong": PingPongWorkload,
    "all_to_all": AllToAllWorkload,
    "shifting": ShiftingWorkload,
}


def make_workload(name: str, **params: Any) -> Workload:
    """Instantiate a workload by name.

    ``name`` is one of ``token_ring``, ``uniform``, ``client_server``,
    ``ping_pong``, ``all_to_all``.
    """
    try:
        cls = _WORKLOADS[name]
    except KeyError:
        raise ValueError(
            f"unknown workload {name!r}; choose from {sorted(_WORKLOADS)}"
        ) from None
    return cls(**params)
