"""Structured execution traces.

Every interesting action in a run -- a send, a delivery, a crash, a
recovery phase transition, a stable-storage write -- is appended to a
:class:`TraceRecorder` as a :class:`TraceEvent`.  The experiment harness
derives its measurements (blocked intervals, recovery durations, message
counts) from the trace rather than from ad-hoc counters, so every reported
number can be audited against the raw event stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional

from repro.sim.spans import SpanTracker


@dataclass(frozen=True)
class TraceEvent:
    """One timestamped record in the execution trace."""

    time: float
    category: str
    node: Optional[int]
    action: str
    details: Dict[str, Any] = field(default_factory=dict)

    def matches(
        self,
        category: Optional[str] = None,
        node: Optional[int] = None,
        action: Optional[str] = None,
    ) -> bool:
        """Whether this event matches every given (non-``None``) filter."""
        if category is not None and self.category != category:
            return False
        if node is not None and self.node != node:
            return False
        if action is not None and self.action != action:
            return False
        return True


class TraceRecorder:
    """Append-only trace with counters and simple query support.

    Parameters
    ----------
    keep_events:
        If ``False`` only the counters are maintained; useful for large
        parameter sweeps where the full event list would dominate memory.
    """

    def __init__(self, keep_events: bool = True) -> None:
        self.keep_events = keep_events
        self.events: List[TraceEvent] = []
        self.counters: Dict[str, int] = {}
        self._subscribers: List[Callable[[TraceEvent], None]] = []
        #: causal-span layer (disabled until ``spans.enable()``)
        self.spans = SpanTracker(self)

    # ------------------------------------------------------------------
    def record(
        self,
        time: float,
        category: str,
        node: Optional[int],
        action: str,
        **details: Any,
    ) -> TraceEvent:
        """Append one event and bump its ``category.action`` counter."""
        event = TraceEvent(time, category, node, action, details)
        key = f"{category}.{action}"
        self.counters[key] = self.counters.get(key, 0) + 1
        if self.keep_events:
            self.events.append(event)
        for subscriber in self._subscribers:
            subscriber(event)
        return event

    def subscribe(self, callback: Callable[[TraceEvent], None]) -> None:
        """Invoke ``callback`` on every subsequent event.

        Used by the failure injector to trigger crashes relative to
        protocol milestones (e.g. "crash q once p's recovery starts").
        """
        self._subscribers.append(callback)

    def unsubscribe(self, callback: Callable[[TraceEvent], None]) -> None:
        """Remove a subscription added with :meth:`subscribe`."""
        self._subscribers.remove(callback)

    # ------------------------------------------------------------------
    def count(self, category: str, action: Optional[str] = None) -> int:
        """Total events matching ``category`` (and ``action`` if given)."""
        if action is not None:
            return self.counters.get(f"{category}.{action}", 0)
        prefix = category + "."
        return sum(v for k, v in self.counters.items() if k.startswith(prefix))

    def select(
        self,
        category: Optional[str] = None,
        node: Optional[int] = None,
        action: Optional[str] = None,
    ) -> List[TraceEvent]:
        """All retained events matching the filters, in time order."""
        return [e for e in self.events if e.matches(category, node, action)]

    def iter_select(
        self,
        category: Optional[str] = None,
        node: Optional[int] = None,
        action: Optional[str] = None,
    ) -> Iterator[TraceEvent]:
        """Lazy variant of :meth:`select`."""
        return (e for e in self.events if e.matches(category, node, action))

    def first(
        self,
        category: Optional[str] = None,
        node: Optional[int] = None,
        action: Optional[str] = None,
    ) -> Optional[TraceEvent]:
        """Earliest matching event, or ``None``."""
        for event in self.events:
            if event.matches(category, node, action):
                return event
        return None

    def last(
        self,
        category: Optional[str] = None,
        node: Optional[int] = None,
        action: Optional[str] = None,
    ) -> Optional[TraceEvent]:
        """Latest matching event, or ``None``."""
        for event in reversed(self.events):
            if event.matches(category, node, action):
                return event
        return None

    def clear(self) -> None:
        """Drop all events and counters."""
        self.events.clear()
        self.counters.clear()

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TraceRecorder(events={len(self.events)}, counters={len(self.counters)})"
