"""Structured execution traces.

Every interesting action in a run -- a send, a delivery, a crash, a
recovery phase transition, a stable-storage write -- is appended to a
:class:`TraceRecorder` as a :class:`TraceEvent`.  The experiment harness
derives its measurements (blocked intervals, recovery durations, message
counts) from the trace rather than from ad-hoc counters, so every reported
number can be audited against the raw event stream.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, Iterator, List, Optional, Union

from repro.sim.spans import SpanTracker


def _event_time(event: "TraceEvent") -> float:
    """Sort key for the window merge (stable: ties keep emission order)."""
    return event.time


@dataclass(frozen=True)
class TraceEvent:
    """One timestamped record in the execution trace."""

    time: float
    category: str
    node: Optional[int]
    action: str
    details: Dict[str, Any] = field(default_factory=dict)

    def matches(
        self,
        category: Optional[str] = None,
        node: Optional[int] = None,
        action: Optional[str] = None,
    ) -> bool:
        """Whether this event matches every given (non-``None``) filter."""
        if category is not None and self.category != category:
            return False
        if node is not None and self.node != node:
            return False
        if action is not None and self.action != action:
            return False
        return True


class BoundEmitter:
    """A pre-bound trace emitter for one ``(category, action)`` pair.

    Hot paths (the network's per-message ``send``/``deliver`` traces)
    record thousands of events with the same category and action; binding
    them once skips the per-call ``f"{category}.{action}"`` key build and
    keeps the counters-only fast path (no :class:`TraceEvent` allocated
    when nothing would consume it) in one place.  Obtained from
    :meth:`TraceRecorder.emitter`.
    """

    __slots__ = ("_trace", "category", "action", "_key")

    def __init__(self, trace: "TraceRecorder", category: str, action: str) -> None:
        self._trace = trace
        self.category = category
        self.action = action
        self._key = category + "." + action

    def __call__(
        self, time: float, node: Optional[int], **details: Any
    ) -> Optional[TraceEvent]:
        """Equivalent to ``trace.record(time, category, node, action, ...)``."""
        trace = self._trace
        counters = trace.counters
        key = self._key
        counters[key] = counters.get(key, 0) + 1
        if not trace.keep_events and not trace._subscribers:
            return None
        event = TraceEvent(time, self.category, node, self.action, details)
        if trace._merge_buffer is not None:
            trace._merge_buffer.append(event)
            return event
        if trace.keep_events:
            trace.events.append(event)
        for subscriber in trace._subscribers:
            subscriber(event)
        return event

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BoundEmitter({self._key})"


class TraceSpillLog:
    """The streaming backend for ``TraceRecorder.events``.

    Keeps the newest ``window`` events in a deque and spills older ones
    to a JSONL file, so a ``keep_trace_events=True`` run holds O(window)
    trace memory at any horizon.  The spill file uses the exact line
    format of :func:`repro.analysis.trace_io.dump_trace` (one
    ``{"time", "category", "node", "action", "details"}`` object per
    line), so ``repro trace`` and :func:`load_trace` read it directly.

    The class quacks like the plain event list it replaces: ``append``,
    iteration, ``len``/truthiness, ``reversed`` and ``clear`` all work,
    with iteration transparently replaying the spilled prefix from disk
    before the in-memory window.  One observable difference is inherent
    to the JSON round trip: tuple values inside ``details`` come back as
    lists (exactly as they do from ``dump_trace``/``load_trace``).
    """

    __slots__ = ("path", "window", "_window", "_file", "_spilled")

    def __init__(self, path: str, window: int = 10_000) -> None:
        self.path = path
        self.window = max(1, int(window))
        self._window: Deque[TraceEvent] = deque()
        self._file = open(path, "w", encoding="utf-8")
        self._spilled = 0

    # -- write side ----------------------------------------------------
    def append(self, event: TraceEvent) -> None:
        window = self._window
        window.append(event)
        if len(window) > self.window:
            self._spill_one(window.popleft())

    def _spill_one(self, event: TraceEvent) -> None:
        # local json encoding (rather than analysis.trace_io) to keep
        # sim free of an analysis-layer import; the shape must match
        # trace_io.event_to_dict exactly.
        record = {
            "time": event.time,
            "category": event.category,
            "node": event.node,
            "action": event.action,
            "details": event.details,
        }
        self._file.write(json.dumps(record, default=str))
        self._file.write("\n")
        self._spilled += 1

    def finalize(self) -> None:
        """Spill the in-memory window so the file is the complete trace.

        Called at run end; afterwards iteration reads everything from
        disk and the file can be shipped as-is (``repro trace`` /
        ``load_trace`` compatible).  Appending remains legal.
        """
        window = self._window
        while window:
            self._spill_one(window.popleft())
        self._file.flush()

    def close(self) -> None:
        """Finalize and release the file handle."""
        self.finalize()
        if not self._file.closed:
            self._file.close()

    def clear(self) -> None:
        """Drop all events: truncate the spill file, empty the window."""
        self._window.clear()
        self._spilled = 0
        if self._file.closed:
            self._file = open(self.path, "w", encoding="utf-8")
        else:
            self._file.seek(0)
            self._file.truncate()

    # -- read side -----------------------------------------------------
    def _iter_spilled(self) -> Iterator[TraceEvent]:
        if self._spilled == 0:
            return
        if not self._file.closed:
            self._file.flush()
        with open(self.path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                d = json.loads(line)
                yield TraceEvent(
                    time=d["time"],
                    category=d["category"],
                    node=d["node"],
                    action=d["action"],
                    details=d.get("details", {}),
                )

    def __iter__(self) -> Iterator[TraceEvent]:
        yield from self._iter_spilled()
        yield from list(self._window)

    def __reversed__(self) -> Iterator[TraceEvent]:
        yield from reversed(list(self._window))
        if self._spilled:
            # the spilled prefix is replayed into memory only for
            # reversed scans (cold path: TraceRecorder.last on a query
            # that misses the whole window)
            yield from reversed(list(self._iter_spilled()))

    def __len__(self) -> int:
        return self._spilled + len(self._window)

    def __bool__(self) -> bool:
        return self._spilled > 0 or bool(self._window)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TraceSpillLog(path={self.path!r}, spilled={self._spilled}, "
            f"window={len(self._window)}/{self.window})"
        )


class TraceRecorder:
    """Append-only trace with counters and simple query support.

    Parameters
    ----------
    keep_events:
        If ``False`` only the counters are maintained; useful for large
        parameter sweeps where the full event list would dominate memory.
        Events are then not even constructed unless a subscriber is
        attached (subscribers -- the failure injector -- must still see
        every event, and may come and go mid-run, so the check is made
        per call).
    spill_path:
        When set (and ``keep_events`` is on), events stream to this
        JSONL file through a :class:`TraceSpillLog` instead of
        accumulating in an unbounded list: only the newest
        ``spill_window`` events stay in memory, and every query API
        (:meth:`select`, :meth:`first`, :meth:`last`, iteration, span
        reconstruction, ``repro trace``) reads transparently through the
        spill file.
    spill_window:
        In-memory window size for the spill log.
    """

    def __init__(
        self,
        keep_events: bool = True,
        spill_path: Optional[str] = None,
        spill_window: int = 10_000,
    ) -> None:
        self.keep_events = keep_events
        self.events: Union[List[TraceEvent], TraceSpillLog]
        if spill_path is not None and keep_events:
            self.events = TraceSpillLog(spill_path, spill_window)
        else:
            self.events = []
        self.counters: Dict[str, int] = {}
        self._subscribers: List[Callable[[TraceEvent], None]] = []
        #: when not None, recorded events are parked here instead of
        #: being appended/dispatched; flush_merge_buffer() releases them
        #: in timestamp order (the sharded kernel's window barrier)
        self._merge_buffer: Optional[List[TraceEvent]] = None
        #: causal-span layer (disabled until ``spans.enable()``)
        self.spans = SpanTracker(self)

    @property
    def spill(self) -> Optional[TraceSpillLog]:
        """The spill backend, or ``None`` when events live in a list."""
        events = self.events
        return events if isinstance(events, TraceSpillLog) else None

    def finalize(self) -> None:
        """Flush any spill backend so its file holds the full trace.

        No-op for the default in-memory list backend."""
        self.flush_merge_buffer()
        spill = self.spill
        if spill is not None:
            spill.finalize()

    # ------------------------------------------------------------------
    # sharded-run window merging
    # ------------------------------------------------------------------
    def begin_merge_buffer(self) -> None:
        """Buffer recorded events for timestamp-ordered release.

        The sharded kernel executes shards one window at a time, so raw
        emission order interleaves shard-sized runs of the timeline.
        With buffering on, events are parked until
        :meth:`flush_merge_buffer` (called at each window barrier) sorts
        them by time -- a *stable* sort, so same-instant events keep the
        deterministic shard execution order -- and only then appends them
        to :attr:`events` and notifies subscribers.  Every consumer (the
        sanitizer, span chains, the spill log) therefore sees the same
        globally time-monotone stream a single-heap run produces.
        Counters are bumped immediately either way (they are
        order-insensitive sums).
        """
        if self._merge_buffer is None:
            self._merge_buffer = []

    def flush_merge_buffer(self) -> None:
        """Release buffered events in timestamp order (stable).

        No-op when buffering is off or the buffer is empty; buffering
        stays enabled afterwards."""
        buffer = self._merge_buffer
        if not buffer:
            return
        buffer.sort(key=_event_time)
        keep = self.keep_events
        events = self.events
        subscribers = self._subscribers
        for event in buffer:
            if keep:
                events.append(event)
            for subscriber in subscribers:
                subscriber(event)
        buffer.clear()

    # ------------------------------------------------------------------
    def record(
        self,
        time: float,
        category: str,
        node: Optional[int],
        action: str,
        **details: Any,
    ) -> Optional[TraceEvent]:
        """Bump the ``category.action`` counter and append one event.

        Returns ``None`` on the counters-only fast path (``keep_events``
        off and nobody subscribed); the counter is bumped either way, so
        the audit totals are identical whichever path runs.
        """
        key = f"{category}.{action}"
        self.counters[key] = self.counters.get(key, 0) + 1
        if not self.keep_events and not self._subscribers:
            return None
        event = TraceEvent(time, category, node, action, details)
        if self._merge_buffer is not None:
            self._merge_buffer.append(event)
            return event
        if self.keep_events:
            self.events.append(event)
        for subscriber in self._subscribers:
            subscriber(event)
        return event

    def emitter(self, category: str, action: str) -> BoundEmitter:
        """A pre-bound fast-path recorder for one ``category.action``."""
        return BoundEmitter(self, category, action)

    def subscribe(self, callback: Callable[[TraceEvent], None]) -> None:
        """Invoke ``callback`` on every subsequent event.

        Used by the failure injector to trigger crashes relative to
        protocol milestones (e.g. "crash q once p's recovery starts").
        """
        self._subscribers.append(callback)

    def unsubscribe(self, callback: Callable[[TraceEvent], None]) -> None:
        """Remove a subscription added with :meth:`subscribe`."""
        self._subscribers.remove(callback)

    # ------------------------------------------------------------------
    def count(self, category: str, action: Optional[str] = None) -> int:
        """Total events matching ``category`` (and ``action`` if given)."""
        if action is not None:
            return self.counters.get(f"{category}.{action}", 0)
        prefix = category + "."
        return sum(v for k, v in self.counters.items() if k.startswith(prefix))

    def select(
        self,
        category: Optional[str] = None,
        node: Optional[int] = None,
        action: Optional[str] = None,
    ) -> List[TraceEvent]:
        """All retained events matching the filters, in time order."""
        return [e for e in self.events if e.matches(category, node, action)]

    def iter_select(
        self,
        category: Optional[str] = None,
        node: Optional[int] = None,
        action: Optional[str] = None,
    ) -> Iterator[TraceEvent]:
        """Lazy variant of :meth:`select`."""
        return (e for e in self.events if e.matches(category, node, action))

    def first(
        self,
        category: Optional[str] = None,
        node: Optional[int] = None,
        action: Optional[str] = None,
    ) -> Optional[TraceEvent]:
        """Earliest matching event, or ``None``."""
        for event in self.events:
            if event.matches(category, node, action):
                return event
        return None

    def last(
        self,
        category: Optional[str] = None,
        node: Optional[int] = None,
        action: Optional[str] = None,
    ) -> Optional[TraceEvent]:
        """Latest matching event, or ``None``."""
        for event in reversed(self.events):
            if event.matches(category, node, action):
                return event
        return None

    def clear(self) -> None:
        """Drop all events and counters."""
        self.events.clear()
        self.counters.clear()

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TraceRecorder(events={len(self.events)}, counters={len(self.counters)})"
