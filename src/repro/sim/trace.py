"""Structured execution traces.

Every interesting action in a run -- a send, a delivery, a crash, a
recovery phase transition, a stable-storage write -- is appended to a
:class:`TraceRecorder` as a :class:`TraceEvent`.  The experiment harness
derives its measurements (blocked intervals, recovery durations, message
counts) from the trace rather than from ad-hoc counters, so every reported
number can be audited against the raw event stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional

from repro.sim.spans import SpanTracker


@dataclass(frozen=True)
class TraceEvent:
    """One timestamped record in the execution trace."""

    time: float
    category: str
    node: Optional[int]
    action: str
    details: Dict[str, Any] = field(default_factory=dict)

    def matches(
        self,
        category: Optional[str] = None,
        node: Optional[int] = None,
        action: Optional[str] = None,
    ) -> bool:
        """Whether this event matches every given (non-``None``) filter."""
        if category is not None and self.category != category:
            return False
        if node is not None and self.node != node:
            return False
        if action is not None and self.action != action:
            return False
        return True


class BoundEmitter:
    """A pre-bound trace emitter for one ``(category, action)`` pair.

    Hot paths (the network's per-message ``send``/``deliver`` traces)
    record thousands of events with the same category and action; binding
    them once skips the per-call ``f"{category}.{action}"`` key build and
    keeps the counters-only fast path (no :class:`TraceEvent` allocated
    when nothing would consume it) in one place.  Obtained from
    :meth:`TraceRecorder.emitter`.
    """

    __slots__ = ("_trace", "category", "action", "_key")

    def __init__(self, trace: "TraceRecorder", category: str, action: str) -> None:
        self._trace = trace
        self.category = category
        self.action = action
        self._key = category + "." + action

    def __call__(
        self, time: float, node: Optional[int], **details: Any
    ) -> Optional[TraceEvent]:
        """Equivalent to ``trace.record(time, category, node, action, ...)``."""
        trace = self._trace
        counters = trace.counters
        key = self._key
        counters[key] = counters.get(key, 0) + 1
        if not trace.keep_events and not trace._subscribers:
            return None
        event = TraceEvent(time, self.category, node, self.action, details)
        if trace.keep_events:
            trace.events.append(event)
        for subscriber in trace._subscribers:
            subscriber(event)
        return event

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BoundEmitter({self._key})"


class TraceRecorder:
    """Append-only trace with counters and simple query support.

    Parameters
    ----------
    keep_events:
        If ``False`` only the counters are maintained; useful for large
        parameter sweeps where the full event list would dominate memory.
        Events are then not even constructed unless a subscriber is
        attached (subscribers -- the failure injector -- must still see
        every event, and may come and go mid-run, so the check is made
        per call).
    """

    def __init__(self, keep_events: bool = True) -> None:
        self.keep_events = keep_events
        self.events: List[TraceEvent] = []
        self.counters: Dict[str, int] = {}
        self._subscribers: List[Callable[[TraceEvent], None]] = []
        #: causal-span layer (disabled until ``spans.enable()``)
        self.spans = SpanTracker(self)

    # ------------------------------------------------------------------
    def record(
        self,
        time: float,
        category: str,
        node: Optional[int],
        action: str,
        **details: Any,
    ) -> Optional[TraceEvent]:
        """Bump the ``category.action`` counter and append one event.

        Returns ``None`` on the counters-only fast path (``keep_events``
        off and nobody subscribed); the counter is bumped either way, so
        the audit totals are identical whichever path runs.
        """
        key = f"{category}.{action}"
        self.counters[key] = self.counters.get(key, 0) + 1
        if not self.keep_events and not self._subscribers:
            return None
        event = TraceEvent(time, category, node, action, details)
        if self.keep_events:
            self.events.append(event)
        for subscriber in self._subscribers:
            subscriber(event)
        return event

    def emitter(self, category: str, action: str) -> BoundEmitter:
        """A pre-bound fast-path recorder for one ``category.action``."""
        return BoundEmitter(self, category, action)

    def subscribe(self, callback: Callable[[TraceEvent], None]) -> None:
        """Invoke ``callback`` on every subsequent event.

        Used by the failure injector to trigger crashes relative to
        protocol milestones (e.g. "crash q once p's recovery starts").
        """
        self._subscribers.append(callback)

    def unsubscribe(self, callback: Callable[[TraceEvent], None]) -> None:
        """Remove a subscription added with :meth:`subscribe`."""
        self._subscribers.remove(callback)

    # ------------------------------------------------------------------
    def count(self, category: str, action: Optional[str] = None) -> int:
        """Total events matching ``category`` (and ``action`` if given)."""
        if action is not None:
            return self.counters.get(f"{category}.{action}", 0)
        prefix = category + "."
        return sum(v for k, v in self.counters.items() if k.startswith(prefix))

    def select(
        self,
        category: Optional[str] = None,
        node: Optional[int] = None,
        action: Optional[str] = None,
    ) -> List[TraceEvent]:
        """All retained events matching the filters, in time order."""
        return [e for e in self.events if e.matches(category, node, action)]

    def iter_select(
        self,
        category: Optional[str] = None,
        node: Optional[int] = None,
        action: Optional[str] = None,
    ) -> Iterator[TraceEvent]:
        """Lazy variant of :meth:`select`."""
        return (e for e in self.events if e.matches(category, node, action))

    def first(
        self,
        category: Optional[str] = None,
        node: Optional[int] = None,
        action: Optional[str] = None,
    ) -> Optional[TraceEvent]:
        """Earliest matching event, or ``None``."""
        for event in self.events:
            if event.matches(category, node, action):
                return event
        return None

    def last(
        self,
        category: Optional[str] = None,
        node: Optional[int] = None,
        action: Optional[str] = None,
    ) -> Optional[TraceEvent]:
        """Latest matching event, or ``None``."""
        for event in reversed(self.events):
            if event.matches(category, node, action):
                return event
        return None

    def clear(self) -> None:
        """Drop all events and counters."""
        self.events.clear()
        self.counters.clear()

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TraceRecorder(events={len(self.events)}, counters={len(self.counters)})"
