"""Named deterministic random streams.

Different parts of a simulation (network latency, workload decisions per
node, failure schedule) draw from *independent* named streams derived from
one root seed.  This way adding randomness to one component never perturbs
another, and any run is reproducible from ``(root_seed, config)`` alone --
a property the experiments rely on for paper-style comparisons where the
same workload must be replayed under two recovery algorithms.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a 64-bit child seed for ``name`` from ``root_seed``.

    Uses SHA-256 so that stream names cannot collide in practice and the
    derivation is stable across Python versions and platforms (unlike
    ``hash``, which is salted).
    """
    digest = hashlib.sha256(f"{root_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RngRegistry:
    """Factory of named, independent ``random.Random`` streams.

    Examples
    --------
    >>> rngs = RngRegistry(root_seed=42)
    >>> a = rngs.stream("net.latency")
    >>> b = rngs.stream("workload.node.3")
    >>> a is rngs.stream("net.latency")
    True
    """

    def __init__(self, root_seed: int = 0) -> None:
        self.root_seed = int(root_seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        stream = self._streams.get(name)
        if stream is None:
            stream = random.Random(derive_seed(self.root_seed, name))
            self._streams[name] = stream
        return stream

    def fork(self, name: str) -> "RngRegistry":
        """A child registry whose streams are independent of this one's."""
        return RngRegistry(derive_seed(self.root_seed, f"fork:{name}"))

    def reset(self, name: str) -> None:
        """Re-seed one stream back to its initial state."""
        if name in self._streams:
            self._streams[name].seed(derive_seed(self.root_seed, name))

    def __contains__(self, name: str) -> bool:
        return name in self._streams

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngRegistry(root_seed={self.root_seed}, streams={sorted(self._streams)})"
