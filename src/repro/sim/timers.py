"""Restartable timers built on the kernel.

A :class:`Timer` wraps an :class:`~repro.sim.events.EventHandle` with the
start/cancel/restart lifecycle needed by timeout-driven components such as
the failure detector and the recovery leader's reply timeouts.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.sim.kernel import Simulator


class Timer:
    """A one-shot, restartable timeout.

    The callback fires ``interval`` seconds after the most recent
    :meth:`start` / :meth:`restart`, unless cancelled first.
    """

    def __init__(
        self,
        sim: Simulator,
        interval: float,
        callback: Callable[..., Any],
        *args: Any,
        label: str = "timer",
    ) -> None:
        if interval < 0:
            raise ValueError(f"timer interval must be non-negative, got {interval!r}")
        self._sim = sim
        self.interval = interval
        self._callback = callback
        self._args = args
        self._label = label
        self._handle = None  # type: Optional[Any]
        self._fired = False

    # ------------------------------------------------------------------
    @property
    def pending(self) -> bool:
        """True while the timer is armed and has not fired."""
        return self._handle is not None and not self._handle.cancelled and not self._fired

    @property
    def fired(self) -> bool:
        """True once the callback has run (until the next restart)."""
        return self._fired

    @property
    def deadline(self) -> Optional[float]:
        """Virtual time the timer will fire at, or ``None`` if unarmed."""
        if self.pending:
            return self._handle.time
        return None

    # ------------------------------------------------------------------
    def start(self) -> "Timer":
        """Arm the timer.  Raises if already armed."""
        if self.pending:
            raise RuntimeError(f"timer {self._label!r} is already armed")
        self._fired = False
        self._handle = self._sim.schedule(
            self.interval, self._fire, label=self._label
        )
        return self

    def cancel(self) -> None:
        """Disarm the timer.  Idempotent."""
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def restart(self, interval: Optional[float] = None) -> "Timer":
        """Cancel any pending expiry and re-arm, optionally changing interval."""
        self.cancel()
        if interval is not None:
            if interval < 0:
                raise ValueError(f"timer interval must be non-negative, got {interval!r}")
            self.interval = interval
        return self.start()

    # ------------------------------------------------------------------
    def _fire(self) -> None:
        self._fired = True
        self._handle = None
        self._callback(*self._args)


class PeriodicTimer:
    """A timer that re-arms itself after every expiry until cancelled."""

    def __init__(
        self,
        sim: Simulator,
        interval: float,
        callback: Callable[..., Any],
        *args: Any,
        label: str = "periodic",
    ) -> None:
        if interval <= 0:
            raise ValueError(f"periodic interval must be positive, got {interval!r}")
        self._sim = sim
        self.interval = interval
        self._callback = callback
        self._args = args
        self._label = label
        self._handle: Optional[Any] = None
        self._running = False
        self.ticks = 0

    @property
    def running(self) -> bool:
        """True while the periodic timer is active."""
        return self._running

    def start(self) -> "PeriodicTimer":
        """Begin ticking.  The first tick is one interval from now."""
        if self._running:
            raise RuntimeError(f"periodic timer {self._label!r} already running")
        self._running = True
        self._schedule_next()
        return self

    def cancel(self) -> None:
        """Stop ticking.  Idempotent."""
        self._running = False
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _schedule_next(self) -> None:
        self._handle = self._sim.schedule(self.interval, self._tick, label=self._label)

    def _tick(self) -> None:
        if not self._running:
            return
        self.ticks += 1
        self._callback(*self._args)
        if self._running:
            self._schedule_next()
