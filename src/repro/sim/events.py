"""Event objects used by the simulation kernel.

An :class:`Event` couples a firing time with a callback.  Events are
totally ordered by ``(time, priority, seq)``: ties on the virtual clock are
broken first by an explicit priority (lower fires first) and then by
insertion order, which keeps runs deterministic regardless of heap
internals.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator


class Event:
    """A scheduled callback in the simulation.

    Events are created through :meth:`repro.sim.kernel.Simulator.schedule`;
    user code normally only sees the :class:`EventHandle` wrapper, which
    supports cancellation.

    ``kwargs`` is ``None`` on the hot path (no keyword arguments were
    passed to ``schedule``); :meth:`fire` then calls ``fn(*args)``
    directly without allocating or expanding a dict.

    ``poolable`` marks events created through the kernel's handle-free
    ``schedule_fast`` path: no :class:`EventHandle` exists for them, so
    after firing the kernel may clear their slots and recycle the object
    through its free-list pool.  Handle-backed events are never pooled
    (a recycled object would let a stale handle cancel an unrelated,
    later event).
    """

    __slots__ = (
        "time", "priority", "seq", "fn", "args", "kwargs",
        "cancelled", "label", "in_heap", "poolable",
    )

    def __init__(
        self,
        time: float,
        seq: int,
        fn: Callable[..., Any],
        args: Tuple[Any, ...] = (),
        kwargs: Optional[dict] = None,
        priority: int = 0,
        label: str = "",
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.fn = fn
        self.args = args
        self.kwargs = kwargs if kwargs else None
        self.cancelled = False
        self.label = label
        #: maintained by the kernel: True while sitting in the heap.  Lets
        #: cancellation know whether the live-event counter must move.
        self.in_heap = False
        #: True only for handle-free schedule_fast events (pool-eligible)
        self.poolable = False

    def sort_key(self) -> Tuple[float, int, int]:
        """Total order used by the kernel's heap.

        This tuple is the one *definition* of the event order; it is
        only built on cold paths (tests, external sorting).  The heap's
        own comparisons go through :meth:`__lt__`, which compares the
        same three fields directly so no tuples are allocated per
        comparison -- the two must order identically.
        """
        return (self.time, self.priority, self.seq)

    def fire(self) -> None:
        """Invoke the callback unless the event was cancelled."""
        if not self.cancelled:
            if self.kwargs is None:
                self.fn(*self.args)
            else:
                self.fn(*self.args, **self.kwargs)

    def __lt__(self, other: "Event") -> bool:
        # field-direct comparison: the hottest code in the kernel (one
        # call per heap sift step).  Must match sort_key()'s tuple order.
        if self.time != other.time:
            return self.time < other.time
        if self.priority != other.priority:
            return self.priority < other.priority
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        name = self.label or getattr(self.fn, "__name__", repr(self.fn))
        return f"Event(t={self.time:.6f}, seq={self.seq}, {name}, {state})"


class EventHandle:
    """Cancellable reference to a scheduled :class:`Event`.

    The kernel hands one of these back from every ``schedule`` call.
    Cancellation is lazy: the event stays in the heap but is skipped when
    popped, which is O(1) and keeps the heap consistent.  The handle
    reports the cancellation to the owning simulator so it can keep an
    exact live-event count and compact the heap when dead timers pile up
    (see :meth:`repro.sim.kernel.Simulator.live_events`).
    """

    __slots__ = ("_event", "_sim")

    def __init__(self, event: Event, sim: Optional["Simulator"] = None) -> None:
        self._event = event
        self._sim = sim

    @property
    def time(self) -> float:
        """Virtual time at which the event will (or would have) fired."""
        return self._event.time

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` has been called."""
        return self._event.cancelled

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        event = self._event
        if event.cancelled:
            return
        event.cancelled = True
        if self._sim is not None and event.in_heap:
            self._sim._note_cancelled()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EventHandle({self._event!r})"
