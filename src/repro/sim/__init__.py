"""Discrete-event simulation substrate.

This package provides the deterministic discrete-event kernel on which the
whole reproduction runs: a virtual clock driven by an event heap
(:mod:`repro.sim.kernel`), cancellable timers (:mod:`repro.sim.timers`),
named deterministic random streams (:mod:`repro.sim.rng`) and a structured
trace/metric recorder (:mod:`repro.sim.trace`).

The kernel replaces the paper's physical testbed (eight DEC 5000/200
workstations on a 155 Mb/s ATM network).  All timing phenomena the paper
measures -- blocked time of live processes, recovery duration, message
latencies, stable-storage stalls -- are reproduced under the virtual clock,
which additionally makes every experiment exactly repeatable from a seed.
"""

from repro.sim.events import Event, EventHandle
from repro.sim.kernel import Simulator, SimulationError
from repro.sim.rng import RngRegistry
from repro.sim.timers import Timer
from repro.sim.trace import TraceEvent, TraceRecorder

__all__ = [
    "Event",
    "EventHandle",
    "Simulator",
    "SimulationError",
    "RngRegistry",
    "Timer",
    "TraceEvent",
    "TraceRecorder",
]
