"""Causal spans layered on the execution trace.

A :class:`Span` is an interval of virtual time attributed to one node
and one *kind* of activity -- a checkpoint write, a recovery phase, a
gather round, a retransmission epoch, a block interval.  Spans form a
tree through ``parent`` (a gather round is a child of its recovery
episode) and a DAG through ``links`` (a restarted gather links to the
round it superseded), which is what lets the critical-path extractor
answer the paper's central question: *what actually bounded recovery
time* -- stable-storage latency, control messages, or blocking?

Spans are not a parallel data structure: they are encoded as ordinary
``category="span"`` events in the :class:`~repro.sim.trace.TraceRecorder`
(``begin``/``end`` pairs keyed by a run-unique span id).  That keeps the
JSONL trace self-contained -- ``repro trace`` can rebuild the span tree
from an archived trace file -- and guarantees that recording spans can
never perturb simulated time: emitting a trace event schedules nothing
and draws no randomness.

Span recording is **off by default** (``SystemConfig.spans=True`` or
``TraceRecorder.spans.enable()`` turns it on); when disabled every
tracker call is a cheap no-op returning ``None``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (trace imports us)
    from repro.sim.trace import TraceEvent, TraceRecorder


@dataclass
class Span:
    """One reconstructed interval of attributed activity."""

    span_id: int
    kind: str
    node: Optional[int]
    start: float
    end: Optional[float] = None
    parent: Optional[int] = None
    links: Tuple[int, ...] = ()
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def closed(self) -> bool:
        return self.end is not None

    def duration(self, horizon: Optional[float] = None) -> float:
        """Span length; open spans are measured to ``horizon`` (or start)."""
        end = self.end if self.end is not None else (horizon or self.start)
        return max(0.0, end - self.start)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        end = f"{self.end:.6f}" if self.end is not None else "open"
        return f"Span(#{self.span_id} {self.kind} n{self.node} {self.start:.6f}->{end})"


class SpanTracker:
    """Records span begin/end pairs into a :class:`TraceRecorder`.

    Owned by the recorder itself (``trace.spans``) so every subsystem
    that already holds a trace reference can emit spans without new
    wiring.  Ids are assigned in emission order, which keeps them
    deterministic for a given (config, seed).
    """

    __slots__ = ("trace", "enabled", "_next_id", "_open")

    def __init__(self, trace: "TraceRecorder") -> None:
        self.trace = trace
        self.enabled = False
        self._next_id = 0
        #: span id -> (kind, node) for spans begun but not yet ended
        self._open: Dict[int, Tuple[str, Optional[int]]] = {}

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    # ------------------------------------------------------------------
    def begin(
        self,
        kind: str,
        node: Optional[int],
        time: float,
        parent: Optional[int] = None,
        links: Iterable[int] = (),
        **attrs: Any,
    ) -> Optional[int]:
        """Open a span; returns its id, or ``None`` when disabled."""
        if not self.enabled:
            return None
        span_id = self._next_id
        self._next_id += 1
        self._open[span_id] = (kind, node)
        details: Dict[str, Any] = {"span": span_id, "kind": kind}
        if parent is not None:
            details["parent"] = parent
        link_list = [l for l in links if l is not None]
        if link_list:
            details["links"] = link_list
        details.update(attrs)
        self.trace.record(time, "span", node, "begin", **details)
        return span_id

    def end(self, span_id: Optional[int], time: float, **attrs: Any) -> None:
        """Close a span opened with :meth:`begin`.

        ``None`` and ids that were never opened (or already closed) are
        no-ops, so callers can close unconditionally on every exit path.
        """
        if span_id is None or not self.enabled or span_id not in self._open:
            return
        kind, node = self._open.pop(span_id)
        self.trace.record(time, "span", node, "end", span=span_id, kind=kind, **attrs)

    def open_count(self) -> int:
        """Spans begun but not yet ended (tests/assertions)."""
        return len(self._open)


class SpanChainTracker:
    """Online span bookkeeping for trace subscribers.

    Feed every event a subscriber receives to :meth:`on_event`; the
    tracker keeps, per node, the stack of currently-open spans.
    :meth:`chain` then answers "what was node ``x`` doing?" as the parent
    chain of its innermost open span -- the causal attribution the
    sanitizer attaches to a violation, and far cheaper than rebuilding
    the full span forest with :func:`spans_from_trace` mid-run.
    """

    def __init__(self) -> None:
        #: span id -> (kind, node, parent) for every span ever begun
        self._info: Dict[int, Tuple[str, Optional[int], Optional[int]]] = {}
        #: open span ids per node, in begin order (innermost last)
        self._open_by_node: Dict[Optional[int], List[int]] = {}

    def on_event(self, event: "TraceEvent") -> None:
        """Consume one trace event (non-span events are ignored)."""
        if event.category != "span":
            return
        details = event.details
        span_id = details.get("span")
        if span_id is None:
            return
        if event.action == "begin":
            self._info[span_id] = (
                details.get("kind", "?"),
                event.node,
                details.get("parent"),
            )
            self._open_by_node.setdefault(event.node, []).append(span_id)
        elif event.action == "end":
            info = self._info.get(span_id)
            if info is not None:
                stack = self._open_by_node.get(info[1])
                if stack is not None and span_id in stack:
                    stack.remove(span_id)

    def chain(self, node: Optional[int]) -> List[Dict[str, Any]]:
        """Parent chain of ``node``'s innermost open span, innermost first.

        Each element is ``{"span": id, "kind": kind, "node": node}``;
        empty when the node has no open span (e.g. spans are disabled).
        """
        stack = self._open_by_node.get(node)
        if not stack:
            return []
        chain: List[Dict[str, Any]] = []
        seen = set()
        cursor: Optional[int] = stack[-1]
        while cursor is not None and cursor not in seen:
            seen.add(cursor)
            info = self._info.get(cursor)
            if info is None:
                break
            kind, span_node, parent = info
            chain.append({"span": cursor, "kind": kind, "node": span_node})
            cursor = parent
        return chain


# ----------------------------------------------------------------------
# reconstruction from a trace
# ----------------------------------------------------------------------
def spans_from_trace(
    source: Union["TraceRecorder", Iterable["TraceEvent"]],
) -> List[Span]:
    """Rebuild the span list from trace events (live or loaded JSONL).

    Spans whose ``end`` event is missing (the owner crashed mid-span, or
    the run was cut off) come back with ``end=None``.
    """
    events = getattr(source, "events", source)
    spans: Dict[int, Span] = {}
    for event in events:
        if event.category != "span":
            continue
        details = event.details
        span_id = details.get("span")
        if span_id is None:
            continue
        if event.action == "begin":
            attrs = {
                k: v
                for k, v in details.items()
                if k not in ("span", "kind", "parent", "links")
            }
            spans[span_id] = Span(
                span_id=span_id,
                kind=details.get("kind", "?"),
                node=event.node,
                start=event.time,
                parent=details.get("parent"),
                links=tuple(details.get("links", ())),
                attrs=attrs,
            )
        elif event.action == "end":
            span = spans.get(span_id)
            if span is None:
                # end without begin (truncated trace): synthesize
                span = Span(
                    span_id=span_id,
                    kind=details.get("kind", "?"),
                    node=event.node,
                    start=event.time,
                )
                spans[span_id] = span
            span.end = event.time
            for key, value in details.items():
                if key not in ("span", "kind"):
                    span.attrs.setdefault(key, value)
    return sorted(spans.values(), key=lambda s: (s.start, s.span_id))


def children_of(spans: Sequence[Span]) -> Dict[Optional[int], List[Span]]:
    """Parent id -> children, each list in (start, id) order."""
    tree: Dict[Optional[int], List[Span]] = {}
    for span in spans:
        tree.setdefault(span.parent, []).append(span)
    for siblings in tree.values():
        siblings.sort(key=lambda s: (s.start, s.span_id))
    return tree


# ----------------------------------------------------------------------
# recovery critical path
# ----------------------------------------------------------------------
#: Episode phase kind -> cost component it is attributed to.
#:
#: * ``detection``  -- the watchdog timeout: the process sits dead and
#:   undetected (the paper's "several seconds of timeouts and retrials");
#: * ``storage``    -- stable-storage latency (state restore, and any
#:   storage operation overlapping the replay);
#: * ``control``    -- recovery control-message rounds (ordinal
#:   acquisition, incarnation gather, depinfo gather, distribution);
#: * ``replay``     -- local recomputation from the gathered depinfo.
PHASE_COMPONENT = {
    "recovery.detect": "detection",
    "recovery.restore": "storage",
    "recovery.gather": "control",
    "recovery.replay": "replay",
}

#: Phase whose time is refined against overlapping same-node storage
#: spans: replay time actually spent waiting on the device is storage
#: cost, not recomputation.
#:
#: Storage spans are matched by their ``storage.`` kind prefix, so every
#: device operation participates automatically: ``storage.write``,
#: ``storage.read``, ``storage.log_append``, ``storage.log_read``, and
#: ``storage.batch_flush`` (one group-commit batch hitting the device --
#: its span covers the whole coalesced operation, which is how batched
#: log time shows up on the recovery critical path).
_STORAGE_REFINED = {"recovery.replay": "replay"}


@dataclass
class PathSegment:
    """One attributed slice of a recovery episode."""

    start: float
    end: float
    kind: str
    component: str

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class CriticalPath:
    """What bounded one node's recovery, phase by phase."""

    node: int
    start: float
    end: float
    segments: List[PathSegment]
    gather_rounds: int = 0
    handoffs: int = 0  # rounds adopted from a dead leader (view change)
    resumed_rounds: int = 0  # rounds resumed rather than started fresh

    @property
    def total(self) -> float:
        """Crash-to-live duration (== the episode's ``total_duration``)."""
        return self.end - self.start

    def components(self) -> Dict[str, float]:
        """Total time per cost component; values sum to :attr:`total`."""
        totals: Dict[str, float] = {}
        for segment in self.segments:
            totals[segment.component] = (
                totals.get(segment.component, 0.0) + segment.duration
            )
        return totals

    def dominant(self) -> Optional[str]:
        """The component that bounded this recovery."""
        totals = self.components()
        if not totals:
            return None
        return max(sorted(totals), key=lambda k: totals[k])


def _merged_intervals(
    spans: Iterable[Span], lo: float, hi: float, horizon: float
) -> List[Tuple[float, float]]:
    """Clip spans to ``[lo, hi]`` and merge overlaps."""
    clipped = []
    for span in spans:
        end = span.end if span.end is not None else horizon
        start, stop = max(span.start, lo), min(end, hi)
        if stop > start:
            clipped.append((start, stop))
    clipped.sort()
    merged: List[Tuple[float, float]] = []
    for start, stop in clipped:
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], stop))
        else:
            merged.append((start, stop))
    return merged


def recovery_critical_paths(
    source: Union["TraceRecorder", Iterable["TraceEvent"], Sequence[Span]],
    node: Optional[int] = None,
) -> List[CriticalPath]:
    """Extract the critical path of every completed recovery episode.

    Each episode's ``[crash, recovered]`` interval is partitioned into
    contiguous phase segments (so per-component times sum exactly to the
    episode duration), and the replay phase is refined by walking the
    same node's storage spans: replay wall-time the device was busy is
    attributed to ``storage``, the remainder to ``replay``.
    """
    if isinstance(source, (list, tuple)) and (not source or isinstance(source[0], Span)):
        spans: Sequence[Span] = source  # already extracted
    else:
        spans = spans_from_trace(source)
    if not spans:
        return []
    horizon = max(
        (s.end if s.end is not None else s.start) for s in spans
    )
    tree = children_of(spans)
    paths: List[CriticalPath] = []
    for episode in spans:
        if episode.kind != "recovery.episode" or not episode.closed:
            continue
        if node is not None and episode.node != node:
            continue
        children = [
            c for c in tree.get(episode.span_id, ()) if c.kind in PHASE_COMPONENT
        ]
        segments: List[PathSegment] = []
        cursor = episode.start
        for phase in children:
            if phase.start > cursor:
                # should not happen with contiguous instrumentation, but
                # never let a gap make the components under-count
                segments.append(PathSegment(cursor, phase.start, "gap", "other"))
                cursor = phase.start
            end = min(phase.end if phase.end is not None else episode.end, episode.end)
            if end <= cursor:
                continue
            component = PHASE_COMPONENT[phase.kind]
            if phase.kind in _STORAGE_REFINED:
                storage_spans = [
                    s
                    for s in spans
                    if s.node == episode.node and s.kind.startswith("storage.")
                ]
                busy = _merged_intervals(storage_spans, cursor, end, horizon)
                pos = cursor
                for lo, hi in busy:
                    if lo > pos:
                        segments.append(PathSegment(pos, lo, phase.kind, component))
                    segments.append(PathSegment(lo, hi, phase.kind, "storage"))
                    pos = hi
                if end > pos:
                    segments.append(PathSegment(pos, end, phase.kind, component))
            else:
                segments.append(PathSegment(cursor, end, phase.kind, component))
            cursor = end
        if cursor < episode.end:
            segments.append(PathSegment(cursor, episode.end, "gap", "other"))
        round_spans = [
            c
            for c in tree.get(episode.span_id, ())
            if c.kind == "recovery.gather_round"
        ]
        paths.append(
            CriticalPath(
                node=episode.node,
                start=episode.start,
                end=episode.end,
                segments=segments,
                gather_rounds=len(round_spans),
                handoffs=sum(
                    1 for s in round_spans if s.attrs.get("handoff")
                ),
                resumed_rounds=sum(
                    1 for s in round_spans if s.attrs.get("resumed")
                ),
            )
        )
    paths.sort(key=lambda p: (p.start, p.node))
    return paths
