"""Sharded discrete-event execution with conservative lookahead.

:class:`ShardedSimulator` partitions the node population across
``shard_count`` independent :class:`~repro.sim.kernel.Simulator` heaps
and advances them in *windows*: every shard may safely execute all of
its events in ``[h, h + L)``, where ``h`` is the minimum next-event time
across shards and ``L`` is the **lookahead** -- a proven lower bound on
cross-shard message latency (the minimum one-way delay of the link
models, see :meth:`repro.net.latency.LatencyModel.min_delay`).  A
message sent at time ``t`` cannot arrive before ``t + L >= h + L``, so
nothing a peer does inside the window can schedule work *into* the
window: the classic conservative-lookahead argument of parallel
discrete-event simulation (Chandy/Misra/Bryant), with the global window
barrier playing the role of null messages.

Cross-shard sends go through per-``(dst, src)`` **mailboxes**: the
sending shard stamps the event with a sequence number drawn from its own
sequence space at send time (:meth:`Simulator.next_seq`), and the
destination shard materializes it at the next barrier
(:meth:`Simulator.inject`).  Because every event carries a globally
unique ``(time, priority, seq)`` key, heap order is a total order and
the moment of insertion is unobservable -- which is also why the
``threads`` executor (one worker per shard inside a window) produces
byte-identical runs to the ``serial`` executor.

Determinism contract
--------------------
* For a fixed ``(seed, shard_count)`` the run is fully deterministic.
* ``shard_count = 1`` is never built: :class:`~repro.core.system.System`
  keeps the plain :class:`Simulator` there, so the seed goldens stay
  byte-identical by construction.
* Across shard counts the *schedule* changes (shards interleave their
  windows, so shared RNG streams are consumed in a different order) --
  exactly the legal perturbation ``repro check`` already probes with
  tie-break shuffles.  The semantic fingerprint
  (:func:`repro.sanitizer.differ.semantic_fingerprint`) must be
  invariant; strict per-run details (digests, end times) may drift.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from typing import Any, Callable, Iterator, List, Optional, Tuple

from repro.sim.events import EventHandle
from repro.sim.kernel import SimulationError, Simulator

#: A stamped cross-shard event waiting in a mailbox:
#: ``(time, priority, seq, fn, args, label)``.
MailEntry = Tuple[float, int, int, Callable[..., Any], Tuple[Any, ...], str]


class ShardedSimulator:
    """A drop-in :class:`Simulator` facade over per-shard event heaps.

    Parameters
    ----------
    shard_count:
        Number of independent heaps.  Nodes are assigned round-robin
        (``node_id % shard_count``); use :meth:`home` to pin boot-time
        scheduling to a node's shard.
    lookahead:
        The conservative window width ``L`` in virtual seconds.  Must be
        positive; the caller derives it from the minimum cross-shard
        link latency (``Network.min_latency()``).
    tiebreak_seed:
        As on :class:`Simulator`; each shard derives its own stream so
        the jitter draws of one shard are independent of another's
        schedule.
    executor:
        ``"serial"`` (default) runs each window's shards in shard order
        on the calling thread -- the mode :class:`System` uses, and the
        reference for determinism.  ``"threads"`` runs them on a worker
        pool; results are identical (events are totally ordered by
        ``(time, priority, seq)`` and cross-shard traffic is deferred to
        the barrier), and it becomes a real speedup on multi-core
        free-threaded interpreters.
    """

    def __init__(
        self,
        shard_count: int,
        lookahead: float,
        start_time: float = 0.0,
        tiebreak_seed: Optional[int] = None,
        drain_max_events: Optional[int] = None,
        executor: str = "serial",
    ) -> None:
        if shard_count < 1:
            raise SimulationError(f"shard_count must be >= 1, got {shard_count!r}")
        if not lookahead > 0.0:
            raise SimulationError(
                f"sharded execution needs a positive lookahead, got {lookahead!r}; "
                f"the minimum cross-shard link latency must be > 0"
            )
        if executor not in ("serial", "threads"):
            raise SimulationError(f"unknown executor {executor!r}")
        self.shard_count = shard_count
        self.lookahead = float(lookahead)
        self.executor = executor
        self._shards: List[Simulator] = [
            Simulator(
                start_time=start_time,
                tiebreak_seed=(
                    None if tiebreak_seed is None else tiebreak_seed * 65_537 + i
                ),
                drain_max_events=drain_max_events,
                seq_start=i,
                seq_step=shard_count,
            )
            for i in range(shard_count)
        ]
        self._drain_max_events = self._shards[0]._drain_max_events
        #: mailboxes[dst][src]: stamped events crossing src -> dst, drained
        #: into dst's heap at the window barrier.  Each sending shard only
        #: appends to its own slot, so the threads executor needs no lock.
        self._mail: List[List[List[MailEntry]]] = [
            [[] for _ in range(shard_count)] for _ in range(shard_count)
        ]
        #: execution context: which shard's heap plain schedule calls land
        #: on.  Thread-local so the threads executor keeps one per worker.
        self._tls = threading.local()
        self._running = False
        self._stopped = False
        #: right-open end of the window being executed; cross-shard sends
        #: below it are lookahead violations and raise
        self._window_end = float(start_time)
        self._windows = 0
        self._barrier_hooks: List[Callable[[float, float], None]] = []
        self._profiler: Optional[Any] = None

    # ------------------------------------------------------------------
    # shard placement / execution context
    # ------------------------------------------------------------------
    def shard_of(self, node_id: int) -> int:
        """Which shard owns ``node_id`` (round-robin)."""
        return node_id % self.shard_count

    def _cur(self) -> int:
        return getattr(self._tls, "cur", 0)

    @contextmanager
    def home(self, node_id: int) -> Iterator[None]:
        """Pin scheduling to ``node_id``'s shard for the duration.

        Used at boot (before any event runs, while every shard clock
        agrees) so each node's initial timers land on its own heap; from
        then on events inherit the shard they were scheduled on.
        """
        prev = self._cur()
        self._tls.cur = self.shard_of(node_id)
        try:
            yield
        finally:
            self._tls.cur = prev

    # ------------------------------------------------------------------
    # aggregate clock / counters (the Simulator surface)
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """The executing shard's clock (the global barrier time between
        windows -- all shard clocks agree there)."""
        return self._shards[self._cur()].now

    @property
    def events_processed(self) -> int:
        return sum(s.events_processed for s in self._shards)

    @property
    def pending_events(self) -> int:
        return sum(s.pending_events for s in self._shards)

    @property
    def live_events(self) -> int:
        return sum(s.live_events for s in self._shards)

    @property
    def compactions(self) -> int:
        return sum(s.compactions for s in self._shards)

    @property
    def pool_size(self) -> int:
        return sum(s.pool_size for s in self._shards)

    @property
    def pool_reuses(self) -> int:
        return sum(s.pool_reuses for s in self._shards)

    @property
    def windows(self) -> int:
        """Lookahead windows executed so far (barriers crossed)."""
        return self._windows

    @property
    def shards(self) -> Tuple[Simulator, ...]:
        """The per-shard kernels (read-only view, tests/benchmarks)."""
        return tuple(self._shards)

    @property
    def profiler(self) -> Optional[Any]:
        return self._profiler

    @profiler.setter
    def profiler(self, profiler: Optional[Any]) -> None:
        """Fan one profiler out to every shard kernel.

        ``SimProfiler.attach`` assigns ``sim.profiler``; with the serial
        executor the shards run one at a time, so sharing the instance is
        safe (its counters are not thread-safe -- the threads executor
        should run unprofiled)."""
        self._profiler = profiler
        for shard in self._shards:
            shard.profiler = profiler

    # ------------------------------------------------------------------
    # scheduling (delegates to the executing shard)
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = 0,
        label: str = "",
        **kwargs: Any,
    ) -> EventHandle:
        return self._shards[self._cur()].schedule(
            delay, fn, *args, priority=priority, label=label, **kwargs
        )

    def schedule_at(
        self,
        time: float,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = 0,
        label: str = "",
        **kwargs: Any,
    ) -> EventHandle:
        return self._shards[self._cur()].schedule_at(
            time, fn, *args, priority=priority, label=label, **kwargs
        )

    def schedule_fast(
        self,
        delay: float,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = 0,
        label: str = "",
    ) -> None:
        self._shards[self._cur()].schedule_fast(
            delay, fn, *args, priority=priority, label=label
        )

    def schedule_fast_at(
        self,
        time: float,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = 0,
        label: str = "",
    ) -> None:
        self._shards[self._cur()].schedule_fast_at(
            time, fn, *args, priority=priority, label=label
        )

    def schedule_message(
        self,
        time: float,
        node_id: int,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = 0,
        label: str = "",
    ) -> None:
        """Schedule a delivery on ``node_id``'s shard at absolute ``time``.

        The cross-shard edge of the kernel: the :class:`Network` routes
        deliveries through this (discovered by duck typing) so a message
        lands on its destination's heap.  Same-shard deliveries take the
        plain pooled path.  Cross-shard deliveries are stamped with the
        *sending* shard's next sequence number and parked in a mailbox
        until the barrier; the conservative-lookahead invariant requires
        ``time >= window_end``, which the latency floor guarantees --
        a violation means the lookahead bound is wrong, so it raises.
        """
        src = self._cur()
        dst = node_id % self.shard_count
        if dst == src:
            self._shards[src].schedule_fast_at(
                time, fn, *args, priority=priority, label=label
            )
            return
        if self._running:
            if time < self._window_end:
                raise SimulationError(
                    f"lookahead violation: cross-shard delivery at t={time!r} "
                    f"inside the window ending at t={self._window_end!r} "
                    f"(lookahead={self.lookahead!r})"
                )
            seq = self._shards[src].next_seq()
            self._mail[dst][src].append((time, priority, seq, fn, args, label))
        else:
            # boot / between runs: every clock agrees, push directly
            self._shards[dst].schedule_fast_at(
                time, fn, *args, priority=priority, label=label
            )

    # ------------------------------------------------------------------
    # barriers
    # ------------------------------------------------------------------
    def add_barrier_hook(self, hook: Callable[[float, float], None]) -> None:
        """Call ``hook(window_start, window_end)`` after every window.

        Fired after mailboxes are drained, in registration order; used by
        the trace recorder to flush its per-window merge buffer in
        timestamp order, and by tests to audit the horizon invariant.
        """
        self._barrier_hooks.append(hook)

    def _drain_mailboxes(self) -> None:
        for dst in range(self.shard_count):
            sim = self._shards[dst]
            for entries in self._mail[dst]:
                if entries:
                    for time, priority, seq, fn, args, label in entries:
                        sim.inject(time, seq, fn, args, priority, label)
                    entries.clear()

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def _run_window(
        self,
        target: float,
        exclusive: bool,
        max_events: Optional[int],
        fired_before: int,
        pool: Optional[ThreadPoolExecutor],
    ) -> None:
        """Execute one window on every shard.

        ``max_events`` is the budget *remaining for this window* and
        ``fired_before`` the aggregate count at window start.  The serial
        executor decrements the budget shard by shard (an exact global
        ceiling); the threads executor applies it per shard (a cap, not
        an exact global count -- counting across racing workers would be
        a data race for no benefit on a safety valve).
        """
        if pool is None:
            for idx, shard in enumerate(self._shards):
                self._tls.cur = idx
                budget: Optional[int] = None
                if max_events is not None:
                    budget = max_events - (
                        sum(s.events_processed for s in self._shards) - fired_before
                    )
                    if budget <= 0:
                        break
                shard.run(until=target, max_events=budget, exclusive=exclusive)
            return

        # threads executor: one worker per shard inside the window; the
        # only shared mutable state is the mailboxes (single-writer per
        # slot).  The event budget is per-shard here (a global counter
        # would be a race); it still bounds the run within one window.
        def worker(idx: int) -> None:
            self._tls.cur = idx
            self._shards[idx].run(
                until=target, max_events=max_events, exclusive=exclusive
            )

        futures = [pool.submit(worker, i) for i in range(self.shard_count)]
        for future in futures:
            future.result()

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> float:
        """Run windows until quiescence, ``until``, or ``max_events``."""
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        self._stopped = False
        fired_start = self.events_processed
        pool: Optional[ThreadPoolExecutor] = None
        if self.executor == "threads":
            pool = ThreadPoolExecutor(
                max_workers=self.shard_count, thread_name_prefix="repro-shard"
            )
        try:
            while not self._stopped:
                if (
                    max_events is not None
                    and self.events_processed - fired_start >= max_events
                ):
                    break
                times = [s.peek_next_time() for s in self._shards]
                live = [t for t in times if t is not None]
                if not live:
                    break
                window_start = min(live)
                if until is not None and window_start > until:
                    break
                window_end = window_start + self.lookahead
                # the final window capped by `until` runs inclusive (events
                # at exactly `until` fire, matching Simulator.run); its
                # cross-shard sends still clear window_start + lookahead
                final = until is not None and until < window_end
                target = until if final else window_end
                self._window_end = window_end
                budget = (
                    None
                    if max_events is None
                    else max_events - (self.events_processed - fired_start)
                )
                self._run_window(target, not final, budget, self.events_processed, pool)
                self._drain_mailboxes()
                self._windows += 1
                for hook in self._barrier_hooks:
                    hook(window_start, target)
            if until is not None and not self._stopped:
                for shard in self._shards:
                    if shard.now < until:
                        shard._now = until
        finally:
            self._running = False
            self._tls.cur = 0
            if pool is not None:
                pool.shutdown(wait=True)
        return max(s.now for s in self._shards)

    def stop(self) -> None:
        """Stop the windowed run after the current event."""
        self._stopped = True
        self._shards[self._cur()].stop()

    def drain(self, max_events: Optional[int] = None) -> float:
        """Run until every heap is empty.  Raises if the ceiling trips."""
        if max_events is None:
            max_events = self._drain_max_events
        result = self.run(max_events=max_events)
        if self.live_events:
            raise SimulationError(
                f"drain exceeded {max_events} events with work remaining"
            )
        return result

    # ------------------------------------------------------------------
    # features that require the single-heap kernel
    # ------------------------------------------------------------------
    def set_choice_oracle(self, fn: Optional[Callable[[int], int]]) -> None:
        """Exhaustive tie-order search needs one global heap: with more
        than one shard there is no global same-instant tie group to
        enumerate, so this always raises.  Run ``repro check
        --exhaustive`` with ``shard_count=1``."""
        raise SimulationError(
            "choice oracles (exhaustive checking) require shard_count=1"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardedSimulator(shards={self.shard_count}, "
            f"lookahead={self.lookahead}, windows={self._windows}, "
            f"processed={self.events_processed})"
        )
