"""The discrete-event simulation kernel.

:class:`Simulator` owns the virtual clock and the event heap.  Everything
else in the reproduction (network, stable storage, failure detector,
protocol state machines) is expressed as callbacks scheduled on one
simulator instance, so a whole distributed execution is a single
deterministic event loop.

Hot-path notes
--------------
The kernel is the inner loop of every sweep and chaos trial, so it keeps
two exact counters instead of scanning the heap:

* cancellation is lazy (a cancelled event stays queued and is skipped on
  pop), but the kernel counts cancelled-while-queued events so
  :attr:`Simulator.live_events` and :meth:`Simulator.drain` are O(1);
* when cancelled corpses dominate the heap -- the retransmit-timer
  pattern, where an ack cancels a far-deadline timer long before it
  would fire -- the heap is *compacted*: corpses are filtered out and
  the survivors re-heapified.  Compaction only removes events that can
  never fire, so event order (and therefore every run) is unchanged.

Intra-run scale (10k+ processes, 100M+ events in one run) adds a third
discipline: the inner loop must not allocate per event.

* :meth:`Simulator.schedule_fast` is a handle-free scheduling path for
  the fire-and-forget majority (network deliveries, watchdog restarts):
  no :class:`EventHandle` is constructed, and the :class:`Event` object
  itself is drawn from a free-list pool of previously-fired events;
* after a pooled event fires, its ``fn``/``args``/``kwargs``/``label``
  slots are cleared before release so the pool never pins callbacks or
  payloads, and only handle-free events are ever pooled -- a recycled
  object can therefore never be reached by a stale handle, so a
  cancelled corpse cannot be resurrected by reuse.
"""

from __future__ import annotations

import heapq
import random
from typing import Any, Callable, List, Optional, Tuple

from repro.sim.events import Event, EventHandle

#: Compaction is considered only once the heap holds this many entries
#: (small heaps never pay the rebuild) ...
COMPACT_MIN_HEAP = 1024
#: ... and at least this fraction of them are cancelled corpses.  At 0.5
#: the rebuild cost amortises to O(1) per cancellation.
COMPACT_RATIO = 0.5
#: Free-list bound: fired schedule_fast events kept for reuse.  The pool
#: only needs to cover the live-event working set; anything beyond that
#: would pin memory for no throughput gain.
EVENT_POOL_MAX = 4096
#: Default ceiling for :meth:`Simulator.drain` (per-simulator override:
#: the ``drain_max_events`` constructor knob, plumbed from
#: ``SystemConfig.drain_max_events``).  Sized for the 100M-event runs
#: the ``huge_system`` benchmark targets; pass an explicit ``max_events``
#: for a tighter runaway check.
DRAIN_MAX_EVENTS = 100_000_000


class SimulationError(RuntimeError):
    """Raised on kernel misuse (e.g. scheduling in the past)."""


def _released_fn(*_args: Any, **_kwargs: Any) -> None:
    """Placeholder callback installed on pooled events between uses.

    Firing it means the kernel recycled an event that something still
    referenced -- a pooling bug -- so fail loudly instead of silently
    running a stale callback."""
    raise SimulationError("a pooled (released) event was fired")


class Simulator:
    """Deterministic discrete-event simulator.

    Parameters
    ----------
    start_time:
        Initial value of the virtual clock, in seconds.
    compact_min_heap:
        Heap size below which cancelled corpses are never compacted away
        (``None`` disables compaction entirely -- the seed's behaviour,
        kept for benchmarking the difference).
    compact_ratio:
        Fraction of the heap that must be cancelled before a compaction
        triggers.
    tiebreak_seed:
        Off (``None``) by default.  When set, events scheduled for the
        same instant at the same priority fire in a seeded-random order
        instead of FIFO.  Any such ordering is *legal* for a discrete-
        event simulation -- the model never promises FIFO across
        components -- so a run whose results change under a tie-break
        shuffle has a hidden schedule race.  ``repro check`` exploits
        this: it re-runs a trial under several tie-break seeds and diffs
        the outcomes (see :mod:`repro.sanitizer.differ`).

    Notes
    -----
    * The clock only moves when :meth:`run` (or :meth:`step`) pops events.
    * Two events scheduled for the same instant fire in the order they
      were scheduled (FIFO), unless an explicit ``priority`` says
      otherwise.  This is what makes runs reproducible.
    """

    def __init__(
        self,
        start_time: float = 0.0,
        compact_min_heap: Optional[int] = COMPACT_MIN_HEAP,
        compact_ratio: float = COMPACT_RATIO,
        tiebreak_seed: Optional[int] = None,
        drain_max_events: Optional[int] = None,
        seq_start: int = 0,
        seq_step: int = 1,
    ) -> None:
        self._now = float(start_time)
        self._heap: List[Event] = []
        #: ``seq_start``/``seq_step`` carve disjoint sequence-number
        #: spaces for the sharded kernel (shard i of K strides ``i, i+K,
        #: i+2K, ...``): seqs stay globally unique across shards, so the
        #: merged event order is still a total order.  The defaults
        #: (0, 1) are the classic single-heap numbering, byte for byte.
        self._seq = seq_start
        self._seq_step = seq_step
        #: None keeps the seed's exact FIFO tie order; a seeded RNG makes
        #: same-instant ordering a controlled perturbation (repro check)
        self._tiebreak_rng = (
            random.Random(tiebreak_seed) if tiebreak_seed is not None else None
        )
        self._events_processed = 0
        self._running = False
        self._stopped = False
        #: cancelled events still sitting in the heap (exact, maintained
        #: by EventHandle.cancel via _note_cancelled and by the pop sites)
        self._heap_cancelled = 0
        self._compact_min_heap = compact_min_heap
        self._compact_ratio = compact_ratio
        self._compactions = 0
        #: when set, same-(time, priority) ties become explicit choice
        #: points resolved by the oracle (repro check --exhaustive)
        self._choice_oracle: Optional[Callable[[int], int]] = None
        #: optional repro.sim.profile.SimProfiler; None = direct dispatch
        self.profiler: Optional[Any] = None
        #: ceiling for drain() when no explicit max_events is passed
        self._drain_max_events = (
            drain_max_events if drain_max_events is not None else DRAIN_MAX_EVENTS
        )
        #: free-list of fired schedule_fast events awaiting reuse.  Only
        #: handle-free (poolable) events ever land here; cancelled corpses
        #: always have a handle, so a recycled object can never be one.
        self._pool: List[Event] = []
        self._pool_reuses = 0

    # ------------------------------------------------------------------
    # clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events fired so far (cancelled events excluded)."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of events still in the heap (including cancelled ones)."""
        return len(self._heap)

    @property
    def live_events(self) -> int:
        """Number of queued events that will actually fire.

        Unlike :attr:`pending_events` this excludes lazily-cancelled
        corpses; it is maintained incrementally, never by scanning."""
        return len(self._heap) - self._heap_cancelled

    @property
    def compactions(self) -> int:
        """Times the heap was rebuilt to shed cancelled corpses."""
        return self._compactions

    @property
    def pool_size(self) -> int:
        """Fired schedule_fast events currently parked in the free list."""
        return len(self._pool)

    @property
    def pool_reuses(self) -> int:
        """schedule_fast calls served by recycling a pooled event."""
        return self._pool_reuses

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = 0,
        label: str = "",
        **kwargs: Any,
    ) -> EventHandle:
        """Schedule ``fn(*args, **kwargs)`` to fire ``delay`` seconds from now.

        Returns a cancellable :class:`EventHandle`.  ``delay`` must be
        non-negative; a zero delay fires after all events already queued
        for the current instant.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay!r} seconds in the past")
        return self._push(self._now + delay, fn, args, kwargs, priority, label)

    def schedule_at(
        self,
        time: float,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = 0,
        label: str = "",
        **kwargs: Any,
    ) -> EventHandle:
        """Schedule ``fn`` at an absolute virtual time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time!r}, clock is already at t={self._now!r}"
            )
        return self._push(time, fn, args, kwargs, priority, label)

    def _push(
        self,
        time: float,
        fn: Callable[..., Any],
        args: Tuple[Any, ...],
        kwargs: Optional[dict],
        priority: int,
        label: str,
    ) -> EventHandle:
        # FIFO by default; under a tie-break shuffle the jitter occupies
        # the high bits so it dominates same-instant ordering, while the
        # monotonic counter in the low 40 bits keeps every seq unique
        # (and the whole run deterministic for a given tiebreak_seed).
        seq = self._seq
        if self._tiebreak_rng is not None:
            seq = (self._tiebreak_rng.getrandbits(20) << 40) | seq
        event = Event(time, seq, fn, args, kwargs, priority=priority, label=label)
        event.in_heap = True
        self._seq += self._seq_step
        heapq.heappush(self._heap, event)
        if self.profiler is not None:
            self.profiler.note_heap_depth(len(self._heap) - self._heap_cancelled)
        return EventHandle(event, self)

    def schedule_fast(
        self,
        delay: float,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = 0,
        label: str = "",
    ) -> None:
        """Schedule a fire-and-forget ``fn(*args)`` -- no handle, no kwargs.

        The allocation-free twin of :meth:`schedule` for callers that
        never cancel (network deliveries, watchdog restarts): no
        :class:`EventHandle` is built, and the :class:`Event` itself is
        recycled from the free-list pool when one is available.  Ordering
        is identical to :meth:`schedule` -- both paths share the same
        sequence counter and tie-break jitter, so mixing them leaves
        every run byte-identical.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay!r} seconds in the past")
        self._push_fast(self._now + delay, fn, args, priority, label)

    def schedule_fast_at(
        self,
        time: float,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = 0,
        label: str = "",
    ) -> None:
        """Absolute-time twin of :meth:`schedule_fast`."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time!r}, clock is already at t={self._now!r}"
            )
        self._push_fast(time, fn, args, priority, label)

    def _push_fast(
        self,
        time: float,
        fn: Callable[..., Any],
        args: Tuple[Any, ...],
        priority: int,
        label: str,
    ) -> None:
        seq = self._seq
        if self._tiebreak_rng is not None:
            seq = (self._tiebreak_rng.getrandbits(20) << 40) | seq
        pool = self._pool
        if pool:
            event = pool.pop()
            self._pool_reuses += 1
            event.time = time
            event.priority = priority
            event.seq = seq
            event.fn = fn
            event.args = args
            event.label = label
            # kwargs/cancelled/poolable were reset by _release
        else:
            event = Event(time, seq, fn, args, None, priority=priority, label=label)
            event.poolable = True
        event.in_heap = True
        self._seq += self._seq_step
        heapq.heappush(self._heap, event)
        if self.profiler is not None:
            self.profiler.note_heap_depth(len(self._heap) - self._heap_cancelled)

    def next_seq(self) -> int:
        """Draw the next (jittered) sequence number without scheduling.

        Used by the sharded kernel to stamp a cross-shard message in the
        *sending* shard's sequence space at send time; the event itself
        is materialized later by :meth:`inject` on the destination shard.
        The draw is identical to the scheduling paths' (same counter,
        same tie-break jitter), so a stamped-then-injected event orders
        exactly as if the sender had scheduled it directly.
        """
        seq = self._seq
        if self._tiebreak_rng is not None:
            seq = (self._tiebreak_rng.getrandbits(20) << 40) | seq
        self._seq += self._seq_step
        return seq

    def inject(
        self,
        time: float,
        seq: int,
        fn: Callable[..., Any],
        args: Tuple[Any, ...],
        priority: int = 0,
        label: str = "",
    ) -> None:
        """Push a pre-stamped handle-free event (cross-shard mailboxes).

        The caller supplies the sequence number (from another shard's
        :meth:`next_seq`); everything else matches the pooled
        ``schedule_fast`` path.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot inject at t={time!r}, clock is already at t={self._now!r}"
            )
        pool = self._pool
        if pool:
            event = pool.pop()
            self._pool_reuses += 1
            event.time = time
            event.priority = priority
            event.seq = seq
            event.fn = fn
            event.args = args
            event.label = label
        else:
            event = Event(time, seq, fn, args, None, priority=priority, label=label)
            event.poolable = True
        event.in_heap = True
        heapq.heappush(self._heap, event)
        if self.profiler is not None:
            self.profiler.note_heap_depth(len(self._heap) - self._heap_cancelled)

    def _release(self, event: Event) -> None:
        """Return a fired schedule_fast event to the free list.

        Slots are cleared first so the pool never pins the callback or
        its payload; ``fn`` becomes a tripwire that raises if a pooling
        bug ever fires a released event."""
        event.fn = _released_fn
        event.args = ()
        event.kwargs = None
        event.label = ""
        event.cancelled = False
        if len(self._pool) < EVENT_POOL_MAX:
            self._pool.append(event)

    # ------------------------------------------------------------------
    # cancellation bookkeeping / compaction
    # ------------------------------------------------------------------
    def _note_cancelled(self) -> None:
        """An in-heap event was just cancelled (called by EventHandle)."""
        self._heap_cancelled += 1
        threshold = self._compact_min_heap
        if (
            threshold is not None
            and len(self._heap) >= threshold
            and self._heap_cancelled >= len(self._heap) * self._compact_ratio
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled corpses and re-heapify the survivors.

        Events are totally ordered by ``(time, priority, seq)``, so the
        rebuilt heap pops in exactly the order the old one would have --
        compaction is invisible to the simulation."""
        survivors = [e for e in self._heap if not e.cancelled]
        self._heap = survivors
        heapq.heapify(survivors)
        self._heap_cancelled = 0
        self._compactions += 1

    # ------------------------------------------------------------------
    # schedule choice points (exhaustive small-scope checking)
    # ------------------------------------------------------------------
    def set_choice_oracle(self, fn: Optional[Callable[[int], int]]) -> None:
        """Resolve same-instant ties through ``fn`` instead of FIFO.

        Whenever two or more live events share the next ``(time,
        priority)`` slot, ``fn(width)`` is called with the number of tied
        events and must return the index (in FIFO order) of the one to
        fire.  Singleton slots never consult the oracle.  This turns the
        schedule into an explicit decision sequence, which is what lets
        :func:`repro.sanitizer.differ.exhaustive_check_trial` enumerate
        every legal same-instant interleaving of a small configuration
        rather than sampling a few random ones.  ``None`` restores the
        FIFO fast path.
        """
        self._choice_oracle = fn

    def _pop_choice(self) -> Optional[Event]:
        """Pop the next event, letting the oracle pick among exact ties.

        Collects every live event tied with the heap top on ``(time,
        priority)``, asks the oracle for an index, and pushes the losers
        back.  O(k log n) per tie group of k -- acceptable for the small
        configurations exhaustive checking targets.
        """
        heap = self._heap
        ties: List[Event] = []
        while heap:
            event = heap[0]
            if event.cancelled:
                heapq.heappop(heap)
                event.in_heap = False
                self._heap_cancelled -= 1
                continue
            if ties and (
                event.time != ties[0].time
                or event.priority != ties[0].priority
            ):
                break
            heapq.heappop(heap)
            event.in_heap = False
            ties.append(event)
        if not ties:
            return None
        index = 0
        if len(ties) > 1:
            index = self._choice_oracle(len(ties))
            if not 0 <= index < len(ties):
                raise SimulationError(
                    f"choice oracle returned {index!r} for width {len(ties)}"
                )
        chosen = ties.pop(index)
        for event in ties:
            event.in_heap = True
            heapq.heappush(heap, event)
        return chosen

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Fire the next pending event.

        Returns ``True`` if an event fired, ``False`` if the heap is
        exhausted.  Cancelled events are discarded silently.
        """
        if self._choice_oracle is not None:
            event = self._pop_choice()
            if event is None:
                return False
            self._now = event.time
            self._events_processed += 1
            if self.profiler is None:
                event.fire()
            else:
                self.profiler.fire(event)
            if event.poolable:
                self._release(event)
            return True
        while self._heap:
            event = heapq.heappop(self._heap)
            event.in_heap = False
            if event.cancelled:
                self._heap_cancelled -= 1
                continue
            self._now = event.time
            self._events_processed += 1
            if self.profiler is None:
                event.fire()
            else:
                self.profiler.fire(event)
            if event.poolable:
                self._release(event)
            return True
        return False

    def peek_next_time(self) -> Optional[float]:
        """Virtual time of the next live event, or ``None`` if empty.

        Cancelled corpses at the heap top are discarded on the way (the
        same lazy sweep the pop sites perform), so the answer is the time
        :meth:`step` would fire at.  Used by the sharded kernel to pick
        the next global window.
        """
        heap = self._heap
        while heap:
            event = heap[0]
            if event.cancelled:
                heapq.heappop(heap)
                event.in_heap = False
                self._heap_cancelled -= 1
                continue
            return event.time
        return None

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
        exclusive: bool = False,
    ) -> float:
        """Run the event loop.

        Parameters
        ----------
        until:
            Stop once the clock would pass this virtual time.  Events at
            exactly ``until`` still fire.  The clock is advanced to
            ``until`` when the horizon is reached with events left over.
        max_events:
            Safety valve; stop after firing this many events.
        exclusive:
            Treat ``until`` as a right-open horizon: events at exactly
            ``until`` do *not* fire (they belong to the next window).
            This is the windowed-execution mode of the sharded kernel;
            the default (inclusive) behaviour is unchanged.

        Returns the virtual time at which the run stopped.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        self._stopped = False
        fired = 0
        heap = self._heap
        profiler = self.profiler  # hoisted: one branch per event when off
        try:
            while heap and not self._stopped:
                if max_events is not None and fired >= max_events:
                    break
                event = heap[0]
                if event.cancelled:
                    heapq.heappop(heap)
                    event.in_heap = False
                    self._heap_cancelled -= 1
                    continue
                if until is not None:
                    if exclusive:
                        if event.time >= until:
                            self._now = until
                            break
                    elif event.time > until:
                        self._now = until
                        break
                if self._choice_oracle is None:
                    heapq.heappop(heap)
                    event.in_heap = False
                else:
                    event = self._pop_choice()
                self._now = event.time
                self._events_processed += 1
                fired += 1
                if profiler is None:
                    event.fire()
                else:
                    profiler.fire(event)
                if event.poolable:
                    self._release(event)
                heap = self._heap  # compaction may have swapped the list
            else:
                if until is not None and not self._stopped and self._now < until:
                    self._now = until
        finally:
            self._running = False
        return self._now

    def stop(self) -> None:
        """Stop a :meth:`run` in progress after the current event."""
        self._stopped = True

    def drain(self, max_events: Optional[int] = None) -> float:
        """Run until the heap is empty.  Raises if the ceiling trips.

        ``max_events`` defaults to the simulator's ``drain_max_events``
        constructor knob (itself defaulting to :data:`DRAIN_MAX_EVENTS`).
        """
        if max_events is None:
            max_events = self._drain_max_events
        self.run(max_events=max_events)
        if self.live_events:
            raise SimulationError(
                f"drain exceeded {max_events} events with work remaining"
            )
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Simulator(now={self._now:.6f}, pending={len(self._heap)}, "
            f"live={self.live_events}, processed={self._events_processed})"
        )
