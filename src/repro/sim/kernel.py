"""The discrete-event simulation kernel.

:class:`Simulator` owns the virtual clock and the event heap.  Everything
else in the reproduction (network, stable storage, failure detector,
protocol state machines) is expressed as callbacks scheduled on one
simulator instance, so a whole distributed execution is a single
deterministic event loop.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional

from repro.sim.events import Event, EventHandle


class SimulationError(RuntimeError):
    """Raised on kernel misuse (e.g. scheduling in the past)."""


class Simulator:
    """Deterministic discrete-event simulator.

    Parameters
    ----------
    start_time:
        Initial value of the virtual clock, in seconds.

    Notes
    -----
    * The clock only moves when :meth:`run` (or :meth:`step`) pops events.
    * Two events scheduled for the same instant fire in the order they
      were scheduled (FIFO), unless an explicit ``priority`` says
      otherwise.  This is what makes runs reproducible.
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._heap: List[Event] = []
        self._seq = 0
        self._events_processed = 0
        self._running = False
        self._stopped = False
        #: optional repro.sim.profile.SimProfiler; None = direct dispatch
        self.profiler: Optional[Any] = None

    # ------------------------------------------------------------------
    # clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events fired so far (cancelled events excluded)."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of events still in the heap (including cancelled ones)."""
        return len(self._heap)

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = 0,
        label: str = "",
        **kwargs: Any,
    ) -> EventHandle:
        """Schedule ``fn(*args, **kwargs)`` to fire ``delay`` seconds from now.

        Returns a cancellable :class:`EventHandle`.  ``delay`` must be
        non-negative; a zero delay fires after all events already queued
        for the current instant.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay!r} seconds in the past")
        return self.schedule_at(self._now + delay, fn, *args, priority=priority, label=label, **kwargs)

    def schedule_at(
        self,
        time: float,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = 0,
        label: str = "",
        **kwargs: Any,
    ) -> EventHandle:
        """Schedule ``fn`` at an absolute virtual time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time!r}, clock is already at t={self._now!r}"
            )
        event = Event(time, self._seq, fn, args, kwargs, priority=priority, label=label)
        self._seq += 1
        heapq.heappush(self._heap, event)
        if self.profiler is not None:
            self.profiler.note_heap_depth(len(self._heap))
        return EventHandle(event)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Fire the next pending event.

        Returns ``True`` if an event fired, ``False`` if the heap is
        exhausted.  Cancelled events are discarded silently.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time
            self._events_processed += 1
            if self.profiler is None:
                event.fire()
            else:
                self.profiler.fire(event)
            return True
        return False

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> float:
        """Run the event loop.

        Parameters
        ----------
        until:
            Stop once the clock would pass this virtual time.  Events at
            exactly ``until`` still fire.  The clock is advanced to
            ``until`` when the horizon is reached with events left over.
        max_events:
            Safety valve; stop after firing this many events.

        Returns the virtual time at which the run stopped.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        self._stopped = False
        fired = 0
        profiler = self.profiler  # hoisted: one branch per event when off
        try:
            while self._heap and not self._stopped:
                if max_events is not None and fired >= max_events:
                    break
                event = self._heap[0]
                if event.cancelled:
                    heapq.heappop(self._heap)
                    continue
                if until is not None and event.time > until:
                    self._now = until
                    break
                heapq.heappop(self._heap)
                self._now = event.time
                self._events_processed += 1
                fired += 1
                if profiler is None:
                    event.fire()
                else:
                    profiler.fire(event)
            else:
                if until is not None and not self._stopped and self._now < until:
                    self._now = until
        finally:
            self._running = False
        return self._now

    def stop(self) -> None:
        """Stop a :meth:`run` in progress after the current event."""
        self._stopped = True

    def drain(self, max_events: int = 10_000_000) -> float:
        """Run until the heap is empty.  Raises if ``max_events`` trips."""
        self.run(max_events=max_events)
        if any(not e.cancelled for e in self._heap):
            raise SimulationError(
                f"drain exceeded {max_events} events with work remaining"
            )
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Simulator(now={self._now:.6f}, pending={len(self._heap)}, "
            f"processed={self._events_processed})"
        )
