"""Wall-clock profiling of the simulation kernel.

The simulator's *virtual* clock says nothing about where *host* time
goes; large sweeps (millions of events) need to know which handlers are
hot and how deep the event heap grows.  :class:`SimProfiler` hooks the
kernel's dispatch loop and accounts, per handler key:

* events dispatched,
* cumulative host seconds,
* the single most expensive dispatch (cost and event label),

plus kernel-wide aggregates: heap depth high-water mark, total host
time inside handlers, wall-clock span of the run, events per second,
and the process's peak RSS.

Profiling is **off by default** and zero-overhead when off: the kernel
dispatch loop tests one attribute (``sim.profiler is None``) and calls
``event.fire()`` directly.  Only with a profiler attached does dispatch
route through :meth:`SimProfiler.fire`.

Handler keys come from the event label's prefix before the first ``:``
(``"deliver:app"`` -> ``"deliver"``), falling back to the callback's
``__qualname__`` for unlabelled events — stable across runs and
parameter sizes, unlike the full labels which embed node ids.

All measurement here is host-side (``time.perf_counter``,
``resource.getrusage``): attaching a profiler cannot perturb virtual
time, event order, or any RNG stream.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Any, Dict, Optional

try:  # resource is POSIX-only; profiling degrades gracefully without it
    import resource
except ImportError:  # pragma: no cover - non-POSIX hosts
    resource = None  # type: ignore[assignment]

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.events import Event
    from repro.sim.kernel import Simulator


def peak_rss_kb() -> Optional[int]:
    """Peak resident set size of this process in KiB (None if unknown).

    ``ru_maxrss`` is KiB on Linux and bytes on macOS; normalize to KiB.
    """
    if resource is None:  # pragma: no cover - non-POSIX hosts
        return None
    raw = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    import sys

    if sys.platform == "darwin":  # pragma: no cover - linux CI
        return raw // 1024
    return raw


class HandlerStats:
    """Accounting bucket for one handler key."""

    __slots__ = ("events", "total_time", "max_time", "max_label")

    def __init__(self) -> None:
        self.events = 0
        self.total_time = 0.0
        self.max_time = 0.0
        self.max_label = ""

    def as_dict(self) -> Dict[str, Any]:
        return {
            "events": self.events,
            "total_time": self.total_time,
            "max_time": self.max_time,
            "max_label": self.max_label,
        }


def handler_key(event: "Event") -> str:
    """Stable aggregation key for an event (label prefix or qualname)."""
    label = event.label
    if label:
        head, _, _ = label.partition(":")
        return head
    return getattr(event.fn, "__qualname__", repr(event.fn))


class SimProfiler:
    """Per-handler wall-clock accounting, attached via :meth:`attach`."""

    __slots__ = (
        "handlers",
        "events_fired",
        "total_time",
        "heap_high_water",
        "_first_fire",
        "_last_fire",
    )

    def __init__(self) -> None:
        self.handlers: Dict[str, HandlerStats] = {}
        self.events_fired = 0
        self.total_time = 0.0
        self.heap_high_water = 0
        self._first_fire: Optional[float] = None
        self._last_fire: Optional[float] = None

    # ------------------------------------------------------------------
    def attach(self, sim: "Simulator") -> "SimProfiler":
        """Install on a simulator; returns self for chaining."""
        sim.profiler = self
        return self

    @staticmethod
    def detach(sim: "Simulator") -> None:
        sim.profiler = None

    # ------------------------------------------------------------------
    def fire(self, event: "Event") -> None:
        """Dispatch ``event`` under timing (called by the kernel loop)."""
        key = handler_key(event)
        t0 = time.perf_counter()
        if self._first_fire is None:
            self._first_fire = t0
        try:
            event.fire()
        finally:
            t1 = time.perf_counter()
            self._last_fire = t1
            dt = t1 - t0
            stats = self.handlers.get(key)
            if stats is None:
                stats = self.handlers[key] = HandlerStats()
            stats.events += 1
            stats.total_time += dt
            if dt > stats.max_time:
                stats.max_time = dt
                stats.max_label = event.label
            self.events_fired += 1
            self.total_time += dt

    def note_heap_depth(self, depth: int) -> None:
        """Called by the kernel on every push; keeps the high-water mark."""
        if depth > self.heap_high_water:
            self.heap_high_water = depth

    # ------------------------------------------------------------------
    @property
    def wall_elapsed(self) -> float:
        """Host seconds between the first and last dispatch."""
        if self._first_fire is None or self._last_fire is None:
            return 0.0
        return self._last_fire - self._first_fire

    def events_per_sec(self) -> float:
        """Dispatch throughput over the whole profiled run."""
        elapsed = self.wall_elapsed
        if elapsed <= 0.0:
            return 0.0
        return self.events_fired / elapsed

    def hot_handlers(self, limit: int = 10) -> list:
        """``(key, HandlerStats)`` pairs, most cumulative host time first."""
        ranked = sorted(
            self.handlers.items(),
            key=lambda kv: (-kv[1].total_time, kv[0]),
        )
        return ranked[:limit]

    def snapshot(self) -> Dict[str, Any]:
        """JSON-able summary for ``RunResult.extra['profile']``."""
        return {
            "events_fired": self.events_fired,
            "total_handler_time": self.total_time,
            "wall_elapsed": self.wall_elapsed,
            "events_per_sec": self.events_per_sec(),
            "heap_high_water": self.heap_high_water,
            "peak_rss_kb": peak_rss_kb(),
            "handlers": {
                key: stats.as_dict() for key, stats in self.handlers.items()
            },
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SimProfiler(events={self.events_fired}, "
            f"handlers={len(self.handlers)}, "
            f"heap_high_water={self.heap_high_water})"
        )
