"""Recovery driver for optimistic logging.

The crashed process replays its asynchronously-logged prefix locally,
then broadcasts a *rollback announcement* carrying how far it got.  Any
process whose dependency vector reaches past that point is an orphan:
it durably truncates its own log and rolls itself back, announcing in
turn (the cascade Strom & Yemini's protocol bounds).  This is the
"potential for processes that survive failures to become orphans" the
paper cites as the cost of optimism.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.net.network import Message
from repro.recovery.base import RecoveryManager


class OptimisticRecovery(RecoveryManager):
    """Local replay + rollback announcements + orphan cascades."""

    name = "optimistic"

    def begin_recovery(self) -> None:
        self.begin_epoch(self.node.incarnation)
        self.node.mark_replay_start()
        self.trace("local_replay")
        self.node.protocol.begin_replay([])

    def on_replay_complete(self) -> None:
        self.trace(
            "complete",
            recovered_count=self.node.app.delivered_count,
            epoch=self.epoch,
        )
        self.broadcast_control(
            self.peers,
            "rollback_announce",
            {
                "incarnation": self.node.incarnation,
                "recovered_count": self.node.app.delivered_count,
            },
            body_bytes=24,
        )
        self.epoch = 0
        self.node.complete_recovery()

    def on_control(self, msg: Message) -> None:
        if msg.mtype == "bound_gossip":
            self._on_bound_gossip(msg)
            return
        if msg.mtype != "rollback_announce":
            return
        if self.stale_epoch(msg):
            return
        peer = msg.src
        peer_inc = msg.payload["incarnation"]
        bound = msg.payload["recovered_count"]
        current = self.node.incvector.get(peer, 0)
        self.node.incvector[peer] = max(current, peer_inc)
        protocol = self.node.protocol
        protocol.note_recovery_bound(peer, peer_inc, bound)
        if self.node.is_recovering:
            protocol.note_constraint(peer, peer_inc, bound)
            return
        if protocol.is_orphan_of(peer, peer_inc, bound):
            protocol.rollback_as_orphan(peer, peer_inc, bound)
        else:
            protocol.on_peer_recovered(peer)
        # Gossip every bound we know back to the announcer: it may have
        # crashed past announcements whose durable record it never made.
        bounds = [
            [p, inc, b] for p, (inc, b) in protocol._recovery_bounds.items()
        ]
        if bounds:
            self.send_control(
                peer, "bound_gossip", {"bounds": bounds}, body_bytes=8 + 16 * len(bounds)
            )

    def _on_bound_gossip(self, msg: Message) -> None:
        protocol = self.node.protocol
        for peer, peer_inc, bound in msg.payload["bounds"]:
            protocol.note_recovery_bound(peer, peer_inc, bound)
            if self.node.is_recovering:
                protocol.note_constraint(peer, peer_inc, bound)
            elif peer != self.node.node_id and protocol.is_orphan_of(
                peer, peer_inc, bound
            ):
                protocol.rollback_as_orphan(peer, peer_inc, bound)
