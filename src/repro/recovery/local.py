"""Purely local recovery, for pessimistic (receiver-based) logging.

Pessimistic protocols buy trivially simple recovery with expensive
failure-free operation: because every message is synchronously logged to
stable storage *before* delivery, a recovering process needs nothing
from anyone -- it restores its checkpoint, replays its own stable log,
and announces completion so that senders can retransmit whatever was in
flight when it crashed.  No other process blocks or participates.

The checkpoint restore that precedes this manager is charged by the
:class:`~repro.storage.checkpoint.CheckpointStore`: one full-image read
in the seed's flat model, or -- under incremental checkpointing -- one
read per chain segment (full + deltas), which is why the restore phase
of the critical path grows with the delta chain and why periodic full
checkpoints bound it.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.net.network import Message
from repro.recovery.base import RecoveryManager


class LocalRecovery(RecoveryManager):
    """Recovery that involves no process other than the crashed one."""

    name = "local"

    def begin_recovery(self) -> None:
        """Everything needed is already local (loaded by restore_stable)."""
        self.begin_epoch(self.node.incarnation)
        self.node.mark_replay_start()
        self.trace("local_replay")
        self.node.protocol.begin_replay([])

    def on_replay_complete(self) -> None:
        self.trace("complete", epoch=self.epoch)
        self.broadcast_control(
            self.peers,
            "recovery_complete",
            {"incarnation": self.node.incarnation},
            body_bytes=16,
        )
        self.epoch = 0
        self.node.complete_recovery()

    def on_control(self, msg: Message) -> None:
        if msg.mtype == "recovery_complete":
            if self.stale_epoch(msg):
                return
            current = self.node.incvector.get(msg.src, 0)
            self.node.incvector[msg.src] = max(current, msg.payload["incarnation"])
            self.node.protocol.on_peer_recovered(msg.src)
