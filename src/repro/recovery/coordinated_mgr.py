"""Recovery driver for coordinated checkpointing.

Any single failure rolls the *whole system* back: the restarted process
queries every live peer for its latest durable snapshot round and its
epoch, picks the minimum round (the last line everyone has) and a fresh
epoch, and broadcasts the rollback.  Every process -- failed or not --
then stalls through a full stable-storage restore and loses all work
since the snapshot.  This maximal intrusion is the foil for the paper's
non-blocking algorithm in experiment E7.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Set

from repro.net.network import Message
from repro.recovery.base import RecoveryManager


class CoordinatedRecovery(RecoveryManager):
    """Global rollback to the last committed snapshot round."""

    name = "coordinated"

    def __init__(self) -> None:
        super().__init__()
        self._collecting = False
        self._expected: Set[int] = set()
        self._replies: Dict[int, Dict[str, Any]] = {}
        #: highest rollback epoch observed anywhere; guarantees that two
        #: overlapping rollbacks pick strictly increasing epochs
        self._max_seen_epoch = 0
        #: a rollback broadcast that arrived while we were recovering:
        #: adopted right after our own rollback applies
        self._pending_rollback: Optional[Dict[str, int]] = None

    def on_crash(self) -> None:
        super().on_crash()
        self._collecting = False
        self._expected.clear()
        self._replies.clear()
        self._pending_rollback = None

    # ------------------------------------------------------------------
    # recovering side
    # ------------------------------------------------------------------
    def begin_recovery(self) -> None:
        # recovery epoch (distinct from the protocol's *rollback* epoch):
        # the incarnation counter, strictly monotone across episodes
        self.begin_epoch(self.node.incarnation)
        self._collecting = True
        self._replies.clear()
        self._expected = {
            p for p in self.peers if not self.node.detector.is_suspected(p)
        }
        self.trace("rollback_query", expected=sorted(self._expected))
        self.broadcast_control(self.peers, "rollback_query", body_bytes=8)
        self._check_replies()

    def _check_replies(self) -> None:
        if not self._collecting:
            return
        if any(p not in self._replies for p in self._expected):
            return
        self._collecting = False
        rounds = [r["committed_round"] for r in self._replies.values()]
        rounds.append(self.node.protocol.committed_round)
        epochs = [r["rollback_epoch"] for r in self._replies.values()]
        epochs.append(self.node.protocol.epoch)
        epochs.append(self._max_seen_epoch)
        target = min(rounds)
        new_epoch = max(epochs) + 1
        self._max_seen_epoch = new_epoch
        self.trace("rollback_decision", round=target, rollback_epoch=new_epoch,
                   epoch=self.epoch)
        # NB the *recovery* epoch rides along under "epoch" (injected by
        # send_control); the rollback generation is "rollback_epoch"
        self.broadcast_control(
            self.peers,
            "rollback",
            {"round": target, "rollback_epoch": new_epoch},
            body_bytes=16,
        )
        self.node.mark_replay_start()
        self.node.protocol.rollback_to_round(target, new_epoch, self._rolled_back)

    def _rolled_back(self) -> None:
        pending = self._pending_rollback
        if pending is not None and pending["epoch"] > self.node.protocol.epoch:
            # another failure's rollback superseded ours mid-recovery;
            # adopt it before going live
            self._pending_rollback = None
            self.trace("adopt_rollback", **pending)
            self.node.protocol.rollback_to_round(
                pending["round"], pending["epoch"], self._rolled_back
            )
            return
        self._pending_rollback = None
        self.trace(
            "complete", delivered=self.node.app.delivered_count, epoch=self.epoch
        )
        self.epoch = 0
        self.node.complete_recovery()

    # ------------------------------------------------------------------
    # control messages
    # ------------------------------------------------------------------
    def on_control(self, msg: Message) -> None:
        if msg.mtype == "rollback_query":
            if self.stale_epoch(msg):
                return  # query from a dead recovery episode
            # report the highest epoch *seen*, not merely applied: another
            # rollback may still be reloading state when this query lands,
            # and the decider must pick a strictly newer epoch
            self.send_control(
                msg.src,
                "rollback_reply",
                {
                    "committed_round": self.node.protocol.committed_round,
                    "epoch": (msg.payload or {}).get("epoch", 0),
                    "rollback_epoch": max(
                        self.node.protocol.epoch, self._max_seen_epoch
                    ),
                },
                body_bytes=16,
            )
        elif msg.mtype == "rollback_reply":
            if self.stale_epoch(msg, expected=self.epoch):
                return  # reply to a dead episode's query
            self._max_seen_epoch = max(
                self._max_seen_epoch, msg.payload["rollback_epoch"]
            )
            if self._collecting:
                self._replies[msg.src] = msg.payload
                self._check_replies()
        elif msg.mtype == "rollback":
            if self.stale_epoch(msg):
                return  # a dead episode's rollback decision
            rollback_epoch = msg.payload["rollback_epoch"]
            self._max_seen_epoch = max(self._max_seen_epoch, rollback_epoch)
            if self.node.is_recovering:
                pending = {
                    "round": msg.payload["round"],
                    "epoch": rollback_epoch,
                }
                if (
                    self._pending_rollback is None
                    or pending["epoch"] > self._pending_rollback["epoch"]
                ):
                    self._pending_rollback = pending
            elif rollback_epoch > self.node.protocol.epoch:
                self.node.protocol.rollback_to_round(
                    msg.payload["round"], rollback_epoch, lambda: None
                )

    # ------------------------------------------------------------------
    def on_peer_status(self, node_id: int, status: str) -> None:
        if status == "down":
            if self._collecting:
                self._expected.discard(node_id)
                self._check_replies()
            elif self.node.is_live:
                # a failure aborts any snapshot round in progress
                self.node.protocol.abort_round()

