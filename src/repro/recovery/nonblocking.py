"""The paper's new non-blocking recovery algorithm (Section 3).

The algorithm, from Section 3.4 (steps 1-3 run at every recovering
process; 4-6 at the leader)::

    1. Restore state;
    2. incarnation <- incarnation + 1;
    3. ord <- ord + 1;
    4. for each process q in R do incvector[q] <- q.incarnation;
    5. for each process q in L do
           if q failed then goto 4;
           depinfo <- q.depinfo; q.incvector <- incvector;
    6. for each process q in R do q.depinfo <- depinfo;

Key properties reproduced here:

* **Live processes never block** and never refuse application messages;
  their only duty is a single in-memory ``depinfo`` reply (no stable
  storage write).
* Each live process learns the leader's ``incvector`` with the request
  and thereafter rejects stale messages from pre-failure incarnations,
  so the gathered snapshot stays consistent.
* **If the leader fails, the next process in ordinal order takes over**
  (the deterministic ``CanLead`` predicate: the unserved member of R
  holding the minimum unserved ordinal).

On top of the paper's algorithm this implementation makes recovery
robust under *churn* (view-change machinery in the style of
viewstamped-replication recovery):

* Every episode runs under a **recovery epoch** (the sequencer-granted
  ordinal, system-wide monotone); all control messages carry it and
  stale-epoch messages are dropped, so a dead episode can never corrupt
  a later one.
* The leader **persists per-round gather progress** at the never-failing
  sequencer (round number, the gathered incvector, each depinfo reply
  as it arrives).  A leader failure triggers a **handoff**: the
  successor fetches the persisted state and *resumes the round from the
  last completed phase* instead of restarting from scratch.
* A live process failing before its reply **invalidates only the reply
  it owed**: the leader discards that one entry, waits for the failed
  process to rejoin R (absorbing its fresh incarnation from the join
  announcement), and keeps every other reply -- the paper's literal
  ``goto 4`` is only taken when the incarnation phase itself is
  incomplete.

:class:`RestartingNonblockingRecovery` (``nonblocking-restart``) keeps
the original restart-from-scratch behaviour for old-vs-new degradation
comparisons.

The price is extra control messages (ordinal round-trip, incarnation
round, depinfo round per restart, distribution, progress posts) --
which is precisely the trade the paper argues has become cheap.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set

from repro.net.network import Message
from repro.recovery.base import RecoveryManager
from repro.sim.timers import PeriodicTimer

#: How often a waiting (non-leader) recovering process refreshes the
#: sequencer's active-recovery view.  Pure fallback against lost
#: completion announcements; does not affect the measured experiments.
STATUS_POLL_INTERVAL = 0.25


class NonblockingRecovery(RecoveryManager):
    """Leader-based, non-blocking recovery for the FBL family."""

    name = "nonblocking"

    #: resume rounds across leader failures (view-change handoff) and
    #: absorb member churn without voiding the round; the
    #: ``nonblocking-restart`` subclass turns this off to recover the
    #: paper's literal restart-everything behaviour
    resumable = True

    def __init__(self) -> None:
        super().__init__()
        self.ord: Optional[int] = None
        self.role = "idle"  # idle | acquiring | waiting | leader
        self.phase = None  # leader: fetch | inc | depinfo | distribute
        #: node -> {"ord": int, "incarnation": Optional[int]}
        self.known_recovering: Dict[int, Dict[str, Any]] = {}
        self._gather_round = 0
        self.gather_restarts = 0
        self.leader_handoffs = 0
        self.rounds_resumed = 0
        self.reply_invalidations = 0
        self._inc_replies: Dict[int, int] = {}
        self._depinfo_expected: Set[int] = set()
        self._depinfo_replies: Dict[int, List[Any]] = {}
        self._incvector: Dict[int, int] = {}
        self._poll_timer: Optional[PeriodicTimer] = None
        self._round_span: Optional[int] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def on_crash(self) -> None:
        super().on_crash()
        self._stop_poll()
        if self._round_span is not None:
            self.node.trace.spans.end(
                self._round_span, self.node.sim.now, aborted=True
            )
            self._round_span = None
        self.ord = None
        self.role = "idle"
        self.phase = None
        self.known_recovering.clear()
        self._inc_replies.clear()
        self._depinfo_expected.clear()
        self._depinfo_replies.clear()
        self._incvector.clear()

    def begin_recovery(self) -> None:
        """Step 3: acquire the system-wide ordinal."""
        self.role = "acquiring"
        self.trace("ord_request")
        self.send_control(self.node.config.sequencer_id, "ord_request", body_bytes=8)

    # ------------------------------------------------------------------
    # control messages
    # ------------------------------------------------------------------
    def on_control(self, msg: Message) -> None:
        handler = getattr(self, f"_on_{msg.mtype}", None)
        if handler is not None:
            handler(msg)

    def _on_ord_reply(self, msg: Message) -> None:
        if self.role != "acquiring":
            return
        self.ord = msg.payload["ord"]
        # the ordinal is the episode's recovery epoch (already
        # system-wide monotone)
        self.begin_epoch(msg.payload.get("epoch", self.ord))
        for peer, entry in msg.payload["active"].items():
            if peer != self.node.node_id:
                self.known_recovering.setdefault(
                    peer,
                    {
                        "ord": entry["ord"],
                        "incarnation": None,
                        "served": entry["served"],
                    },
                )
        self.known_recovering[self.node.node_id] = {
            "ord": self.ord,
            "incarnation": self.node.incarnation,
            "served": False,
        }
        self.role = "waiting"
        self.trace("ord_acquired", ord=self.ord, epoch=self.epoch)
        self.broadcast_control(
            self.peers,
            "join_recovery",
            {"ord": self.ord, "incarnation": self.node.incarnation},
            body_bytes=16,
        )
        self._evaluate_leadership()
        if self.role == "waiting":
            self._start_poll()

    def _on_join_recovery(self, msg: Message) -> None:
        if self.stale_epoch(msg):
            return
        self.known_recovering[msg.src] = {
            "ord": msg.payload["ord"],
            "incarnation": msg.payload["incarnation"],
            "served": False,
        }
        if self.node.is_recovering:
            # a sender we may be waiting on is reachable again
            self.node.protocol.request_retransmissions_from(msg.src)
        if self.role == "leader" and self.phase in ("inc", "depinfo"):
            if self.resumable and self.phase == "depinfo":
                # A process we were waiting on has come back: absorb it
                # into R without voiding the round.
                self._absorb_member(msg.src, msg.payload["incarnation"])
            else:
                # The paper's goto 4: absorb it into R and redo the
                # gather.
                self._restart_gather("join")
        elif self.role == "waiting":
            self._evaluate_leadership()

    def _on_inc_request(self, msg: Message) -> None:
        if self.stale_epoch(msg):
            return
        if self.node.is_recovering:
            self.send_control(
                msg.src,
                "inc_reply",
                {
                    "round": msg.payload["round"],
                    "epoch": msg.payload.get("epoch", 0),
                    "incarnation": self.node.incarnation,
                },
                body_bytes=16,
            )

    def _on_inc_reply(self, msg: Message) -> None:
        if self.role != "leader" or self.phase != "inc":
            return
        if self.stale_epoch(msg, expected=self.epoch):
            return
        if msg.payload["round"] != self._gather_round:
            return
        self._inc_replies[msg.src] = msg.payload["incarnation"]
        entry = self.known_recovering.get(msg.src)
        if entry is not None:
            entry["incarnation"] = msg.payload["incarnation"]
        self._check_inc_done()

    def _on_depinfo_request(self, msg: Message) -> None:
        """Live side of step 5: reply in memory, update incvector, go on.

        This is the entire intrusion the new algorithm imposes on a live
        process: build one reply from volatile state.  No blocking, no
        synchronous stable-storage write, no embargo on application
        messages.
        """
        if self.stale_epoch(msg):
            return
        self.trace("depinfo_request_received", leader=msg.src)
        for peer, inc in msg.payload["incvector"].items():
            current = self.node.incvector.get(peer, 0)
            self.node.incvector[peer] = max(current, inc)
        wire = self.node.protocol.local_depinfo_wire()
        # sent straight from volatile state, before any stable write: this
        # ordering IS the paper's no-blocking claim, so announce it
        self.trace("depinfo_reply_sent", leader=msg.src, determinants=len(wire))
        self.send_control(
            msg.src,
            "depinfo_reply",
            {
                "round": msg.payload["round"],
                "epoch": msg.payload.get("epoch", 0),
                "wire": wire,
            },
            body_bytes=32 * len(wire),
        )

    def _on_depinfo_reply(self, msg: Message) -> None:
        if self.role != "leader" or self.phase != "depinfo":
            return
        if self.stale_epoch(msg, expected=self.epoch):
            return
        if msg.payload["round"] != self._gather_round:
            return
        if msg.src in self._depinfo_expected:
            self._depinfo_replies[msg.src] = msg.payload["wire"]
            self._post_progress(depinfo={msg.src: msg.payload["wire"]})
            self.trace(
                "depinfo_reply_accepted",
                src=msg.src,
                round=self._gather_round,
                epoch=self.epoch,
            )
            self._check_depinfo_done()

    def _on_depinfo_distribute(self, msg: Message) -> None:
        """Step 6 at a non-leader member of R: take the snapshot, replay."""
        if self.stale_epoch(msg):
            return
        if not self.node.is_recovering or self.role not in ("waiting", "leader"):
            return
        mine = self.known_recovering.get(self.node.node_id)
        if mine is not None:
            if mine["served"]:
                return  # already replaying from an earlier distribution
            mine["served"] = True
        self._stop_poll()
        for peer, inc in msg.payload["incvector"].items():
            current = self.node.incvector.get(peer, 0)
            self.node.incvector[peer] = max(current, inc)
        self.node.mark_replay_start()
        self.trace("replay_handoff", leader=msg.src)
        self.node.protocol.begin_replay(msg.payload["wire"])

    def _on_recovery_complete(self, msg: Message) -> None:
        if self.stale_epoch(msg):
            return
        self.known_recovering.pop(msg.src, None)
        current = self.node.incvector.get(msg.src, 0)
        self.node.incvector[msg.src] = max(current, msg.payload["incarnation"])
        if self.node.is_recovering:
            self.node.protocol.request_retransmissions_from(msg.src)
        elif self.node.is_live:
            self.node.protocol.on_peer_recovered(msg.src)
        if self.role == "waiting":
            self._evaluate_leadership()

    def _on_leader_done(self, msg: Message) -> None:
        """The current leader finished its algorithm (distributed the
        depinfo); its recovery round no longer gates leadership.
        ``served`` maps peer -> the ordinal the leader served, so a late
        announcement from a dead round never retires a newer episode."""
        if self.stale_epoch(msg):
            return
        for peer, peer_ord in msg.payload["served"].items():
            if peer == self.node.node_id:
                # our own served flag means "depinfo in hand" and is set
                # only on actually receiving the distribution: if ours
                # was lost, staying unserved lets us take over as leader
                # and re-gather instead of waiting forever
                continue
            entry = self.known_recovering.get(peer)
            if entry is not None and entry["ord"] == peer_ord:
                entry["served"] = True
        if self.role == "waiting":
            self._evaluate_leadership()

    def _on_status_reply(self, msg: Message) -> None:
        if self.role != "waiting":
            return
        if self.stale_epoch(msg, expected=self.epoch):
            return
        active = msg.payload["active"]
        for peer in list(self.known_recovering):
            if peer != self.node.node_id and peer not in active:
                del self.known_recovering[peer]
        for peer, entry in active.items():
            if peer == self.node.node_id:
                continue  # own served flag is set by the distribute only
            known = self.known_recovering.get(peer)
            if known is not None and entry["served"]:
                known["served"] = True
        self._evaluate_leadership()

    def _on_gather_state_reply(self, msg: Message) -> None:
        """The persisted gather state arrived; hand off or start fresh."""
        if self.role != "leader" or self.phase != "fetch":
            return
        if self.stale_epoch(msg, expected=self.epoch):
            return
        mine = self.known_recovering.get(self.node.node_id)
        if mine is None or mine["served"]:
            return  # served by a concurrent leader while fetching
        state = msg.payload["gather"]
        if state is not None and self._adopt_gather(state):
            return
        self._start_gather()

    # ------------------------------------------------------------------
    # detector events
    # ------------------------------------------------------------------
    def on_peer_status(self, node_id: int, status: str) -> None:
        if status == "up":
            self.known_recovering.pop(node_id, None)
            if self.role == "waiting":
                self._evaluate_leadership()
            return
        # status == "down"
        if self.role == "leader":
            if self.phase == "depinfo" and node_id in self._depinfo_expected:
                if self.resumable:
                    # A live process failed before replying: only the
                    # reply it owed is invalidated.  It will rejoin R
                    # and is absorbed -- with its fresh incarnation --
                    # from its join announcement; distribution waits for
                    # that join (see _check_depinfo_done).
                    self._invalidate_reply(node_id, "live_failure")
                else:
                    # The paper's goto 4.
                    self._restart_gather("live_failure")
            elif self.phase == "depinfo" and node_id in self.known_recovering:
                if self.resumable:
                    # A member of R re-crashed mid-round; drop only its
                    # contribution -- it rejoins with a fresh ordinal.
                    self.known_recovering.pop(node_id, None)
                    self._inc_replies.pop(node_id, None)
                    self._invalidate_reply(node_id, "member_recrash")
            elif self.phase == "inc" and node_id in self.known_recovering:
                # A member of R re-crashed before answering; it will
                # rejoin with a fresh ordinal.
                self.known_recovering.pop(node_id, None)
                self._restart_gather("member_recrash")
            elif self.phase == "fetch" and node_id in self.known_recovering:
                self.known_recovering.pop(node_id, None)
        elif self.role == "waiting":
            entry = self.known_recovering.pop(node_id, None)
            if entry is not None:
                self._evaluate_leadership()

    # ------------------------------------------------------------------
    # leader machinery
    # ------------------------------------------------------------------
    def can_lead(self, candidate: int) -> bool:
        """The deterministic ``CanLead`` predicate.

        ``candidate`` may lead iff it is an *unserved* member of R and
        holds the minimum unserved ordinal among members this node does
        not currently consider failed (failed members are evicted from
        ``known_recovering`` by the detector, so the view converges and
        every node elects the same successor).
        """
        entry = self.known_recovering.get(candidate)
        if entry is None or entry["served"]:
            return False
        lowest = min(
            e["ord"] for e in self.known_recovering.values() if not e["served"]
        )
        return entry["ord"] == lowest

    def _evaluate_leadership(self) -> None:
        if self.ord is None or not self.node.is_recovering:
            return
        mine = self.known_recovering.get(self.node.node_id)
        if mine is None or mine["served"]:
            return  # already handed our depinfo; nothing to lead
        if self.can_lead(self.node.node_id) and self.role != "leader":
            self.role = "leader"
            self._stop_poll()
            episode = self.node.metrics.episode_of(self.node.node_id)
            if episode is not None:
                episode.was_leader = True
            self.trace("leader_elected", ord=self.ord, epoch=self.epoch)
            if self.resumable:
                # fetch any predecessor's persisted round before
                # gathering: a view-change handoff resumes it
                self.phase = "fetch"
                self.send_control(
                    self.node.config.sequencer_id,
                    "gather_state_request",
                    body_bytes=8,
                )
            else:
                self._start_gather()

    def _start_gather(self) -> None:
        """Step 4: collect fresh incarnations from every member of R."""
        self.phase = "inc"
        self._gather_round += 1
        self._inc_replies.clear()
        self._depinfo_replies.clear()
        self._depinfo_expected.clear()
        members = [p for p in self.known_recovering if p != self.node.node_id]
        self._begin_round_span(members)
        self.trace(
            "gather_start",
            round=self._gather_round,
            epoch=self.epoch,
            members=sorted(members),
        )
        for member in sorted(members):
            self.send_control(
                member, "inc_request", {"round": self._gather_round}, body_bytes=8
            )
        self._check_inc_done()

    def _begin_round_span(self, members: List[int], **attrs: Any) -> None:
        spans = self.node.trace.spans
        if not spans.enabled:
            return
        superseded = self._round_span
        if superseded is not None:
            spans.end(superseded, self.node.sim.now, restarted=True)
        self._round_span = spans.begin(
            "recovery.gather_round",
            self.node.node_id,
            self.node.sim.now,
            parent=self.node.episode_span(),
            links=(superseded,),
            round=self._gather_round,
            members=sorted(members),
            **attrs,
        )

    def _restart_gather(self, reason: str) -> None:
        self.gather_restarts += 1
        episode = self.node.metrics.episode_of(self.node.node_id)
        if episode is not None:
            episode.gather_restarts += 1
        self.trace("gather_restart", reason=reason)
        self._start_gather()

    def _invalidate_reply(self, node_id: int, reason: str) -> None:
        """Void only what the failed process owed this round."""
        self._depinfo_expected.discard(node_id)
        self._depinfo_replies.pop(node_id, None)
        self.reply_invalidations += 1
        episode = self.node.metrics.episode_of(self.node.node_id)
        if episode is not None:
            episode.reply_invalidations += 1
        self.trace(
            "reply_invalidated",
            peer=node_id,
            reason=reason,
            round=self._gather_round,
        )
        self._check_depinfo_done()

    def _absorb_member(self, peer: int, incarnation: int) -> None:
        """A (re)joined process becomes a member of R mid-round.

        Its fresh incarnation (carried by the join announcement) replaces
        its incvector entry, so no extra incarnation round is needed and
        the gather round is *not* restarted.
        """
        self._incvector[peer] = max(self._incvector.get(peer, 0), incarnation)
        current = self.node.incvector.get(peer, 0)
        self.node.incvector[peer] = max(current, incarnation)
        self._inc_replies[peer] = incarnation
        if peer in self._depinfo_expected:
            # it owed us a reply as a live process; that debt is void now
            self._depinfo_expected.discard(peer)
            self._depinfo_replies.pop(peer, None)
            self.reply_invalidations += 1
            episode = self.node.metrics.episode_of(self.node.node_id)
            if episode is not None:
                episode.reply_invalidations += 1
        self.trace(
            "member_absorbed",
            peer=peer,
            round=self._gather_round,
            epoch=self.epoch,
        )
        self._post_progress(incvector={peer: incarnation})
        self._check_depinfo_done()

    def _pending_failed(self) -> Set[int]:
        """Failed processes that have not yet announced their recovery.

        The leader cannot finish the incarnation phase (nor, in
        resumable mode, distribute) without them: it needs their *new*
        incarnation numbers for incvector.
        """
        suspected = self.node.detector.suspected_view()
        return {
            p
            for p in suspected
            if p in self.app_nodes
            and p not in self.known_recovering
            and p != self.node.node_id
        }

    def _check_inc_done(self) -> None:
        if self.phase != "inc":
            return
        if self._pending_failed():
            return  # wait for their join_recovery announcements
        members = [p for p in self.known_recovering if p != self.node.node_id]
        if any(p not in self._inc_replies for p in members):
            return
        # Build incvector over R (step 4 complete).
        self._incvector = {
            self.node.node_id: self.node.incarnation,
        }
        for member in members:
            self._incvector[member] = self._inc_replies[member]
        for peer, inc in self._incvector.items():
            current = self.node.incvector.get(peer, 0)
            self.node.incvector[peer] = max(current, inc)
        # persist the completed phase so a successor leader can resume
        # this round instead of redoing the incarnation collection
        self._post_progress(incvector=self._incvector)
        self._start_depinfo_phase()

    def _start_depinfo_phase(self) -> None:
        """Step 5: ask every live process for its depinfo."""
        self.phase = "depinfo"
        live = [
            p
            for p in self.peers
            if p not in self.known_recovering
            and not self.node.detector.is_suspected(p)
        ]
        self._depinfo_expected = set(live)
        self._depinfo_replies.clear()
        self.trace(
            "depinfo_phase", round=self._gather_round, epoch=self.epoch,
            live=sorted(live),
        )
        for peer in sorted(live):
            self.send_control(
                peer,
                "depinfo_request",
                {"round": self._gather_round, "incvector": dict(self._incvector)},
                body_bytes=16 + 8 * len(self._incvector),
            )
        self._check_depinfo_done()

    def _adopt_gather(self, state: Dict[str, Any]) -> bool:
        """View-change handoff: resume the dead leader's last round.

        Adoptable iff the persisted incarnation phase covers every
        current member of R (a member the dead leader never collected
        would need a fresh incarnation round anyway).  Replies persisted
        from peers that have since failed are invalidated; everything
        else -- the incvector and every reply already collected -- is
        kept, and only the missing replies are re-requested.
        """
        if state["epoch"] >= self.epoch:
            return False  # not a predecessor's state; never adopt
        members = [p for p in self.known_recovering if p != self.node.node_id]
        incvector = dict(state["incvector"])
        if not incvector:
            return False
        if any(p not in incvector for p in members):
            return False
        self.leader_handoffs += 1
        self.rounds_resumed += 1
        episode = self.node.metrics.episode_of(self.node.node_id)
        if episode is not None:
            episode.leader_handoffs += 1
            episode.rounds_resumed += 1
        self._gather_round = max(self._gather_round, state["round"])
        me = self.node.node_id
        incvector[me] = max(incvector.get(me, 0), self.node.incarnation)
        for peer in members:
            # our own membership view is at least as new as the dead
            # leader's: joins we witnessed refresh the adopted entries
            known_inc = self.known_recovering[peer].get("incarnation")
            if known_inc:
                incvector[peer] = max(incvector[peer], known_inc)
        self._incvector = incvector
        for peer, inc in incvector.items():
            current = self.node.incvector.get(peer, 0)
            self.node.incvector[peer] = max(current, inc)
        self._inc_replies = {p: incvector[p] for p in members}
        self.phase = "depinfo"
        live = [
            p
            for p in self.peers
            if p not in self.known_recovering
            and not self.node.detector.is_suspected(p)
        ]
        self._depinfo_expected = set(live)
        self._depinfo_replies = {
            p: wire
            for p, wire in state["depinfo"].items()
            if p in self._depinfo_expected
        }
        invalidated = sorted(
            p for p in state["depinfo"] if p not in self._depinfo_expected
        )
        self.reply_invalidations += len(invalidated)
        if episode is not None:
            episode.reply_invalidations += len(invalidated)
        self._begin_round_span(members, resumed=True, handoff=True)
        self.trace(
            "leader_handoff",
            epoch=self.epoch,
            from_epoch=state["epoch"],
            round=self._gather_round,
            adopted_replies=sorted(self._depinfo_replies),
            invalidated=invalidated,
        )
        # re-persist under our own epoch so a third leader could resume
        # from us in turn
        self._post_progress(
            incvector=self._incvector, depinfo=self._depinfo_replies
        )
        missing = sorted(
            p for p in live if p not in self._depinfo_replies
        )
        self.trace(
            "depinfo_phase", round=self._gather_round, epoch=self.epoch,
            live=sorted(live), resumed=True,
        )
        for peer in missing:
            self.send_control(
                peer,
                "depinfo_request",
                {"round": self._gather_round, "incvector": dict(self._incvector)},
                body_bytes=16 + 8 * len(self._incvector),
            )
        self._check_depinfo_done()
        return True

    def _post_progress(
        self,
        incvector: Optional[Dict[int, int]] = None,
        depinfo: Optional[Dict[int, List[Any]]] = None,
    ) -> None:
        """Persist gather progress at the sequencer (resumable mode)."""
        if not self.resumable:
            return
        incvector = dict(incvector or {})
        depinfo = dict(depinfo or {})
        wire_items = sum(len(wire) for wire in depinfo.values())
        self.send_control(
            self.node.config.sequencer_id,
            "gather_progress",
            {
                "round": self._gather_round,
                "incvector": incvector,
                "depinfo": depinfo,
            },
            body_bytes=16 + 8 * len(incvector) + 32 * wire_items,
        )

    def _check_depinfo_done(self) -> None:
        if self.phase != "depinfo":
            return
        if any(p not in self._depinfo_replies for p in self._depinfo_expected):
            return
        if self.resumable and self._pending_failed():
            # a process failed mid-round: wait for its join so its fresh
            # incarnation makes it into incvector (absorbed, not
            # restarted)
            return
        self._distribute()

    def _distribute(self) -> None:
        """Step 6: hand the merged snapshot to every member of R."""
        self.phase = "distribute"
        merged: Dict[tuple, tuple] = {}
        for wire in self._depinfo_replies.values():
            for item in wire:
                merged[tuple(item)] = tuple(item)
        for item in self.node.protocol.local_depinfo_wire():
            merged[tuple(item)] = tuple(item)
        merged_wire = sorted(merged.values())
        members = [
            p
            for p, entry in self.known_recovering.items()
            if p != self.node.node_id and not entry["served"]
        ]
        self.trace(
            "distribute",
            members=sorted(members),
            determinants=len(merged_wire),
            epoch=self.epoch,
            incvector=dict(self._incvector),
        )
        for member in sorted(members):
            self.send_control(
                member,
                "depinfo_distribute",
                {"wire": merged_wire, "incvector": dict(self._incvector)},
                body_bytes=32 * len(merged_wire),
            )
        # The recovery *algorithm* is now complete (step 6 done); replay
        # is local work.  Release the leadership critical section so the
        # next ordinal can run its own round (and regenerate any data our
        # replay may need from it).
        served = {}
        for peer in sorted(members) + [self.node.node_id]:
            entry = self.known_recovering.get(peer)
            if entry is not None:
                entry["served"] = True
                served[peer] = entry["ord"]
        self.broadcast_control(
            self.peers, "leader_done", {"served": dict(served)},
            body_bytes=8 + 8 * len(served),
        )
        self.send_control(
            self.node.config.sequencer_id,
            "leader_done",
            {"served": dict(served)},
            body_bytes=8 + 8 * len(served),
        )
        if self._round_span is not None:
            self.node.trace.spans.end(
                self._round_span, self.node.sim.now, determinants=len(merged_wire)
            )
            self._round_span = None
        self.node.mark_replay_start()
        self.node.protocol.begin_replay(merged_wire)

    # ------------------------------------------------------------------
    # completion
    # ------------------------------------------------------------------
    def on_replay_complete(self) -> None:
        self._stop_poll()
        self.trace("complete", ord=self.ord, epoch=self.epoch)
        payload = {"incarnation": self.node.incarnation}
        self.broadcast_control(self.peers, "recovery_complete", payload, body_bytes=16)
        self.send_control(
            self.node.config.sequencer_id, "recovery_complete", payload, body_bytes=16
        )
        self.known_recovering.pop(self.node.node_id, None)
        self.ord = None
        self.role = "idle"
        self.phase = None
        self.epoch = 0
        self.node.complete_recovery()

    # ------------------------------------------------------------------
    # waiting-state fallback poll
    # ------------------------------------------------------------------
    def _start_poll(self) -> None:
        if self._poll_timer is None:
            self._poll_timer = PeriodicTimer(
                self.node.sim,
                STATUS_POLL_INTERVAL,
                self._poll_sequencer,
                label=f"recovery-poll-{self.node.node_id}",
            )
            self._poll_timer.start()

    def _stop_poll(self) -> None:
        if self._poll_timer is not None:
            self._poll_timer.cancel()
            self._poll_timer = None

    def _poll_sequencer(self) -> None:
        if self.role == "waiting":
            self.send_control(
                self.node.config.sequencer_id, "ord_status_request", body_bytes=8
            )
        else:
            self._stop_poll()

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        stats = super().stats()
        stats.update(
            gather_restarts=self.gather_restarts,
            leader_handoffs=self.leader_handoffs,
            rounds_resumed=self.rounds_resumed,
            reply_invalidations=self.reply_invalidations,
        )
        return stats


class RestartingNonblockingRecovery(NonblockingRecovery):
    """The paper's literal restart-from-scratch variant.

    Identical control plane and epoch tagging, but no persisted gather
    progress and no view-change handoff: a leader failure starts the
    successor's gather from nothing, and *any* failure or join during a
    round voids the whole round (``goto 4``).  Kept as the "old" curve
    for the churn-degradation benchmarks (``--recovery
    nonblocking-restart``).
    """

    name = "nonblocking-restart"
    resumable = False
