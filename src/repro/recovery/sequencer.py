"""The ordinal service behind the paper's system-wide ``ord``.

Section 3.2 defines ``ord`` as "a system-wide monotonic number that is
incremented whenever a process starts recovery.  The process whose
recovery corresponds to the lowest value becomes the recovery leader."

A system-wide monotonic counter needs *some* agreed-upon home.  We model
it as a minimal never-failing service process -- the same device the
paper itself uses when it "model[s] stable storage as an additional
process that never fails or sends a message" for the ``f = n`` case.
The sequencer answers ``ord_request`` with a fresh ordinal plus the set
of recoveries currently in progress (so a newly recovering process can
tell whether an earlier-ordinal leader is active), and it retires
entries when it hears ``recovery_complete``.

The ordinal doubles as the episode's **recovery epoch**: it is already
system-wide monotone, so tagging every control message with it lets
receivers reject messages from dead episodes (see
:mod:`repro.recovery.base`).

The sequencer is also the stable home of **gather progress**: the
recovery leader posts its per-round state (round number, the gathered
incvector, each depinfo reply as it is collected) as ``gather_progress``
messages, and a successor leader fetches it with
``gather_state_request`` after a view change so it can *resume* the
round instead of restarting it.  Posts from a superseded leader epoch
are dropped (and traced) -- a dead leader cannot corrupt its
successor's round.

All its traffic is counted as recovery-control messages, so the extra
round-trips are charged against the new algorithm's communication
budget.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.net.network import Message, MessageKind, Network
from repro.sim.kernel import Simulator
from repro.sim.trace import TraceRecorder


class Sequencer:
    """Never-failing ordinal service.  Lives at node id ``n``."""

    def __init__(
        self,
        node_id: int,
        sim: Simulator,
        network: Network,
        trace: TraceRecorder,
    ) -> None:
        self.node_id = node_id
        self.sim = sim
        self.network = network
        self.trace = trace
        self._next_ord = 1
        #: node -> {"ord": int, "served": bool} for recoveries in progress;
        #: the ordinal is also the episode's recovery epoch
        self.active: Dict[int, Dict] = {}
        #: persisted progress of the current leader's gather round:
        #: {"leader", "epoch", "round", "incvector", "depinfo": {peer: wire}}
        self.gather: Optional[Dict[str, Any]] = None
        #: stale posts refused (dead-epoch leaders); for tests/metrics
        self.stale_epoch_drops = 0

    def start(self) -> None:
        """Register on the network."""
        self.network.register(self.node_id, self.receive)

    # ------------------------------------------------------------------
    def receive(self, msg: Message) -> None:
        if msg.mtype == "ord_request":
            self._on_ord_request(msg)
        elif msg.mtype == "ord_status_request":
            self._on_status_request(msg)
        elif msg.mtype == "gather_progress":
            self._on_gather_progress(msg)
        elif msg.mtype == "gather_state_request":
            self._on_gather_state_request(msg)
        elif msg.mtype == "leader_done":
            if self._superseded(msg):
                return
            # ``served`` maps peer -> the ordinal the leader served, so a
            # late announcement from a dead round can never retire a
            # peer's *newer* episode
            for peer, peer_ord in msg.payload["served"].items():
                entry = self.active.get(peer)
                if entry is not None and entry["ord"] == peer_ord:
                    entry["served"] = True
            if (
                self.gather is not None
                and self.gather["epoch"] == msg.payload.get("epoch", 0)
            ):
                self.gather = None  # the round completed; nothing to resume
        elif msg.mtype == "recovery_complete":
            if self._superseded(msg):
                return
            self.active.pop(msg.src, None)
            if not self.active:
                self.gather = None
        # anything else is ignored; the sequencer never initiates traffic
        # other than replies

    def _superseded(self, msg: Message) -> bool:
        """Drop traffic from an episode the sender has since superseded.

        An absent entry (the episode retired cleanly) is *not* stale:
        late duplicates of a finished episode's announcements are
        idempotent no-ops, and per-peer ordinal matching already keeps
        them from touching newer state.
        """
        entry = self.active.get(msg.src)
        epoch = (msg.payload or {}).get("epoch", 0)
        if entry is None or epoch == entry["ord"]:
            return False
        self._drop(msg, epoch, entry["ord"])
        return True

    def _stale(self, msg: Message) -> bool:
        """Drop leader traffic that does not match the sender's grant."""
        entry = self.active.get(msg.src)
        epoch = (msg.payload or {}).get("epoch", 0)
        if entry is not None and epoch == entry["ord"]:
            return False
        self._drop(msg, epoch, entry["ord"] if entry is not None else None)
        return True

    def _drop(self, msg: Message, epoch: int, expected: Optional[int]) -> None:
        self.stale_epoch_drops += 1
        self.trace.record(
            self.sim.now, "sequencer", self.node_id, "stale_epoch_drop",
            src=msg.src, mtype=msg.mtype, epoch=epoch, expected=expected,
        )

    def _on_ord_request(self, msg: Message) -> None:
        # A process that re-crashes during recovery requests a fresh ord;
        # its stale entry is superseded.
        ord_value = self._next_ord
        self._next_ord += 1
        self.active[msg.src] = {"ord": ord_value, "served": False}
        self.trace.record(
            self.sim.now, "sequencer", self.node_id, "ord_granted",
            requester=msg.src, ord=ord_value,
        )
        self._reply(
            msg.src,
            "ord_reply",
            {
                "ord": ord_value,
                "epoch": ord_value,
                "active": {k: dict(v) for k, v in self.active.items()},
            },
            body_bytes=24 + 8 * len(self.active),
        )

    def _on_status_request(self, msg: Message) -> None:
        self._reply(
            msg.src,
            "status_reply",
            {
                "epoch": (msg.payload or {}).get("epoch", 0),
                "active": {k: dict(v) for k, v in self.active.items()},
            },
            body_bytes=8 + 8 * len(self.active),
        )

    # ------------------------------------------------------------------
    # persisted gather progress (view-change handoff support)
    # ------------------------------------------------------------------
    def _on_gather_progress(self, msg: Message) -> None:
        if self._stale(msg):
            return
        entry = self.active.get(msg.src)
        if entry is not None and entry["served"]:
            # the round already announced leader_done; a late progress
            # post must not resurrect its state for a future leader
            self._drop(msg, (msg.payload or {}).get("epoch", 0), entry["ord"])
            return
        payload = msg.payload
        epoch, round_id = payload["epoch"], payload["round"]
        state = self.gather
        if state is not None and epoch < state["epoch"]:
            # a post from a superseded leader raced in after the handoff
            self._drop(msg, epoch, state["epoch"])
            return
        if state is None or epoch > state["epoch"] or round_id > state["round"]:
            state = self.gather = {
                "leader": msg.src,
                "epoch": epoch,
                "round": round_id,
                "incvector": {},
                "depinfo": {},
            }
        for peer, inc in payload.get("incvector", {}).items():
            state["incvector"][peer] = max(state["incvector"].get(peer, 0), inc)
        for peer, wire in payload.get("depinfo", {}).items():
            state["depinfo"][peer] = wire
        self.trace.record(
            self.sim.now, "sequencer", self.node_id, "gather_progress",
            leader=msg.src, epoch=epoch, round=round_id,
            replies=len(state["depinfo"]),
        )

    def _on_gather_state_request(self, msg: Message) -> None:
        state = self.gather
        replies = len(state["depinfo"]) if state is not None else 0
        self._reply(
            msg.src,
            "gather_state_reply",
            {
                "epoch": (msg.payload or {}).get("epoch", 0),
                "gather": {k: _copy_state(v) for k, v in state.items()}
                if state is not None
                else None,
            },
            body_bytes=16 + 32 * replies,
        )

    # ------------------------------------------------------------------
    def _reply(self, dst: int, mtype: str, payload: Dict, body_bytes: int) -> None:
        self.network.send(
            Message(
                src=self.node_id,
                dst=dst,
                kind=MessageKind.RECOVERY,
                mtype=mtype,
                payload=payload,
                body_bytes=body_bytes,
            )
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Sequencer(next={self._next_ord}, active={self.active})"


def _copy_state(value: Any) -> Any:
    """Shallow-copy one gather-state field for the reply payload."""
    return dict(value) if isinstance(value, dict) else value
