"""The ordinal service behind the paper's system-wide ``ord``.

Section 3.2 defines ``ord`` as "a system-wide monotonic number that is
incremented whenever a process starts recovery.  The process whose
recovery corresponds to the lowest value becomes the recovery leader."

A system-wide monotonic counter needs *some* agreed-upon home.  We model
it as a minimal never-failing service process -- the same device the
paper itself uses when it "model[s] stable storage as an additional
process that never fails or sends a message" for the ``f = n`` case.
The sequencer answers ``ord_request`` with a fresh ordinal plus the set
of recoveries currently in progress (so a newly recovering process can
tell whether an earlier-ordinal leader is active), and it retires
entries when it hears ``recovery_complete``.

All its traffic is counted as recovery-control messages, so the extra
round-trip is charged against the new algorithm's communication budget.
"""

from __future__ import annotations

from typing import Dict

from repro.net.network import Message, MessageKind, Network
from repro.sim.kernel import Simulator
from repro.sim.trace import TraceRecorder


class Sequencer:
    """Never-failing ordinal service.  Lives at node id ``n``."""

    def __init__(
        self,
        node_id: int,
        sim: Simulator,
        network: Network,
        trace: TraceRecorder,
    ) -> None:
        self.node_id = node_id
        self.sim = sim
        self.network = network
        self.trace = trace
        self._next_ord = 1
        #: node -> {"ord": int, "served": bool} for recoveries in progress
        self.active: Dict[int, Dict] = {}

    def start(self) -> None:
        """Register on the network."""
        self.network.register(self.node_id, self.receive)

    # ------------------------------------------------------------------
    def receive(self, msg: Message) -> None:
        if msg.mtype == "ord_request":
            self._on_ord_request(msg)
        elif msg.mtype == "ord_status_request":
            self._on_status_request(msg)
        elif msg.mtype == "leader_done":
            for peer in msg.payload["served"]:
                if peer in self.active:
                    self.active[peer]["served"] = True
        elif msg.mtype == "recovery_complete":
            self.active.pop(msg.src, None)
        # anything else is ignored; the sequencer never initiates traffic
        # other than ord replies

    def _on_ord_request(self, msg: Message) -> None:
        # A process that re-crashes during recovery requests a fresh ord;
        # its stale entry is superseded.
        ord_value = self._next_ord
        self._next_ord += 1
        self.active[msg.src] = {"ord": ord_value, "served": False}
        self.trace.record(
            self.sim.now, "sequencer", self.node_id, "ord_granted",
            requester=msg.src, ord=ord_value,
        )
        self.network.send(
            Message(
                src=self.node_id,
                dst=msg.src,
                kind=MessageKind.RECOVERY,
                mtype="ord_reply",
                payload={"ord": ord_value, "active": {k: dict(v) for k, v in self.active.items()}},
                body_bytes=16 + 8 * len(self.active),
            )
        )

    def _on_status_request(self, msg: Message) -> None:
        self.network.send(
            Message(
                src=self.node_id,
                dst=msg.src,
                kind=MessageKind.RECOVERY,
                mtype="status_reply",
                payload={"active": {k: dict(v) for k, v in self.active.items()}},
                body_bytes=8 + 8 * len(self.active),
            )
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Sequencer(next={self._next_ord}, active={self.active})"
