"""Recovery manager interface and shared helpers."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Dict, Iterable, List, Optional

from repro.net.network import Message, MessageKind


class RecoveryManager(ABC):
    """Per-node driver of the recovery algorithm.

    The node calls :meth:`begin_recovery` once its checkpoint (and any
    protocol stable state) has been reloaded after a crash; the manager
    runs its algorithm, eventually hands the gathered ``depinfo`` to
    ``node.protocol.begin_replay``, and the protocol calls back
    :meth:`on_replay_complete` when the pre-crash state is rebuilt.

    The same object also implements the *live-side* behaviour: how this
    node reacts to other processes' recoveries (this is where blocking
    and non-blocking differ).
    """

    name: str = "abstract"

    def __init__(self) -> None:
        self.node = None  # set by attach()

    def attach(self, node: "Node") -> None:
        """Bind to the owning node.  Called once at system build."""
        self.node = node

    # -- helpers ----------------------------------------------------------
    @property
    def app_nodes(self) -> List[int]:
        """All application node ids (excludes the sequencer)."""
        return list(range(self.node.config.n))

    @property
    def peers(self) -> List[int]:
        """Every application node except this one."""
        return [p for p in self.app_nodes if p != self.node.node_id]

    def send_control(
        self,
        dst: int,
        mtype: str,
        payload: Optional[Dict[str, Any]] = None,
        body_bytes: int = 32,
    ) -> None:
        """Send one recovery-class control message."""
        node = self.node
        node.network.send(
            Message(
                src=node.node_id,
                dst=dst,
                kind=MessageKind.RECOVERY,
                mtype=mtype,
                payload=payload or {},
                body_bytes=body_bytes,
                incarnation=node.incarnation,
            )
        )

    def broadcast_control(
        self,
        dsts: Iterable[int],
        mtype: str,
        payload: Optional[Dict[str, Any]] = None,
        body_bytes: int = 32,
    ) -> None:
        """Send the same recovery control message to several peers."""
        for dst in sorted(set(dsts)):
            if dst != self.node.node_id:
                self.send_control(dst, mtype, dict(payload or {}), body_bytes)

    def trace(self, action: str, **details: Any) -> None:
        """Record a recovery-category trace event for this node."""
        node = self.node
        node.trace.record(node.sim.now, "recovery", node.node_id, action, **details)

    # -- lifecycle ----------------------------------------------------------
    def on_crash(self) -> None:
        """This node crashed; drop any in-progress recovery state."""

    @abstractmethod
    def begin_recovery(self) -> None:
        """Checkpoint restored; run the recovery algorithm."""

    def on_replay_complete(self) -> None:
        """The protocol finished replaying; default: done immediately."""
        self.node.complete_recovery()

    # -- events ----------------------------------------------------------
    def on_control(self, msg: Message) -> None:
        """A recovery-class control message arrived."""

    def on_peer_status(self, node_id: int, status: str) -> None:
        """The failure detector reported ``node_id`` as "down" or "up"."""

    # -- accounting ---------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """Manager-specific counters for the run summary."""
        return {}
