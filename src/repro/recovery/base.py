"""Recovery manager interface and shared helpers.

Every recovery **episode** runs under a *recovery epoch*: an integer
that strictly increases across a node's episodes (the non-blocking
manager uses the sequencer-granted ordinal, which is system-wide
monotone; the others use the incarnation counter, which is per-node
monotone).  All recovery control messages carry the sender's epoch --
:meth:`send_control` injects it automatically unless the caller tagged
the payload with the conversation's epoch explicitly (replies echo the
request's epoch).  Receivers reject messages from dead epochs with
:meth:`stale_epoch`, which traces every drop so the online sanitizer
(``recovery-epoch`` invariant) can audit the discipline: no control
message from epoch *e* may be acted on in epoch *e' > e*.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Dict, Iterable, List, Optional

from repro.net.network import Message, MessageKind


class RecoveryManager(ABC):
    """Per-node driver of the recovery algorithm.

    The node calls :meth:`begin_recovery` once its checkpoint (and any
    protocol stable state) has been reloaded after a crash; the manager
    runs its algorithm, eventually hands the gathered ``depinfo`` to
    ``node.protocol.begin_replay``, and the protocol calls back
    :meth:`on_replay_complete` when the pre-crash state is rebuilt.

    The same object also implements the *live-side* behaviour: how this
    node reacts to other processes' recoveries (this is where blocking
    and non-blocking differ).
    """

    name: str = "abstract"

    def __init__(self) -> None:
        self.node = None  # set by attach()
        #: recovery epoch of the current episode; 0 while not recovering
        self.epoch = 0
        #: control messages dropped because they came from a dead epoch
        self.stale_epoch_drops = 0
        #: highest epoch seen per peer (volatile; rebuilt after a crash)
        self._peer_epochs: Dict[int, int] = {}

    def attach(self, node: "Node") -> None:
        """Bind to the owning node.  Called once at system build."""
        self.node = node

    # -- helpers ----------------------------------------------------------
    @property
    def app_nodes(self) -> List[int]:
        """All application node ids (excludes the sequencer)."""
        return list(range(self.node.config.n))

    @property
    def peers(self) -> List[int]:
        """Every application node except this one."""
        return [p for p in self.app_nodes if p != self.node.node_id]

    def send_control(
        self,
        dst: int,
        mtype: str,
        payload: Optional[Dict[str, Any]] = None,
        body_bytes: int = 32,
    ) -> None:
        """Send one recovery-class control message.

        The sender's current recovery epoch rides along automatically;
        callers that answer on behalf of another episode (replies) set
        ``payload["epoch"]`` to the conversation's epoch themselves and
        the injected default does not override it.
        """
        node = self.node
        payload = payload if payload is not None else {}
        payload.setdefault("epoch", self.epoch)
        node.network.send(
            Message(
                src=node.node_id,
                dst=dst,
                kind=MessageKind.RECOVERY,
                mtype=mtype,
                payload=payload,
                body_bytes=body_bytes,
                incarnation=node.incarnation,
            )
        )

    def broadcast_control(
        self,
        dsts: Iterable[int],
        mtype: str,
        payload: Optional[Dict[str, Any]] = None,
        body_bytes: int = 32,
    ) -> None:
        """Send the same recovery control message to several peers."""
        for dst in sorted(set(dsts)):
            if dst != self.node.node_id:
                self.send_control(dst, mtype, dict(payload or {}), body_bytes)

    def trace(self, action: str, **details: Any) -> None:
        """Record a recovery-category trace event for this node."""
        node = self.node
        node.trace.record(node.sim.now, "recovery", node.node_id, action, **details)

    # -- recovery epochs --------------------------------------------------
    def begin_epoch(self, epoch: int) -> None:
        """Enter a new recovery epoch (traced for the sanitizer)."""
        self.epoch = epoch
        self.trace("epoch_begin", epoch=epoch)

    def stale_epoch(self, msg: Message, expected: Optional[int] = None) -> bool:
        """Reject a control message that belongs to a dead recovery epoch.

        With ``expected`` set, the message must carry exactly that epoch
        (the reply-checking form: a late reply to an earlier episode's
        request is dropped).  Without it, the message's epoch must not
        regress below the highest epoch this node has seen from the
        sender (the peer-tracking form).  Returns True when the message
        is stale; drops are counted and traced so the sanitizer's
        ``recovery-epoch`` invariant can audit them.
        """
        epoch = (msg.payload or {}).get("epoch", 0)
        if expected is not None:
            stale = epoch != expected
            want = expected
        else:
            want = self._peer_epochs.get(msg.src, 0)
            stale = epoch < want
            if not stale and epoch > want:
                self._peer_epochs[msg.src] = epoch
        if stale:
            self.stale_epoch_drops += 1
            episode = self.node.metrics.episode_of(self.node.node_id)
            if episode is not None:
                episode.stale_epoch_drops += 1
            self.trace(
                "stale_epoch_drop",
                src=msg.src,
                mtype=msg.mtype,
                epoch=epoch,
                expected=want,
            )
        return stale

    # -- lifecycle ----------------------------------------------------------
    def on_crash(self) -> None:
        """This node crashed; drop any in-progress recovery state.

        Subclasses extending this must call ``super().on_crash()``: the
        epoch of the dead episode and the volatile per-peer epoch view
        do not survive a crash.
        """
        self.epoch = 0
        self._peer_epochs.clear()

    @abstractmethod
    def begin_recovery(self) -> None:
        """Checkpoint restored; run the recovery algorithm."""

    def on_replay_complete(self) -> None:
        """The protocol finished replaying; default: done immediately."""
        self.node.complete_recovery()

    # -- events ----------------------------------------------------------
    def on_control(self, msg: Message) -> None:
        """A recovery-class control message arrived."""

    def on_peer_status(self, node_id: int, status: str) -> None:
        """The failure detector reported ``node_id`` as "down" or "up"."""

    # -- accounting ---------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """Manager-specific counters for the run summary."""
        return {"stale_epoch_drops": self.stale_epoch_drops}
