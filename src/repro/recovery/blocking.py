"""The blocking recovery baseline ("optimized for low communication").

This is the comparator from the paper's evaluation: "For the purpose of
comparison, we also implemented a prototype of a blocking recovery
algorithm.  In this algorithm, live processes block while recovery takes
place."

Its message pattern is the minimal one -- the recovering process queries
every live process directly (no sequencer round-trip, no incarnation
round, no leader handoff): one request broadcast, one reply each, one
completion broadcast.  The costs land elsewhere, exactly as the paper
describes for this class of protocol:

* every live process **blocks application processing** from the moment
  it receives the recovery request until all outstanding recoveries (and
  all suspected failures) have resolved -- the conservative regime that
  keeps the gathered snapshot trivially consistent in the presence of
  failures during recovery;
* every live process must **synchronously record its reply on stable
  storage before sending it** (the behaviour the paper attributes to
  Manetho-style recovery), adding a stable-storage stall to both the
  live process and the recovering process's critical path.
"""

from __future__ import annotations

from typing import Any, Dict, List, Set

from repro.net.network import Message
from repro.recovery.base import RecoveryManager


class BlockingRecovery(RecoveryManager):
    """Message-optimal but intrusive recovery for the FBL family."""

    name = "blocking"

    def __init__(self) -> None:
        super().__init__()
        # recovering side
        self._collecting = False
        self._expected: Set[int] = set()
        self._replies: Dict[int, List[Any]] = {}
        # live side
        self._active_recoveries: Set[int] = set()
        self.sync_reply_writes = 0

    # ------------------------------------------------------------------
    def on_crash(self) -> None:
        self._collecting = False
        self._expected.clear()
        self._replies.clear()
        self._active_recoveries.clear()

    # ------------------------------------------------------------------
    # recovering side
    # ------------------------------------------------------------------
    def begin_recovery(self) -> None:
        self._collecting = True
        self._replies.clear()
        self._expected = {
            p for p in self.peers if not self.node.detector.is_suspected(p)
        }
        self.trace("recovery_request_broadcast", expected=sorted(self._expected))
        self.broadcast_control(self.peers, "recovery_request", body_bytes=16)
        self._check_done()

    def _check_done(self) -> None:
        if not self._collecting:
            return
        if any(p not in self._replies for p in self._expected):
            return
        self._collecting = False
        merged: Dict[tuple, tuple] = {}
        for wire in self._replies.values():
            for item in wire:
                merged[tuple(item)] = tuple(item)
        for item in self.node.protocol.local_depinfo_wire():
            merged[tuple(item)] = tuple(item)
        merged_wire = sorted(merged.values())
        episode = self.node.metrics.episode_of(self.node.node_id)
        if episode is not None:
            episode.replay_start_time = self.node.sim.now
        self.trace("replay_handoff", determinants=len(merged_wire))
        self.node.protocol.begin_replay(merged_wire)

    def on_replay_complete(self) -> None:
        self.trace("complete")
        self.broadcast_control(
            self.peers,
            "recovery_complete",
            {"incarnation": self.node.incarnation},
            body_bytes=16,
        )
        self.node.complete_recovery()

    # ------------------------------------------------------------------
    # control messages
    # ------------------------------------------------------------------
    def on_control(self, msg: Message) -> None:
        if msg.mtype == "recovery_request":
            self._on_recovery_request(msg)
        elif msg.mtype == "recovery_reply":
            self._on_recovery_reply(msg)
        elif msg.mtype == "recovery_complete":
            self._on_recovery_complete(msg)

    def _on_recovery_request(self, msg: Message) -> None:
        self.trace("recovery_request_received", requester=msg.src)
        self._active_recoveries.add(msg.src)
        if self.node.is_recovering:
            self.node.protocol.request_retransmissions_from(msg.src)
        if not self.node.is_recovering:
            # The defining intrusion: stop application progress until the
            # recovery (and any concurrent failure) resolves.
            self.node.block()
        wire = self.node.protocol.local_depinfo_wire()
        requester = msg.src
        self.sync_reply_writes += 1

        def send_reply() -> None:
            self.send_control(
                requester,
                "recovery_reply",
                {"wire": wire},
                body_bytes=32 * len(wire),
            )

        # Synchronous stable write of the reply before it may be sent.
        self.node.storage.write(
            f"recovery_reply:{requester}:{self.node.sim.now}",
            wire,
            size_bytes=max(64, 32 * len(wire)),
            on_done=send_reply,
            stall_node=self.node.node_id,
        )

    def _on_recovery_reply(self, msg: Message) -> None:
        self._replies[msg.src] = msg.payload["wire"]
        self._check_done()

    def _on_recovery_complete(self, msg: Message) -> None:
        self._active_recoveries.discard(msg.src)
        current = self.node.incvector.get(msg.src, 0)
        self.node.incvector[msg.src] = max(current, msg.payload["incarnation"])
        if self.node.is_recovering:
            self.node.protocol.request_retransmissions_from(msg.src)
        elif self.node.is_live:
            self.node.protocol.on_peer_recovered(msg.src)
        self._maybe_unblock()

    # ------------------------------------------------------------------
    # detector events
    # ------------------------------------------------------------------
    def on_peer_status(self, node_id: int, status: str) -> None:
        if status == "down":
            if self._collecting:
                # A process we were waiting on died; proceed without it.
                self._expected.discard(node_id)
                self._check_done()
        else:
            self._maybe_unblock()

    def _maybe_unblock(self) -> None:
        """Unblock only when no recovery or suspected failure is pending.

        Keeping live processes stalled across the *detection and restore*
        of any concurrent failure is what produces the paper's E2 numbers
        (live processes blocked for the full ~5 s the second recovery
        takes).
        """
        if self._active_recoveries:
            return
        if self.node.detector.suspected_view():
            return
        self.node.unblock()

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        return {"sync_reply_writes": self.sync_reply_writes}
