"""The blocking recovery baseline ("optimized for low communication").

This is the comparator from the paper's evaluation: "For the purpose of
comparison, we also implemented a prototype of a blocking recovery
algorithm.  In this algorithm, live processes block while recovery takes
place."

Its message pattern is the minimal one -- the recovering process queries
every live process directly (no sequencer round-trip, no incarnation
round, no leader handoff): one request broadcast, one reply each, one
completion broadcast.  The costs land elsewhere, exactly as the paper
describes for this class of protocol:

* every live process **blocks application processing** from the moment
  it receives the recovery request until all outstanding recoveries (and
  all suspected failures) have resolved -- the conservative regime that
  keeps the gathered snapshot trivially consistent in the presence of
  failures during recovery;
* every live process must **synchronously record its reply on stable
  storage before sending it** (the behaviour the paper attributes to
  Manetho-style recovery), adding a stable-storage stall to both the
  live process and the recovering process's critical path.
"""

from __future__ import annotations

from typing import Any, Dict, List, Set

from repro.net.network import Message
from repro.recovery.base import RecoveryManager


class BlockingRecovery(RecoveryManager):
    """Message-optimal but intrusive recovery for the FBL family."""

    name = "blocking"

    #: delay before re-broadcasting the gather when the merged depinfo
    #: still has a replay gap (a counted determinant copy in flight)
    GATHER_RETRY_DELAY = 0.05
    #: bounded retries; a *genuinely* lost determinant (> f failures)
    #: must still surface as the replay engine's hard error
    MAX_GATHER_RETRIES = 50

    def __init__(self) -> None:
        super().__init__()
        # recovering side
        self._collecting = False
        self._expected: Set[int] = set()
        self._replies: Dict[int, List[Any]] = {}
        self._gather_retries = 0
        # live side
        self._active_recoveries: Set[int] = set()
        self.sync_reply_writes = 0

    # ------------------------------------------------------------------
    def on_crash(self) -> None:
        super().on_crash()
        self._collecting = False
        self._expected.clear()
        self._replies.clear()
        self._gather_retries = 0
        self._active_recoveries.clear()

    # ------------------------------------------------------------------
    # recovering side
    # ------------------------------------------------------------------
    def begin_recovery(self) -> None:
        # the incarnation counter is this node's episode epoch: strictly
        # monotone across its episodes, so late replies to a dead
        # episode's gather are rejected by the epoch check
        if self.epoch != self.node.incarnation:
            self.begin_epoch(self.node.incarnation)
        self._collecting = True
        self._replies.clear()
        self._expected = {
            p for p in self.peers if not self.node.detector.is_suspected(p)
        }
        self.trace("recovery_request_broadcast", expected=sorted(self._expected))
        self.broadcast_control(self.peers, "recovery_request", body_bytes=16)
        self._check_done()

    def _check_done(self) -> None:
        if not self._collecting:
            return
        if any(p not in self._replies for p in self._expected):
            return
        self._collecting = False
        merged: Dict[tuple, tuple] = {}
        for wire in self._replies.values():
            for item in wire:
                merged[tuple(item)] = tuple(item)
        for item in self.node.protocol.local_depinfo_wire():
            merged[tuple(item)] = tuple(item)
        merged_wire = sorted(merged.values())
        missing = self._replay_gap(merged_wire)
        if missing and self._gather_retries < self.MAX_GATHER_RETRIES:
            # A receipt order this replay needs is not in any reply.  On
            # a faulty network that usually means a counted determinant
            # copy is still in flight to a live host (FBL counts the
            # destination at send time); it will be absorbed on arrival,
            # so gather again after a delay rather than hand a known
            # gap to the replay engine.
            self._gather_retries += 1
            self.trace(
                "gather_retry",
                attempt=self._gather_retries,
                missing=missing[:4],
            )
            inc = self.node.incarnation
            self.node.sim.schedule(
                self.GATHER_RETRY_DELAY,
                self._retry_gather,
                inc,
                label=f"recovery.gather_retry:{self.node.node_id}",
            )
            return
        self.node.mark_replay_start()
        self.trace("replay_handoff", determinants=len(merged_wire))
        self.node.protocol.begin_replay(merged_wire)

    def _replay_gap(self, merged_wire: List[tuple]) -> List[int]:
        """Receipt orders the replay will need but the gather lacks."""
        me = self.node.node_id
        rsns = {item[3] for item in merged_wire if item[2] == me}
        target = max(rsns, default=-1)
        start = self.node.app.delivered_count
        return [r for r in range(start, target + 1) if r not in rsns]

    def _retry_gather(self, incarnation: int) -> None:
        if not self.node.is_recovering or self.node.incarnation != incarnation:
            return  # crashed again since the retry was scheduled
        if self._collecting:
            return
        self.begin_recovery()

    def on_replay_complete(self) -> None:
        self.trace("complete", epoch=self.epoch)
        self.broadcast_control(
            self.peers,
            "recovery_complete",
            {"incarnation": self.node.incarnation},
            body_bytes=16,
        )
        self.epoch = 0
        self.node.complete_recovery()

    # ------------------------------------------------------------------
    # control messages
    # ------------------------------------------------------------------
    def on_control(self, msg: Message) -> None:
        if msg.mtype == "recovery_request":
            self._on_recovery_request(msg)
        elif msg.mtype == "recovery_reply":
            self._on_recovery_reply(msg)
        elif msg.mtype == "recovery_complete":
            self._on_recovery_complete(msg)

    def _on_recovery_request(self, msg: Message) -> None:
        if self.stale_epoch(msg):
            return  # a dead episode's request must not block this node
        self.trace("recovery_request_received", requester=msg.src)
        self._active_recoveries.add(msg.src)
        if self.node.is_recovering:
            self.node.protocol.request_retransmissions_from(msg.src)
        if not self.node.is_recovering:
            # The defining intrusion: stop application progress until the
            # recovery (and any concurrent failure) resolves.
            self.node.block()
        # On the reliable transport, messages queued behind the block
        # have arrived at this host and their senders already count it
        # toward f+1 replication, so the reply must include their
        # piggybacked determinants (on the raw network the window is
        # sub-millisecond and the seed's delivered-state-only reply is
        # kept byte-identical).
        if self.node.network.transport is not None:
            self.node.protocol.absorb_piggybacks(self.node.blocked_app_messages())
        wire = self.node.protocol.local_depinfo_wire()
        requester = msg.src
        request_epoch = (msg.payload or {}).get("epoch", 0)
        self.sync_reply_writes += 1

        def send_reply() -> None:
            # the synchronous write has completed; only now may the
            # reply leave this host (the blocking algorithm's contract)
            self.trace("reply_durable", requester=requester, determinants=len(wire))
            self.send_control(
                requester,
                "recovery_reply",
                {"wire": wire, "epoch": request_epoch},
                body_bytes=32 * len(wire),
            )

        # Synchronous stable write of the reply before it may be sent.
        self.node.storage.write(
            f"recovery_reply:{requester}:{self.node.sim.now}",
            wire,
            size_bytes=max(64, 32 * len(wire)),
            on_done=send_reply,
            stall_node=self.node.node_id,
        )

    def _on_recovery_reply(self, msg: Message) -> None:
        if self.stale_epoch(msg, expected=self.epoch):
            return  # reply to a dead episode's gather
        self._replies[msg.src] = msg.payload["wire"]
        self._check_done()

    def _on_recovery_complete(self, msg: Message) -> None:
        if self.stale_epoch(msg):
            return  # a dead episode's completion must not unblock us
        self._active_recoveries.discard(msg.src)
        current = self.node.incvector.get(msg.src, 0)
        self.node.incvector[msg.src] = max(current, msg.payload["incarnation"])
        if self.node.is_recovering:
            self.node.protocol.request_retransmissions_from(msg.src)
        elif self.node.is_live:
            self.node.protocol.on_peer_recovered(msg.src)
        self._maybe_unblock()

    # ------------------------------------------------------------------
    # detector events
    # ------------------------------------------------------------------
    def on_peer_status(self, node_id: int, status: str) -> None:
        if status == "down":
            if self._collecting:
                # A process we were waiting on died; proceed without it.
                self._expected.discard(node_id)
                self._check_done()
        else:
            self._maybe_unblock()

    def _maybe_unblock(self) -> None:
        """Unblock only when no recovery or suspected failure is pending.

        Keeping live processes stalled across the *detection and restore*
        of any concurrent failure is what produces the paper's E2 numbers
        (live processes blocked for the full ~5 s the second recovery
        takes).
        """
        if self._active_recoveries:
            return
        if self.node.detector.suspected_view():
            return
        self.node.unblock()

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        stats = super().stats()
        stats["sync_reply_writes"] = self.sync_reply_writes
        return stats
