"""Recovery algorithms.

* :class:`~repro.recovery.nonblocking.NonblockingRecovery` -- **the
  paper's new algorithm** (Section 3): leader-driven gathering of
  depinfo with incarnation vectors; live processes never block, never
  refuse messages, never write stable storage synchronously; leader
  failover by ordinal number.  Hardened for churn: every episode is
  epoch-numbered, gather progress is persisted at the sequencer, and a
  leader failure hands the round off to the successor (see
  ``docs/RECOVERY.md``).
* :class:`~repro.recovery.nonblocking.RestartingNonblockingRecovery`
  (``nonblocking-restart``) -- the paper's literal variant: any failure
  during a round restarts the gather from scratch (``goto 4``).  Kept
  as the baseline for churn-degradation comparisons.
* :class:`~repro.recovery.blocking.BlockingRecovery` -- the baseline
  "optimized to reduce the communication overhead": the recovering
  process queries live processes directly (no leader or sequencer
  round), but live processes block from request to completion and
  synchronously log their replies to stable storage first.
* :class:`~repro.recovery.local.LocalRecovery` -- for pessimistic
  (receiver-based, synchronous) logging: recovery is entirely local.
* :class:`~repro.recovery.optimistic_mgr.OptimisticRecovery` -- for
  optimistic logging: recover the logged prefix, announce the rollback,
  and cascade orphan rollbacks.
* :class:`~repro.recovery.coordinated_mgr.CoordinatedRecovery` -- for
  coordinated checkpointing: every process rolls back to the most recent
  globally durable snapshot round.
* :class:`~repro.recovery.sequencer.Sequencer` -- the never-failing
  ordinal service backing the paper's system-wide monotonic ``ord``.
"""

from repro.recovery.base import RecoveryManager
from repro.recovery.blocking import BlockingRecovery
from repro.recovery.coordinated_mgr import CoordinatedRecovery
from repro.recovery.local import LocalRecovery
from repro.recovery.nonblocking import (
    NonblockingRecovery,
    RestartingNonblockingRecovery,
)
from repro.recovery.optimistic_mgr import OptimisticRecovery
from repro.recovery.sequencer import Sequencer

RECOVERY_MANAGERS = {
    "blocking": BlockingRecovery,
    "nonblocking": NonblockingRecovery,
    "nonblocking-restart": RestartingNonblockingRecovery,
    "local": LocalRecovery,
    "optimistic": OptimisticRecovery,
    "coordinated": CoordinatedRecovery,
}

__all__ = [
    "RecoveryManager",
    "BlockingRecovery",
    "NonblockingRecovery",
    "RestartingNonblockingRecovery",
    "LocalRecovery",
    "OptimisticRecovery",
    "CoordinatedRecovery",
    "Sequencer",
    "RECOVERY_MANAGERS",
]
