"""Communication-cost observability: the byte-exact cost ledger.

The paper's argument is about *where the bytes go* — piggybacked
dependency metadata vs determinant logging vs control rounds vs
checkpoint traffic.  :mod:`repro.obs` makes that a first-class,
conservation-checked observable:

* :class:`~repro.obs.ledger.CostLedger` attributes every wire byte and
  every stable-storage byte/op to a ``(process, peer, purpose, phase)``
  account, where purpose is the fixed taxonomy of
  :data:`~repro.obs.ledger.PURPOSES` and phase separates failure-free
  operation from each numbered recovery episode;
* :class:`~repro.obs.sampler.CostSampler` snapshots the ledger into
  bounded-memory time windows (``RunResult.extra["timeseries"]``);
* the keystone property is **byte conservation**: account sums equal
  the existing :class:`~repro.net.network.NetworkStats` /
  :class:`~repro.storage.stable.StableStorageStats` totals *exactly*
  (:meth:`CostLedger.conservation`), enforced across the protocol x
  recovery matrix by ``tests/test_cost_ledger.py``.

Like spans and the profiler, everything here is host-side bookkeeping:
charging the ledger schedules nothing and draws no randomness, so a run
with the ledger on is byte-identical to one without.
"""

from repro.obs.ledger import (
    PURPOSES,
    CostLedger,
    classify_storage,
    classify_wire,
    merge_cost_dumps,
)
from repro.obs.sampler import CostSampler

__all__ = [
    "PURPOSES",
    "CostLedger",
    "CostSampler",
    "classify_storage",
    "classify_wire",
    "merge_cost_dumps",
]
