"""The communication-cost ledger: byte-exact purpose attribution.

Every wire byte and every stable-storage byte/op is charged to one
account keyed ``(domain, process, peer, purpose, phase)``:

* **domain** — ``wire`` (network transmissions), ``storage`` (stable
  device transfers) or ``gc`` (reclaimed space, a credit account);
* **process / peer** — the sender and destination for wire charges, the
  device owner and operation direction (``read``/``write``) for storage;
* **purpose** — the fixed taxonomy :data:`PURPOSES`, mapping traffic to
  the paper's cost terms (piggybacked dependency metadata, determinant
  logging, recovery control, checkpoint transfer, ...);
* **phase** — ``failure-free``, or ``recovery-N`` while the N-th
  recovery episode of the run is in progress (nested episodes attribute
  to the most recently begun one, matching how the trace's span chains
  nest).

The keystone property is **byte conservation**: the ledger is charged at
exactly the statements that mutate :class:`~repro.net.network.NetworkStats`
and :class:`~repro.storage.stable.StableStorageStats`, so account sums
equal those totals *to the byte* (:meth:`CostLedger.conservation`).  A
wire message splits into header + piggyback + body sub-charges that
re-add to its transmitted size; a group-commit batch charges one device
op and per-entry purpose bytes that re-add to the flushed total.

Charging is host-side bookkeeping only — no simulated events, no
randomness — so the ledger can never perturb a run (the goldens in
``tests/test_cost_ledger.py`` prove byte-identical results with it on).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

#: The fixed purpose taxonomy (see docs/OBSERVABILITY.md for the mapping
#: to the paper's cost terms).
PURPOSES = (
    "app-payload",
    "header",
    "piggyback-determinant",
    "control-plane",
    "retransmit",
    "recovery-data",
    "checkpoint",
    "determinant-log",
    "gc-metadata",
)

#: Protocol-kind message types whose body is not plain control traffic.
_PROTOCOL_BODY_PURPOSE = {
    "retransmit_data": "recovery-data",  # logged messages re-sent to a recoverer
    "det_push": "determinant-log",  # determinants pushed to reach f+1 hosts
    "gc_notice": "gc-metadata",
    "stable_info": "gc-metadata",  # stability gossip drives log pruning
}

#: Recovery-kind message types that carry recovered data rather than
#: round control (replies with determinants / dependency vectors).
_RECOVERY_DATA_MTYPES = frozenset(
    {"recovery_reply", "depinfo_reply", "depinfo_distribute"}
)

_FAILURE_FREE = "failure-free"


def classify_wire(kind: str, mtype: str) -> str:
    """Purpose of a message *body* from its accounting kind and mtype.

    The header and piggyback portions of the same message are charged to
    the ``header`` / ``piggyback-determinant`` accounts separately.
    """
    if kind == "application":
        return "app-payload"
    if kind == "protocol":
        return _PROTOCOL_BODY_PURPOSE.get(mtype, "control-plane")
    if kind == "recovery":
        return (
            "recovery-data" if mtype in _RECOVERY_DATA_MTYPES else "control-plane"
        )
    if kind == "storage":
        # traffic to a stable-storage process (f = n logging)
        return "determinant-log"
    return "control-plane"  # transport acks and anything future


def classify_storage(name: str, is_log: bool = False) -> str:
    """Purpose of a stable-storage operation from its key / log name."""
    if is_log:
        # every append-only log holds determinants / receipts / HOPs
        return "determinant-log"
    if name.startswith("checkpoint:") or name.startswith("round:"):
        return "checkpoint"
    if name.startswith("recovery_reply:"):
        return "recovery-data"
    if name.startswith("admode:"):
        # the adaptive stack's epoch-stamped mode markers: switch events
        # are control traffic, not determinant logging
        return "control-plane"
    # commit markers, gather progress and other durable control records
    return "control-plane"


class CostLedger:
    """Byte-exact cost accounts, fed by pre-bound subsystem hooks.

    Accounts map ``(domain, proc, peer, purpose, phase)`` to
    ``[count, bytes]``.  For wire accounts ``count`` is messages charged
    to that account (each message counts once on its body account, once
    on ``header``, once on ``piggyback-determinant`` when it piggybacks);
    for storage accounts it is logical operations (each batched append
    counts, the shared device op is conserved separately via
    :attr:`device_ops`).

    The off path stays zero-cost: subsystems hold ``cost = None`` and
    guard every charge with a single ``is not None`` branch, exactly
    like the span/registry pre-binding pattern.
    """

    def __init__(self) -> None:
        self.accounts: Dict[Tuple[str, Any, Any, str, str], List[int]] = {}
        # -- wire aggregates (conservation + sampler fast path) ----------
        self.wire_messages = 0
        self.wire_retransmits = 0
        self.wire_bytes_total = 0
        self.wire_purpose_bytes: Dict[str, int] = {}
        # -- storage aggregates ------------------------------------------
        self.device_ops: Dict[int, int] = {}
        self.device_bytes: Dict[int, int] = {}
        self.device_gc_bytes: Dict[int, int] = {}
        self.storage_purpose_bytes: Dict[str, int] = {}
        self.storage_ops_total = 0
        self.storage_bytes_total = 0
        self.gc_bytes_total = 0
        # -- phase tracking ----------------------------------------------
        self._episodes_begun = 0
        self._phase_stack: List[Tuple[int, str]] = []
        self._phase = _FAILURE_FREE
        # -- optional collaborators (bound by System) --------------------
        #: a repro.sim.spans.SpanChainTracker when spans are on; charges
        #: then also accumulate into the collapsed-stack flame profile
        self.spans = None
        #: a repro.obs.sampler.CostSampler when time-series sampling is on
        self._sampler = None
        self.flame: Dict[Tuple[str, ...], int] = {}

    # ------------------------------------------------------------------
    # phases
    # ------------------------------------------------------------------
    def begin_episode(self, node: int) -> None:
        """Enter the next numbered recovery phase (``node`` crashed)."""
        self._episodes_begun += 1
        phase = f"recovery-{self._episodes_begun}"
        self._phase_stack.append((node, phase))
        self._phase = phase

    def end_episode(self, node: int) -> None:
        """Leave ``node``'s recovery phase (it completed recovery)."""
        for i in range(len(self._phase_stack) - 1, -1, -1):
            if self._phase_stack[i][0] == node:
                del self._phase_stack[i]
                break
        self._phase = (
            self._phase_stack[-1][1] if self._phase_stack else _FAILURE_FREE
        )

    @property
    def phase(self) -> str:
        """The phase charges are currently attributed to."""
        return self._phase

    @property
    def episodes_begun(self) -> int:
        return self._episodes_begun

    # ------------------------------------------------------------------
    # charging
    # ------------------------------------------------------------------
    def _account(
        self, domain: str, proc: Any, peer: Any, purpose: str, phase: str
    ) -> List[int]:
        key = (domain, proc, peer, purpose, phase)
        cell = self.accounts.get(key)
        if cell is None:
            cell = self.accounts[key] = [0, 0]
        return cell

    def _flame_add(self, node: int, purpose: str, size: int) -> None:
        chain = self.spans.chain(node)
        stack = [f"node {node}"]
        stack.extend(link["kind"] for link in reversed(chain))
        stack.append(purpose)
        key = tuple(stack)
        self.flame[key] = self.flame.get(key, 0) + size

    def charge_wire(
        self,
        now: float,
        src: int,
        dst: int,
        kind: str,
        mtype: str,
        size: int,
        header: int,
        piggyback: int,
        retransmit: bool,
    ) -> None:
        """Charge one transmission of ``size`` bytes (header + piggyback
        + body) from ``src`` to ``dst``.  Retransmitted copies charge
        their full size to the ``retransmit`` account — the cost of
        reliability is its own column, matching
        :meth:`NetworkStats.record_retransmit`."""
        sampler = self._sampler
        if sampler is not None and now >= sampler.next_boundary:
            sampler.flush_to(now)
        phase = self._phase
        purposes = self.wire_purpose_bytes
        if retransmit:
            self.wire_retransmits += 1
            cell = self._account("wire", src, dst, "retransmit", phase)
            cell[0] += 1
            cell[1] += size
            purposes["retransmit"] = purposes.get("retransmit", 0) + size
            if self.spans is not None:
                self._flame_add(src, "retransmit", size)
        else:
            self.wire_messages += 1
            body = size - header - piggyback
            purpose = classify_wire(kind, mtype)
            cell = self._account("wire", src, dst, purpose, phase)
            cell[0] += 1
            cell[1] += body
            purposes[purpose] = purposes.get(purpose, 0) + body
            cell = self._account("wire", src, dst, "header", phase)
            cell[0] += 1
            cell[1] += header
            purposes["header"] = purposes.get("header", 0) + header
            if piggyback:
                cell = self._account(
                    "wire", src, dst, "piggyback-determinant", phase
                )
                cell[0] += 1
                cell[1] += piggyback
                purposes["piggyback-determinant"] = (
                    purposes.get("piggyback-determinant", 0) + piggyback
                )
            if self.spans is not None:
                self._flame_add(src, purpose, body)
                self._flame_add(src, "header", header)
                if piggyback:
                    self._flame_add(src, "piggyback-determinant", piggyback)
        self.wire_bytes_total += size

    def charge_storage(
        self,
        now: float,
        owner: int,
        op: str,
        name: str,
        size: int,
        is_log: bool = False,
    ) -> None:
        """Charge one stable-storage device operation of ``size`` bytes."""
        sampler = self._sampler
        if sampler is not None and now >= sampler.next_boundary:
            sampler.flush_to(now)
        purpose = classify_storage(name, is_log)
        cell = self._account("storage", owner, op, purpose, self._phase)
        cell[0] += 1
        cell[1] += size
        self.device_ops[owner] = self.device_ops.get(owner, 0) + 1
        self.device_bytes[owner] = self.device_bytes.get(owner, 0) + size
        self.storage_purpose_bytes[purpose] = (
            self.storage_purpose_bytes.get(purpose, 0) + size
        )
        self.storage_ops_total += 1
        self.storage_bytes_total += size
        if self.spans is not None:
            self._flame_add(owner, purpose, size)

    def charge_batch(
        self, now: float, owner: int, entries: List[Tuple[str, int]], total: int
    ) -> None:
        """Charge one group-commit flush: a *single* device op whose
        ``total`` bytes split per-entry by each log's purpose.

        ``entries`` is ``[(log_name, size_bytes), ...]``; their sizes sum
        to ``total`` (the bytes :meth:`StableStorage._flush_batch` adds
        to ``stats.bytes_written``), keeping conservation exact."""
        sampler = self._sampler
        if sampler is not None and now >= sampler.next_boundary:
            sampler.flush_to(now)
        phase = self._phase
        for log, size in entries:
            purpose = classify_storage(log, is_log=True)
            cell = self._account("storage", owner, "write", purpose, phase)
            cell[0] += 1
            cell[1] += size
            self.storage_purpose_bytes[purpose] = (
                self.storage_purpose_bytes.get(purpose, 0) + size
            )
            if self.spans is not None:
                self._flame_add(owner, purpose, size)
        self.device_ops[owner] = self.device_ops.get(owner, 0) + 1
        self.device_bytes[owner] = self.device_bytes.get(owner, 0) + total
        self.storage_ops_total += 1
        self.storage_bytes_total += total

    def charge_gc(self, now: float, owner: int, size: int) -> None:
        """Credit ``size`` reclaimed bytes (a zero-I/O metadata op)."""
        sampler = self._sampler
        if sampler is not None and now >= sampler.next_boundary:
            sampler.flush_to(now)
        cell = self._account("gc", owner, "-", "gc-metadata", self._phase)
        cell[0] += 1
        cell[1] += size
        self.device_gc_bytes[owner] = self.device_gc_bytes.get(owner, 0) + size
        self.gc_bytes_total += size

    # ------------------------------------------------------------------
    # conservation (the keystone check)
    # ------------------------------------------------------------------
    def conservation(
        self, network_stats: Any, storage_stats: Dict[int, Any]
    ) -> Dict[str, Any]:
        """Check ledger sums against the pre-existing metric totals.

        Byte-exact equalities (``==`` on integers, no tolerance):

        * wire account bytes  == ``NetworkStats.total_bytes()`` +
          ``retransmit_bytes``; message/retransmit counts match too;
        * per-device storage ops/bytes == ``reads + writes`` /
          ``bytes_read + bytes_written`` of that device's stats;
        * per-device gc bytes == ``bytes_reclaimed``.
        """
        wire_ledger = sum(
            cell[1] for key, cell in self.accounts.items() if key[0] == "wire"
        )
        wire_expected = network_stats.total_bytes() + network_stats.retransmit_bytes
        checks: Dict[str, Any] = {
            "wire_bytes": {"ledger": wire_ledger, "expected": wire_expected},
            "wire_messages": {
                "ledger": self.wire_messages,
                "expected": network_stats.total_messages(),
            },
            "wire_retransmits": {
                "ledger": self.wire_retransmits,
                "expected": network_stats.retransmits,
            },
        }
        storage_ledger_ops = storage_ledger_bytes = 0
        storage_expected_ops = storage_expected_bytes = 0
        gc_ledger = gc_expected = 0
        per_device_ok = True
        for owner, stats in sorted(storage_stats.items()):
            ops = self.device_ops.get(owner, 0)
            nbytes = self.device_bytes.get(owner, 0)
            gc = self.device_gc_bytes.get(owner, 0)
            storage_ledger_ops += ops
            storage_ledger_bytes += nbytes
            gc_ledger += gc
            storage_expected_ops += stats.reads + stats.writes
            storage_expected_bytes += stats.bytes_read + stats.bytes_written
            gc_expected += stats.bytes_reclaimed
            if (
                ops != stats.reads + stats.writes
                or nbytes != stats.bytes_read + stats.bytes_written
                or gc != stats.bytes_reclaimed
            ):
                per_device_ok = False
        checks["storage_ops"] = {
            "ledger": storage_ledger_ops, "expected": storage_expected_ops,
        }
        checks["storage_bytes"] = {
            "ledger": storage_ledger_bytes, "expected": storage_expected_bytes,
        }
        checks["gc_bytes"] = {"ledger": gc_ledger, "expected": gc_expected}
        checks["per_device"] = per_device_ok
        conserved = per_device_ok and all(
            isinstance(check, bool) or check["ledger"] == check["expected"]
            for check in checks.values()
        )
        checks["conserved"] = conserved
        return checks

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def by_purpose(self, domain: str = "wire") -> Dict[str, int]:
        """Total bytes per purpose within one domain, sorted by name."""
        totals: Dict[str, int] = {}
        for (dom, _proc, _peer, purpose, _phase), cell in self.accounts.items():
            if dom == domain:
                totals[purpose] = totals.get(purpose, 0) + cell[1]
        return dict(sorted(totals.items()))

    def by_phase(self, domain: str = "wire") -> Dict[str, int]:
        """Total bytes per phase within one domain (failure-free first)."""
        totals: Dict[str, int] = {}
        for (dom, _proc, _peer, _purpose, phase), cell in self.accounts.items():
            if dom == domain:
                totals[phase] = totals.get(phase, 0) + cell[1]
        return dict(
            sorted(totals.items(), key=lambda kv: (kv[0] != _FAILURE_FREE, kv[0]))
        )

    def link_matrix(self) -> Dict[Tuple[int, int], int]:
        """Wire bytes per directed ``(src, dst)`` link (all purposes)."""
        totals: Dict[Tuple[int, int], int] = {}
        for (dom, proc, peer, _purpose, _phase), cell in self.accounts.items():
            if dom == "wire":
                totals[(proc, peer)] = totals.get((proc, peer), 0) + cell[1]
        return totals

    def overhead_share(self) -> float:
        """Fraction of wire bytes that is not application payload —
        the paper's failure-free overhead number."""
        if not self.wire_bytes_total:
            return 0.0
        app = self.wire_purpose_bytes.get("app-payload", 0)
        return 1.0 - app / self.wire_bytes_total

    def flame_lines(self) -> List[str]:
        """Collapsed-stack lines (``frame;frame;purpose bytes``) in the
        format speedscope and ``flamegraph.pl`` load directly."""
        return [
            ";".join(stack) + f" {size}"
            for stack, size in sorted(self.flame.items())
            if size > 0
        ]

    def summary(
        self,
        network_stats: Optional[Any] = None,
        storage_stats: Optional[Dict[int, Any]] = None,
    ) -> Dict[str, Any]:
        """JSON-able roll-up for ``RunResult.extra["cost"]``."""
        out: Dict[str, Any] = {
            "wire": {
                "total_bytes": self.wire_bytes_total,
                "messages": self.wire_messages,
                "retransmits": self.wire_retransmits,
                "by_purpose": self.by_purpose("wire"),
                "by_phase": self.by_phase("wire"),
            },
            "storage": {
                "total_bytes": self.storage_bytes_total,
                "ops": self.storage_ops_total,
                "by_purpose": self.by_purpose("storage"),
                "by_phase": self.by_phase("storage"),
            },
            "gc": {"total_bytes": self.gc_bytes_total},
            "overhead_share": self.overhead_share(),
            "episodes": self._episodes_begun,
            "accounts": [
                [domain, proc, peer, purpose, phase, cell[0], cell[1]]
                for (domain, proc, peer, purpose, phase), cell in sorted(
                    self.accounts.items(),
                    key=lambda kv: tuple(map(str, kv[0])),
                )
            ],
        }
        if network_stats is not None and storage_stats is not None:
            out["conservation"] = self.conservation(network_stats, storage_stats)
            out["conserved"] = out["conservation"]["conserved"]
        return out

    # ------------------------------------------------------------------
    # cross-trial dump/merge (repro.runner)
    # ------------------------------------------------------------------
    def dump(self) -> Dict[str, Any]:
        """Picklable, mergeable state (see :func:`merge_cost_dumps`)."""
        return {
            "accounts": [
                [list(key), cell[0], cell[1]]
                for key, cell in sorted(
                    self.accounts.items(), key=lambda kv: tuple(map(str, kv[0]))
                )
            ],
            "wire_messages": self.wire_messages,
            "wire_retransmits": self.wire_retransmits,
            "wire_bytes_total": self.wire_bytes_total,
            "storage_ops_total": self.storage_ops_total,
            "storage_bytes_total": self.storage_bytes_total,
            "gc_bytes_total": self.gc_bytes_total,
            "episodes": self._episodes_begun,
            "flame": [
                [list(stack), size] for stack, size in sorted(self.flame.items())
            ],
        }


def merge_cost_dumps(dumps: List[Dict[str, Any]]) -> CostLedger:
    """Fold per-trial :meth:`CostLedger.dump` outputs into one ledger.

    Accounts and flame stacks sum; counters add.  Folding happens
    strictly in the order given (the runner passes dumps in spec order),
    so merged reports are identical at any job count.  Per-trial
    recovery phases keep their own ordinals — a merged ``recovery-1``
    aggregates every trial's first episode, which is what a sweep report
    wants to compare.
    """
    merged = CostLedger()
    for dump in dumps:
        for key_list, count, nbytes in dump["accounts"]:
            cell = merged._account(*key_list)
            cell[0] += count
            cell[1] += nbytes
        merged.wire_messages += dump["wire_messages"]
        merged.wire_retransmits += dump["wire_retransmits"]
        merged.wire_bytes_total += dump["wire_bytes_total"]
        merged.storage_ops_total += dump["storage_ops_total"]
        merged.storage_bytes_total += dump["storage_bytes_total"]
        merged.gc_bytes_total += dump["gc_bytes_total"]
        merged._episodes_begun = max(merged._episodes_begun, dump["episodes"])
        for stack_list, size in dump.get("flame", []):
            key = tuple(stack_list)
            merged.flame[key] = merged.flame.get(key, 0) + size
    # rebuild the purpose aggregates from the merged accounts
    for (domain, _proc, _peer, purpose, _phase), cell in merged.accounts.items():
        if domain == "wire":
            merged.wire_purpose_bytes[purpose] = (
                merged.wire_purpose_bytes.get(purpose, 0) + cell[1]
            )
        elif domain == "storage":
            merged.storage_purpose_bytes[purpose] = (
                merged.storage_purpose_bytes.get(purpose, 0) + cell[1]
            )
    return merged
