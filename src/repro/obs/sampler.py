"""Time-resolved cost sampling with bounded memory.

:class:`CostSampler` snapshots the :class:`~repro.obs.ledger.CostLedger`
(and a few registry counters) into fixed-width windows of virtual time,
producing the overhead-vs-time curves the ROADMAP's serving scenario
needs (``RunResult.extra["timeseries"]``).

The sampler never schedules simulated events — a kernel timer would
prevent quiescence and perturb event ordering.  Instead it flushes
*lazily*: every ledger charge first closes any window boundary the clock
has passed, so a window's totals contain exactly the charges with
``time < boundary`` (each charge flows through the ledger, and each
flush happens before the triggering charge is applied).  The cost on
the hot path is one float comparison.

Memory is bounded: past ``max_samples`` windows, adjacent pairs merge
and the window width doubles — the curve coarsens instead of growing,
so arbitrarily long runs keep a flat footprint.  Each sample records its
own ``window`` width, so merged (wider) samples render correctly.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional

#: registry counters sampled alongside the ledger (cumulative values)
_REGISTRY_COUNTERS = (
    "net.messages_sent",
    "net.bytes_sent",
    "storage.ops",
    "storage.bytes",
)


class CostSampler:
    """Windowed snapshots of ledger accounts and registry counters.

    Parameters
    ----------
    ledger:
        The :class:`~repro.obs.ledger.CostLedger` to sample; the sampler
        binds itself as ``ledger._sampler`` so charges trigger flushes.
    window:
        Initial window width in virtual seconds.
    max_samples:
        Downsampling threshold: when exceeded, adjacent samples merge
        pairwise and the width doubles (must be >= 2).
    registry:
        Optional :class:`~repro.core.metrics_registry.MetricsRegistry`;
        when given, each sample carries the cumulative values of
        :data:`_REGISTRY_COUNTERS` at the window boundary.
    trace:
        Optional :class:`~repro.sim.trace.TraceRecorder`; when given,
        each closed window is also recorded as a ``cost.sample`` trace
        event, so archived JSONL traces carry the curve (rendered as
        Perfetto counter tracks by :mod:`repro.analysis.chrome`).
    """

    def __init__(
        self,
        ledger: Any,
        window: float,
        max_samples: int = 512,
        registry: Optional[Any] = None,
        trace: Optional[Any] = None,
    ) -> None:
        if window <= 0:
            raise ValueError(f"window must be positive, got {window!r}")
        if max_samples < 2:
            raise ValueError(f"max_samples must be >= 2, got {max_samples!r}")
        self.ledger = ledger
        self.window = float(window)
        self.max_samples = max_samples
        self.trace = trace
        self.samples: List[Dict[str, Any]] = []
        #: the next unflushed window boundary (charges at >= this time
        #: close it first) — read directly by the ledger's hot path
        self.next_boundary = self.window
        self._last = self._cumulative()
        self._counters = None
        if registry is not None:
            # pre-bound instruments, same pattern as Network.registry
            self._counters = [
                registry.counter(name) for name in _REGISTRY_COUNTERS
            ]
        self._finalized = False
        ledger._sampler = self

    # ------------------------------------------------------------------
    def _cumulative(self) -> Dict[str, Any]:
        ledger = self.ledger
        return {
            "wire": dict(ledger.wire_purpose_bytes),
            "wire_bytes": ledger.wire_bytes_total,
            "wire_messages": ledger.wire_messages,
            "storage_bytes": ledger.storage_bytes_total,
            "storage_ops": ledger.storage_ops_total,
            "gc_bytes": ledger.gc_bytes_total,
        }

    def flush_to(self, now: float) -> None:
        """Close every window boundary at or before ``now``.

        Called by the ledger *before* applying the charge timestamped
        ``now``, so the closed windows contain exactly the earlier
        charges.
        """
        while self.next_boundary <= now:
            self._close_window(self.next_boundary)
            self.next_boundary += self.window

    def _close_window(self, boundary: float) -> None:
        current = self._cumulative()
        last = self._last
        wire_delta = {
            purpose: total - last["wire"].get(purpose, 0)
            for purpose, total in current["wire"].items()
            if total - last["wire"].get(purpose, 0)
        }
        sample: Dict[str, Any] = {
            "t": boundary,
            "window": self.window,
            "wire": wire_delta,
            "wire_bytes": current["wire_bytes"] - last["wire_bytes"],
            "wire_messages": current["wire_messages"] - last["wire_messages"],
            "storage_bytes": current["storage_bytes"] - last["storage_bytes"],
            "storage_ops": current["storage_ops"] - last["storage_ops"],
            "gc_bytes": current["gc_bytes"] - last["gc_bytes"],
            "phase": self.ledger.phase,
        }
        if self._counters is not None:
            sample["counters"] = {
                counter.name: counter.value for counter in self._counters
            }
        self._last = current
        self.samples.append(sample)
        if self.trace is not None:
            self.trace.record(
                boundary, "cost", None, "sample",
                window=sample["window"],
                wire=dict(wire_delta),
                wire_bytes=sample["wire_bytes"],
                storage_bytes=sample["storage_bytes"],
                gc_bytes=sample["gc_bytes"],
                phase=sample["phase"],
            )
        if len(self.samples) > self.max_samples:
            self._downsample()

    def _downsample(self) -> None:
        """Merge adjacent sample pairs and double the window width."""
        merged: List[Dict[str, Any]] = []
        samples = self.samples
        i = 0
        while i < len(samples):
            if i + 1 < len(samples):
                a, b = samples[i], samples[i + 1]
                wire: Dict[str, int] = dict(a["wire"])
                for purpose, size in b["wire"].items():
                    wire[purpose] = wire.get(purpose, 0) + size
                combined = {
                    "t": b["t"],
                    "window": a["window"] + b["window"],
                    "wire": wire,
                    "wire_bytes": a["wire_bytes"] + b["wire_bytes"],
                    "wire_messages": a["wire_messages"] + b["wire_messages"],
                    "storage_bytes": a["storage_bytes"] + b["storage_bytes"],
                    "storage_ops": a["storage_ops"] + b["storage_ops"],
                    "gc_bytes": a["gc_bytes"] + b["gc_bytes"],
                    "phase": b["phase"],
                }
                if "counters" in b:
                    combined["counters"] = b["counters"]
                merged.append(combined)
                i += 2
            else:
                merged.append(samples[i])
                i += 1
        self.samples = merged
        self.window *= 2
        # realign the next boundary to the coarser grid
        self.next_boundary = (
            math.ceil(self.next_boundary / self.window) * self.window
        )

    # ------------------------------------------------------------------
    def finalize(self, end_time: float) -> None:
        """Close all complete windows, then one final partial window at
        ``end_time`` so trailing charges are never dropped.  Idempotent
        (``summarize`` may run more than once)."""
        if self._finalized:
            return
        self._finalized = True
        self.flush_to(end_time)
        if self._cumulative() != self._last and end_time > 0:
            # trailing charges past the last full boundary: emit one
            # partial window whose recorded width is its actual span
            start = self.next_boundary - self.window
            saved = self.window
            if end_time > start:
                self.window = end_time - start
            self._close_window(end_time)
            self.window = saved
