"""Network substrate.

Models the paper's 155 Mb/s ATM LAN as reliable FIFO channels between
simulated nodes, with pluggable latency models (:mod:`repro.net.latency`)
and topologies (:mod:`repro.net.topology`).  :class:`repro.net.network.Network`
is the single message bus the protocol stack talks to; it tags every
message with accounting metadata so the harness can report message counts
and bytes per traffic class (application, piggyback, recovery control),
which is exactly the quantity the paper argues has lost its primacy.
"""

from repro.net.latency import (
    AtmLinkModel,
    BandwidthLatency,
    ConstantLatency,
    ExponentialLatency,
    LatencyModel,
    UniformLatency,
)
from repro.net.network import Message, MessageKind, Network, NetworkStats
from repro.net.topology import Topology, full_mesh, ring, star

__all__ = [
    "AtmLinkModel",
    "BandwidthLatency",
    "ConstantLatency",
    "ExponentialLatency",
    "LatencyModel",
    "UniformLatency",
    "Message",
    "MessageKind",
    "Network",
    "NetworkStats",
    "Topology",
    "full_mesh",
    "ring",
    "star",
]
