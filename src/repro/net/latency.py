"""Link latency models.

A latency model maps a message size to a one-way delay.  The default used
throughout the reproduction, :class:`AtmLinkModel`, is parameterised after
the paper's testbed: a 155 Mb/s ATM LAN with sub-millisecond propagation
delay and per-message protocol overhead appropriate to mid-90s stacks.
The argument of the paper only needs the *relative* magnitudes to hold
(network round-trips are orders of magnitude cheaper than stable-storage
access or failure detection), which all these models preserve.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod


class LatencyModel(ABC):
    """Maps ``(size_bytes, rng)`` to a one-way message delay in seconds."""

    @abstractmethod
    def sample(self, size_bytes: int, rng: random.Random) -> float:
        """One-way delay for a message of ``size_bytes``."""

    def min_delay(self) -> float:
        """A lower bound on any delay :meth:`sample` can return.

        This is the conservative lookahead used by the sharded kernel
        (:mod:`repro.sim.shard`): a cross-shard message sent at ``t``
        provably cannot arrive before ``t + min_delay()``, so shards may
        advance that far independently.  The base implementation returns
        ``0.0`` (no lookahead -- a custom model must override this to be
        usable with ``shard_count > 1``).
        """
        return 0.0

    def __call__(self, size_bytes: int, rng: random.Random) -> float:
        return self.sample(size_bytes, rng)


class ConstantLatency(LatencyModel):
    """Fixed delay regardless of size.  Handy for unit tests."""

    def __init__(self, delay: float) -> None:
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay!r}")
        self.delay = delay

    def sample(self, size_bytes: int, rng: random.Random) -> float:
        return self.delay

    def min_delay(self) -> float:
        return self.delay

    def __repr__(self) -> str:
        return f"ConstantLatency({self.delay!r})"


class UniformLatency(LatencyModel):
    """Delay drawn uniformly from ``[low, high]``."""

    def __init__(self, low: float, high: float) -> None:
        if not 0 <= low <= high:
            raise ValueError(f"need 0 <= low <= high, got {low!r}, {high!r}")
        self.low = low
        self.high = high

    def sample(self, size_bytes: int, rng: random.Random) -> float:
        return rng.uniform(self.low, self.high)

    def min_delay(self) -> float:
        return self.low

    def __repr__(self) -> str:
        return f"UniformLatency({self.low!r}, {self.high!r})"


class ExponentialLatency(LatencyModel):
    """``base`` plus an exponential tail with the given mean.

    Approximates queueing jitter on a shared medium.
    """

    def __init__(self, base: float, mean_extra: float) -> None:
        if base < 0 or mean_extra < 0:
            raise ValueError("base and mean_extra must be non-negative")
        self.base = base
        self.mean_extra = mean_extra

    def sample(self, size_bytes: int, rng: random.Random) -> float:
        extra = rng.expovariate(1.0 / self.mean_extra) if self.mean_extra > 0 else 0.0
        return self.base + extra

    def min_delay(self) -> float:
        return self.base

    def __repr__(self) -> str:
        return f"ExponentialLatency(base={self.base!r}, mean_extra={self.mean_extra!r})"


class BandwidthLatency(LatencyModel):
    """``propagation + overhead + size / bandwidth`` with optional jitter.

    Parameters
    ----------
    bandwidth_bps:
        Link bandwidth in *bits* per second.
    propagation:
        Speed-of-light plus switching delay, in seconds.
    per_message_overhead:
        Fixed protocol-stack cost per message (send + receive path), in
        seconds.
    jitter_fraction:
        If non-zero, the total is multiplied by a uniform factor in
        ``[1, 1 + jitter_fraction]``.
    """

    def __init__(
        self,
        bandwidth_bps: float,
        propagation: float = 0.0,
        per_message_overhead: float = 0.0,
        jitter_fraction: float = 0.0,
    ) -> None:
        if bandwidth_bps <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth_bps!r}")
        if propagation < 0 or per_message_overhead < 0 or jitter_fraction < 0:
            raise ValueError("propagation, overhead and jitter must be non-negative")
        self.bandwidth_bps = bandwidth_bps
        self.propagation = propagation
        self.per_message_overhead = per_message_overhead
        self.jitter_fraction = jitter_fraction

    def sample(self, size_bytes: int, rng: random.Random) -> float:
        transmission = (size_bytes * 8.0) / self.bandwidth_bps
        total = self.propagation + self.per_message_overhead + transmission
        if self.jitter_fraction > 0:
            total *= rng.uniform(1.0, 1.0 + self.jitter_fraction)
        return total

    def min_delay(self) -> float:
        # transmission adds >= 0 and jitter multiplies by >= 1, so the
        # fixed terms are a true floor for any message size
        return self.propagation + self.per_message_overhead

    def __repr__(self) -> str:
        return (
            f"BandwidthLatency(bandwidth_bps={self.bandwidth_bps!r}, "
            f"propagation={self.propagation!r}, "
            f"per_message_overhead={self.per_message_overhead!r})"
        )


class AtmLinkModel(BandwidthLatency):
    """The paper's testbed link: 155 Mb/s ATM, mid-90s protocol stack.

    Defaults: 155 Mb/s bandwidth, 50 microseconds propagation/switching,
    and 250 microseconds of per-message software overhead, which puts the
    one-way latency of a small control message in the few-hundred-
    microsecond range -- consistent with the paper's observation that the
    extra recovery communication costs "about milliseconds" in total.
    """

    DEFAULT_BANDWIDTH_BPS = 155e6
    DEFAULT_PROPAGATION = 50e-6
    DEFAULT_OVERHEAD = 250e-6

    def __init__(
        self,
        bandwidth_bps: float = DEFAULT_BANDWIDTH_BPS,
        propagation: float = DEFAULT_PROPAGATION,
        per_message_overhead: float = DEFAULT_OVERHEAD,
        jitter_fraction: float = 0.1,
    ) -> None:
        super().__init__(bandwidth_bps, propagation, per_message_overhead, jitter_fraction)

    def __repr__(self) -> str:
        return "AtmLinkModel()"
