"""The message bus connecting simulated nodes.

:class:`Network` implements reliable FIFO channels (the abstraction the
FBL protocols assume) over a latency model and a topology.  It keeps
per-class accounting -- application traffic, determinant piggybacks and
recovery control messages are counted separately -- because the whole
point of the paper is to weigh the recovery-control column against
stable-storage and blocking costs.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.net.latency import AtmLinkModel, LatencyModel
from repro.net.topology import Topology
from repro.sim.kernel import Simulator
from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceRecorder

#: Bytes charged for the fixed message header (addresses, type, incarnation).
HEADER_BYTES = 64
#: Bytes charged per piggybacked determinant.
DETERMINANT_BYTES = 32


class MessageKind(enum.Enum):
    """Traffic classes used for accounting."""

    APPLICATION = "application"
    PROTOCOL = "protocol"  # failure-free protocol traffic (acks, retransmits)
    RECOVERY = "recovery"  # recovery-time control messages
    STORAGE = "storage"  # traffic to the stable-storage process (f = n)


_msg_ids = itertools.count(1)


@dataclass
class Message:
    """A message in flight.

    ``mtype`` is the protocol-level type string (``"app"``,
    ``"depinfo_request"``, ...); ``kind`` is the accounting class.
    ``piggyback`` carries serialized determinants for the logging
    protocols and is charged :data:`DETERMINANT_BYTES` each.
    """

    src: int
    dst: int
    kind: MessageKind
    mtype: str
    payload: Dict[str, Any] = field(default_factory=dict)
    body_bytes: int = 0
    piggyback: List[Any] = field(default_factory=list)
    incarnation: int = 0
    ssn: Optional[int] = None
    msg_id: int = field(default_factory=lambda: next(_msg_ids))
    send_time: float = 0.0

    @property
    def size_bytes(self) -> int:
        """Total wire size: header + body + piggybacked determinants."""
        return HEADER_BYTES + self.body_bytes + DETERMINANT_BYTES * len(self.piggyback)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Message(#{self.msg_id} {self.mtype} {self.src}->{self.dst} "
            f"inc={self.incarnation} ssn={self.ssn} {self.size_bytes}B)"
        )


@dataclass
class NetworkStats:
    """Message/byte counters, split by :class:`MessageKind`."""

    messages: Dict[str, int] = field(default_factory=dict)
    bytes: Dict[str, int] = field(default_factory=dict)
    dropped: int = 0

    def record(self, kind: MessageKind, size: int) -> None:
        key = kind.value
        self.messages[key] = self.messages.get(key, 0) + 1
        self.bytes[key] = self.bytes.get(key, 0) + size

    def total_messages(self) -> int:
        return sum(self.messages.values())

    def total_bytes(self) -> int:
        return sum(self.bytes.values())

    def of_kind(self, kind: MessageKind) -> Tuple[int, int]:
        """(messages, bytes) of one traffic class."""
        return self.messages.get(kind.value, 0), self.bytes.get(kind.value, 0)


class Network:
    """Reliable FIFO message transport between registered handlers.

    Parameters
    ----------
    sim:
        The simulation kernel messages are scheduled on.
    topology:
        Which node pairs may communicate, and per-link latency overrides.
    latency:
        Default latency model (defaults to the paper's ATM link).
    rngs:
        Random streams; latency jitter draws from ``"net.latency"``.
    trace:
        Optional trace recorder for send/deliver events.

    Notes
    -----
    FIFO order per directed channel is enforced by never scheduling a
    delivery earlier than the previous delivery on the same channel.
    Messages to unregistered destinations count as dropped (this happens
    naturally while a node is crashed and deregistered).
    """

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        latency: Optional[LatencyModel] = None,
        rngs: Optional[RngRegistry] = None,
        trace: Optional[TraceRecorder] = None,
    ) -> None:
        self.sim = sim
        self.topology = topology
        self.latency = latency or AtmLinkModel()
        self.rngs = rngs or RngRegistry(0)
        self.trace = trace
        self.stats = NetworkStats()
        self._handlers: Dict[int, Callable[[Message], None]] = {}
        self._channel_clock: Dict[Tuple[int, int], float] = {}

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def register(self, node_id: int, handler: Callable[[Message], None]) -> None:
        """Attach the receive handler for ``node_id``."""
        self._handlers[node_id] = handler

    def deregister(self, node_id: int) -> None:
        """Detach ``node_id``; in-flight messages to it will be dropped."""
        self._handlers.pop(node_id, None)

    def is_registered(self, node_id: int) -> bool:
        """Whether ``node_id`` currently has a handler attached."""
        return node_id in self._handlers

    # ------------------------------------------------------------------
    # sending
    # ------------------------------------------------------------------
    def send(self, message: Message) -> Message:
        """Queue ``message`` for FIFO delivery to ``message.dst``."""
        src, dst = message.src, message.dst
        if not self.topology.connected(src, dst):
            raise ValueError(f"no link {src}->{dst} in topology")
        message.send_time = self.sim.now

        model = self.topology.link_latency(src, dst) or self.latency
        rng = self.rngs.stream("net.latency")
        delay = model.sample(message.size_bytes, rng)

        channel = (src, dst)
        earliest = self._channel_clock.get(channel, 0.0)
        deliver_at = max(self.sim.now + delay, earliest)
        self._channel_clock[channel] = deliver_at

        self.stats.record(message.kind, message.size_bytes)
        if self.trace is not None:
            self.trace.record(
                self.sim.now,
                "net",
                src,
                "send",
                dst=dst,
                mtype=message.mtype,
                kind=message.kind.value,
                size=message.size_bytes,
                msg_id=message.msg_id,
            )
        self.sim.schedule_at(deliver_at, self._deliver, message, label=f"deliver:{message.mtype}")
        return message

    def broadcast(
        self,
        src: int,
        dsts: Iterable[int],
        kind: MessageKind,
        mtype: str,
        payload_fn: Optional[Callable[[int], Dict[str, Any]]] = None,
        body_bytes: int = 0,
        incarnation: int = 0,
    ) -> List[Message]:
        """Send one message per destination; returns them in dst order."""
        sent = []
        for dst in sorted(set(dsts)):
            if dst == src:
                continue
            payload = payload_fn(dst) if payload_fn is not None else {}
            sent.append(
                self.send(
                    Message(
                        src=src,
                        dst=dst,
                        kind=kind,
                        mtype=mtype,
                        payload=payload,
                        body_bytes=body_bytes,
                        incarnation=incarnation,
                    )
                )
            )
        return sent

    # ------------------------------------------------------------------
    def _deliver(self, message: Message) -> None:
        handler = self._handlers.get(message.dst)
        if handler is None:
            self.stats.dropped += 1
            if self.trace is not None:
                self.trace.record(
                    self.sim.now,
                    "net",
                    message.dst,
                    "drop",
                    src=message.src,
                    mtype=message.mtype,
                    msg_id=message.msg_id,
                )
            return
        if self.trace is not None:
            self.trace.record(
                self.sim.now,
                "net",
                message.dst,
                "deliver",
                src=message.src,
                mtype=message.mtype,
                kind=message.kind.value,
                msg_id=message.msg_id,
            )
        handler(message)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Network(nodes={len(self.topology.nodes)}, "
            f"sent={self.stats.total_messages()}, dropped={self.stats.dropped})"
        )
