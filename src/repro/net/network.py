"""The message bus connecting simulated nodes.

:class:`Network` implements FIFO channels over a latency model and a
topology.  By default the channels are *perfect* (the abstraction the FBL
protocols assume); an optional :class:`~repro.net.faults.NetworkFaultModel`
makes them lossy/duplicating/reordering/partitioned, and an optional
:class:`~repro.net.transport.ReliableTransport` re-establishes the
reliable-FIFO abstraction above those faults.  The bus keeps per-class
accounting -- application traffic, determinant piggybacks, recovery
control messages, and now the transport's own retransmissions and acks
are counted separately -- because the whole point of the paper is to
weigh the recovery-control column against stable-storage and blocking
costs (and, with faults on, the cost of reliability itself).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.net.faults import NetworkFaultModel
from repro.net.latency import AtmLinkModel, LatencyModel
from repro.net.topology import Topology
from repro.sim.kernel import Simulator
from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceRecorder

#: Default bytes charged for the fixed message header (addresses, type,
#: incarnation).  Per-run values live on :attr:`Network.header_bytes`
#: (``SystemConfig.header_bytes``); these module constants remain the
#: defaults and the seed's original cost model.
HEADER_BYTES = 64
#: Default bytes charged per piggybacked determinant (see
#: :attr:`Network.determinant_bytes` / ``SystemConfig.determinant_bytes``).
DETERMINANT_BYTES = 32


class MessageKind(enum.Enum):
    """Traffic classes used for accounting."""

    APPLICATION = "application"
    PROTOCOL = "protocol"  # failure-free protocol traffic (acks, retransmits)
    RECOVERY = "recovery"  # recovery-time control messages
    STORAGE = "storage"  # traffic to the stable-storage process (f = n)
    TRANSPORT = "transport"  # reliable-transport control (acks)


@dataclass(slots=True)
class Message:
    """A message in flight.

    ``mtype`` is the protocol-level type string (``"app"``,
    ``"depinfo_request"``, ...); ``kind`` is the accounting class.
    ``piggyback`` carries serialized determinants for the logging
    protocols and is charged :data:`DETERMINANT_BYTES` each.
    ``msg_id`` is stamped by the :class:`Network` at transmission time
    (each network owns its own counter, so two runs in one process never
    share an id sequence); ``transport_seq``/``transport_epoch`` are set
    by the reliable transport when one is installed.

    ``slots=True``: a run at scale holds tens of thousands of messages
    in flight; the per-instance ``__dict__`` would roughly double their
    footprint for no benefit.
    """

    src: int
    dst: int
    kind: MessageKind
    mtype: str
    payload: Dict[str, Any] = field(default_factory=dict)
    body_bytes: int = 0
    piggyback: List[Any] = field(default_factory=list)
    incarnation: int = 0
    ssn: Optional[int] = None
    msg_id: int = 0
    send_time: float = 0.0
    transport_seq: Optional[int] = None
    transport_epoch: int = 0

    @property
    def size_bytes(self) -> int:
        """Total wire size: header + body + piggybacked determinants."""
        return HEADER_BYTES + self.body_bytes + DETERMINANT_BYTES * len(self.piggyback)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Message(#{self.msg_id} {self.mtype} {self.src}->{self.dst} "
            f"inc={self.incarnation} ssn={self.ssn} {self.size_bytes}B)"
        )


@dataclass
class NetworkStats:
    """Message/byte counters, split by :class:`MessageKind`.

    Drops are accounted twice over: by message kind and by cause
    (``no_handler`` for messages to a crashed/unregistered node, plus the
    injected ``loss``/``partition``/``scheduled`` causes).  Transport
    retransmissions are counted apart from first transmissions so the
    cost of reliability shows up as its own ledger column.
    """

    messages: Dict[str, int] = field(default_factory=dict)
    bytes: Dict[str, int] = field(default_factory=dict)
    dropped: int = 0
    drops_by_kind: Dict[str, int] = field(default_factory=dict)
    drops_by_cause: Dict[str, int] = field(default_factory=dict)
    retransmits: int = 0
    retransmit_bytes: int = 0
    duplicates_injected: int = 0

    def record(self, kind: MessageKind, size: int) -> None:
        key = kind.value
        self.messages[key] = self.messages.get(key, 0) + 1
        self.bytes[key] = self.bytes.get(key, 0) + size

    def record_retransmit(self, size: int) -> None:
        self.retransmits += 1
        self.retransmit_bytes += size

    def record_drop(self, kind: MessageKind, cause: str) -> None:
        self.dropped += 1
        self.drops_by_kind[kind.value] = self.drops_by_kind.get(kind.value, 0) + 1
        self.drops_by_cause[cause] = self.drops_by_cause.get(cause, 0) + 1

    def total_messages(self) -> int:
        return sum(self.messages.values())

    def total_bytes(self) -> int:
        return sum(self.bytes.values())

    def of_kind(self, kind: MessageKind) -> Tuple[int, int]:
        """(messages, bytes) of one traffic class."""
        return self.messages.get(kind.value, 0), self.bytes.get(kind.value, 0)


class Network:
    """FIFO message transport between registered handlers.

    Parameters
    ----------
    sim:
        The simulation kernel messages are scheduled on.
    topology:
        Which node pairs may communicate, and per-link latency overrides.
    latency:
        Default latency model (defaults to the paper's ATM link).
    rngs:
        Random streams; latency jitter draws from ``"net.latency"``,
        fault decisions from ``"net.faults"``.
    trace:
        Optional trace recorder for send/deliver events.
    faults:
        Optional fault model.  ``None`` (the default) keeps the perfect
        reliable-FIFO channels of the seed simulator, bit for bit.

    Notes
    -----
    FIFO order per directed channel is enforced by never scheduling a
    delivery earlier than the previous delivery on the same channel.
    Injected reorderings and duplicates bypass that clamp on purpose;
    the reliable transport (when installed) restores ordering above.
    Messages to unregistered destinations count as dropped (this happens
    naturally while a node is crashed and deregistered).
    """

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        latency: Optional[LatencyModel] = None,
        rngs: Optional[RngRegistry] = None,
        trace: Optional[TraceRecorder] = None,
        faults: Optional[NetworkFaultModel] = None,
        header_bytes: int = HEADER_BYTES,
        determinant_bytes: int = DETERMINANT_BYTES,
    ) -> None:
        self.sim = sim
        self.topology = topology
        self.latency = latency or AtmLinkModel()
        self.rngs = rngs or RngRegistry(0)
        self.trace = trace
        self.faults = faults
        #: wire-cost knobs (SystemConfig.header_bytes / determinant_bytes);
        #: the defaults reproduce the seed's hardcoded cost model exactly
        self.header_bytes = header_bytes
        self.determinant_bytes = determinant_bytes
        #: optional repro.obs.CostLedger (set by System; None = zero cost)
        self.cost = None
        #: set by ReliableTransport when one is layered on this network
        self.transport = None
        #: pre-bound metric instruments (see the ``registry`` setter)
        self._registry = None
        self._ctr_messages = None
        self._ctr_bytes = None
        self._hist_bytes = None
        # pre-bound trace emitters: one per (category, action) on the
        # per-message hot path, so transmit/deliver skip the per-call key
        # build (and TraceEvent construction on counters-only sweeps)
        if trace is not None:
            self._emit_send = trace.emitter("net", "send")
            self._emit_retransmit = trace.emitter("net", "retransmit")
            self._emit_lose = trace.emitter("net", "lose")
            self._emit_drop = trace.emitter("net", "drop")
            self._emit_deliver = trace.emitter("net", "deliver")
        self.stats = NetworkStats()
        self._handlers: Dict[int, Callable[[Message], None]] = {}
        #: FIFO clamp per directed channel, keyed by ``(src << 21) | dst``
        #: -- node ids are non-negative and far below 2**21, and one int
        #: key is cheaper to hash per message than a (src, dst) tuple
        self._channel_clock: Dict[int, float] = {}
        #: per-mtype deliver labels, interned once instead of an f-string
        #: build per message on the hot path
        self._deliver_labels: Dict[str, str] = {}
        self._dup_labels: Dict[str, str] = {}
        self._msg_ids = itertools.count(1)
        #: sharded-kernel delivery hook, discovered by duck typing: the
        #: ShardedSimulator exposes schedule_message(time, node, fn, ...)
        #: to home a delivery on the destination's shard.  None for the
        #: plain Simulator -- one identity check per message, and the
        #: single-heap path stays byte-identical to the seed.
        self._sched_msg = getattr(sim, "schedule_message", None)

    @property
    def registry(self):
        """Optional :class:`~repro.core.metrics_registry.MetricsRegistry`.

        Assigned by :class:`~repro.core.system.System` after construction;
        the setter pre-binds the per-message instruments so ``transmit``
        pays attribute loads instead of name resolution per message.
        """
        return self._registry

    @registry.setter
    def registry(self, registry) -> None:
        self._registry = registry
        if registry is None:
            self._ctr_messages = self._ctr_bytes = self._hist_bytes = None
        else:
            self._ctr_messages = registry.counter("net.messages_sent")
            self._ctr_bytes = registry.counter("net.bytes_sent")
            self._hist_bytes = registry.histogram("net.message_bytes")

    # ------------------------------------------------------------------
    # lookahead
    # ------------------------------------------------------------------
    def min_latency(self) -> float:
        """Lower bound on any one-way delivery delay on this network.

        The minimum :meth:`~repro.net.latency.LatencyModel.min_delay`
        over the default model and every per-link override.  This is the
        conservative lookahead the sharded kernel advances by: fault
        models only ever *add* delay (reordering) or remove deliveries
        (loss/partition), and the FIFO clamp only pushes deliveries
        later, so no code path can deliver below this floor.
        """
        floor = self.latency.min_delay()
        for model in self.topology.latency_override_models():
            floor = min(floor, model.min_delay())
        return floor

    # ------------------------------------------------------------------
    # fault model
    # ------------------------------------------------------------------
    def ensure_faults(self) -> NetworkFaultModel:
        """The installed fault model, creating a no-op one on demand."""
        if self.faults is None:
            self.faults = NetworkFaultModel()
        return self.faults

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def register(self, node_id: int, handler: Callable[[Message], None]) -> None:
        """Attach the receive handler for ``node_id``."""
        self._handlers[node_id] = handler

    def deregister(self, node_id: int) -> None:
        """Detach ``node_id``; in-flight messages to it will be dropped."""
        self._handlers.pop(node_id, None)
        if self.transport is not None:
            self.transport.on_deregister(node_id)

    def is_registered(self, node_id: int) -> bool:
        """Whether ``node_id`` currently has a handler attached."""
        return node_id in self._handlers

    # ------------------------------------------------------------------
    # sending
    # ------------------------------------------------------------------
    def send(self, message: Message) -> Message:
        """Queue ``message`` for FIFO delivery to ``message.dst``.

        With a reliable transport installed, the message is handed to it
        (sequence number, retransmission until acked); otherwise it goes
        straight onto the wire.
        """
        if self.transport is not None and self.transport.handles(message):
            return self.transport.send(message)
        return self.transmit(message)

    def transmit(self, message: Message, retransmit: bool = False) -> Message:
        """Put one message on the wire (the raw, possibly faulty path)."""
        src, dst = message.src, message.dst
        if not self.topology.connected(src, dst):
            raise ValueError(f"no link {src}->{dst} in topology")
        message.send_time = self.sim.now
        message.msg_id = next(self._msg_ids)
        # header+body+piggyback, computed once from the per-run wire costs
        piggyback_bytes = self.determinant_bytes * len(message.piggyback)
        size = self.header_bytes + message.body_bytes + piggyback_bytes

        if retransmit:
            self.stats.record_retransmit(size)
        else:
            self.stats.record(message.kind, size)
        if self._registry is not None:
            self._ctr_messages.inc()
            self._ctr_bytes.inc(size)
            self._hist_bytes.observe(size)
        if self.cost is not None:
            # charged beside stats.record so ledger sums conserve exactly
            self.cost.charge_wire(
                self.sim.now, src, dst, message.kind.value, message.mtype,
                size, self.header_bytes, piggyback_bytes, retransmit,
            )
        if self.trace is not None:
            emit = self._emit_retransmit if retransmit else self._emit_send
            emit(
                self.sim.now,
                src,
                dst=dst,
                mtype=message.mtype,
                kind=message.kind.value,
                size=size,
                msg_id=message.msg_id,
            )

        decision = None
        if self.faults is not None:
            decision = self.faults.decide(
                src, dst, message.mtype, self.sim.now, self.rngs.stream("net.faults")
            )
            if decision.dropped:
                self.stats.record_drop(message.kind, decision.drop_cause)
                if self.trace is not None:
                    self._emit_lose(
                        self.sim.now,
                        src,
                        dst=dst,
                        mtype=message.mtype,
                        cause=decision.drop_cause,
                        msg_id=message.msg_id,
                    )
                return message

        model = self.topology.link_latency(src, dst) or self.latency
        rng = self.rngs.stream("net.latency")
        delay = model.sample(size, rng)

        channel = (src << 21) | dst
        if decision is not None and decision.extra_delay > 0:
            # reordered: bypass the FIFO clamp so later sends may overtake
            deliver_at = self.sim.now + delay + decision.extra_delay
        else:
            earliest = self._channel_clock.get(channel, 0.0)
            deliver_at = max(self.sim.now + delay, earliest)
            self._channel_clock[channel] = deliver_at
        # deliveries are fire-and-forget (never cancelled), so they take
        # the kernel's handle-free pooled path; the label is interned
        # once per mtype rather than f-string-built per message
        label = self._deliver_labels.get(message.mtype)
        if label is None:
            label = self._deliver_labels.setdefault(
                message.mtype, f"deliver:{message.mtype}"
            )
        if self._sched_msg is not None:
            self._sched_msg(deliver_at, dst, self._deliver, message, label=label)
        else:
            self.sim.schedule_fast_at(deliver_at, self._deliver, message, label=label)

        if decision is not None and decision.duplicates:
            # the copy's latency draws from the faults stream, so injected
            # duplicates never perturb the primary latency sequence
            dup_rng = self.rngs.stream("net.faults")
            dup_label = self._dup_labels.get(message.mtype)
            if dup_label is None:
                dup_label = self._dup_labels.setdefault(
                    message.mtype, f"deliver-dup:{message.mtype}"
                )
            for _ in range(decision.duplicates):
                self.stats.duplicates_injected += 1
                dup_delay = model.sample(size, dup_rng)
                if self._sched_msg is not None:
                    self._sched_msg(
                        self.sim.now + dup_delay,
                        dst,
                        self._deliver,
                        message,
                        label=dup_label,
                    )
                else:
                    self.sim.schedule_fast_at(
                        self.sim.now + dup_delay,
                        self._deliver,
                        message,
                        label=dup_label,
                    )
        return message

    def broadcast(
        self,
        src: int,
        dsts: Iterable[int],
        kind: MessageKind,
        mtype: str,
        payload_fn: Optional[Callable[[int], Dict[str, Any]]] = None,
        body_bytes: int = 0,
        incarnation: int = 0,
    ) -> List[Message]:
        """Send one message per destination; returns them in dst order."""
        sent = []
        for dst in sorted(set(dsts)):
            if dst == src:
                continue
            payload = payload_fn(dst) if payload_fn is not None else {}
            sent.append(
                self.send(
                    Message(
                        src=src,
                        dst=dst,
                        kind=kind,
                        mtype=mtype,
                        payload=payload,
                        body_bytes=body_bytes,
                        incarnation=incarnation,
                    )
                )
            )
        return sent

    # ------------------------------------------------------------------
    def _deliver(self, message: Message) -> None:
        if self.transport is not None:
            if message.kind is MessageKind.TRANSPORT:
                self.transport.on_ack(message)
                return
            if message.transport_seq is not None:
                self.transport.on_receive(message)
                return
        self.hand_to_handler(message)

    def hand_to_handler(self, message: Message) -> None:
        """Final delivery step: trace and invoke the destination handler."""
        handler = self._handlers.get(message.dst)
        if handler is None:
            self.stats.record_drop(message.kind, "no_handler")
            if self.trace is not None:
                self._emit_drop(
                    self.sim.now,
                    message.dst,
                    src=message.src,
                    mtype=message.mtype,
                    msg_id=message.msg_id,
                )
            return
        if self.trace is not None:
            self._emit_deliver(
                self.sim.now,
                message.dst,
                src=message.src,
                mtype=message.mtype,
                kind=message.kind.value,
                msg_id=message.msg_id,
            )
        handler(message)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Network(nodes={len(self.topology.nodes)}, "
            f"sent={self.stats.total_messages()}, dropped={self.stats.dropped})"
        )
