"""Reliable channel layer over a faulty network.

The recovery protocols in this reproduction assume reliable FIFO
channels.  The seed simulator provided them by fiat; once the network
can lose, duplicate, and reorder messages (:mod:`repro.net.faults`), the
abstraction must be *implemented* -- which is exactly what real
message-logging deployments do at the library layer.
:class:`ReliableTransport` re-establishes it:

* per-directed-channel sequence numbers and in-order delivery (out of
  order arrivals are buffered),
* cumulative acknowledgements,
* retransmission timers with exponential backoff and a cap, giving up
  after a bounded number of attempts,
* duplicate suppression keyed by ``(channel, epoch, seq)``, where the
  *epoch* plays the role of the sender's incarnation: it is bumped
  whenever either endpoint of the channel deregisters (crashes), so a
  restarted process starts a fresh sequence space and stale messages
  from the previous connection are rejected.

Messages the transport could not deliver because the destination host
crashed are *not* replayed by the transport -- that is the job of the
recovery protocols above (their send logs and retransmission service).
The transport only guarantees exactly-once, in-order delivery per
connection epoch, which is all the protocols assume of the network.

All transport overhead (retransmissions, acks) flows into
:class:`~repro.net.network.NetworkStats` as its own accounting class, so
the paper's communication-cost ledger now shows the cost of reliability
itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple

from repro.net.network import Message, MessageKind, Network
from repro.sim.kernel import Simulator
from repro.sim.trace import TraceRecorder

Channel = Tuple[int, int]  # (src, dst)


@dataclass
class TransportParams:
    """Tuning of the retransmission state machine."""

    #: initial retransmission timeout, seconds (a few network RTTs)
    rto: float = 0.025
    #: multiplicative backoff applied per retry
    backoff: float = 2.0
    #: cap on the backed-off timeout
    max_rto: float = 0.5
    #: retransmission attempts before giving up on a message
    max_retries: int = 10

    def __post_init__(self) -> None:
        if self.rto <= 0 or self.max_rto <= 0:
            raise ValueError("rto and max_rto must be positive")
        if self.backoff < 1.0:
            raise ValueError(f"backoff must be >= 1, got {self.backoff!r}")
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries!r}")

    def timeout_for(self, attempts: int) -> float:
        """The RTO after ``attempts`` prior transmissions of a message."""
        return min(self.rto * (self.backoff ** attempts), self.max_rto)


@dataclass
class TransportStats:
    """Counters for the reliability machinery itself."""

    sent: int = 0
    acks_sent: int = 0
    dup_suppressed: int = 0
    out_of_order_buffered: int = 0
    gave_up: int = 0
    aborted_on_reset: int = 0
    stale_dropped: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "sent": self.sent,
            "acks_sent": self.acks_sent,
            "dup_suppressed": self.dup_suppressed,
            "out_of_order_buffered": self.out_of_order_buffered,
            "gave_up": self.gave_up,
            "aborted_on_reset": self.aborted_on_reset,
            "stale_dropped": self.stale_dropped,
        }


@dataclass
class _InFlight:
    message: Message
    attempts: int = 0
    handle: Optional[object] = None


@dataclass
class _RecvState:
    epoch: int
    expected: int = 0
    buffer: Dict[int, Message] = field(default_factory=dict)


class ReliableTransport:
    """Implements reliable FIFO channels on a lossy :class:`Network`.

    Installing the transport redirects every :meth:`Network.send` through
    sequence-number assignment and retransmission; deliveries are
    reordered back into sequence before reaching the registered handler.
    The protocols above run unmodified.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        params: Optional[TransportParams] = None,
        trace: Optional[TraceRecorder] = None,
    ) -> None:
        self.sim = sim
        self.network = network
        self.params = params or TransportParams()
        self.trace = trace
        #: pre-bound metric instruments (see the ``registry`` setter)
        self._registry = None
        self._ctr_retransmits = None
        self._ctr_acks = None
        self.stats = TransportStats()
        self._send_seq: Dict[Channel, int] = {}
        self._epoch: Dict[Channel, int] = {}
        self._pending: Dict[Channel, Dict[int, _InFlight]] = {}
        self._recv: Dict[Channel, _RecvState] = {}
        # per-channel retransmit-epoch spans: first retransmit opens one,
        # the last outstanding retransmitted seq being acked (or the
        # channel giving up / resetting) closes it
        self._retx_span: Dict[Channel, int] = {}
        self._retx_seqs: Dict[Channel, set] = {}
        network.transport = self

    @property
    def registry(self):
        """Optional :class:`~repro.core.metrics_registry.MetricsRegistry`.

        Assigned by :class:`~repro.core.system.System` after construction;
        the setter pre-binds the hot-path counters so timeouts and acks
        skip per-call instrument lookup.
        """
        return self._registry

    @registry.setter
    def registry(self, registry) -> None:
        self._registry = registry
        if registry is None:
            self._ctr_retransmits = self._ctr_acks = None
        else:
            self._ctr_retransmits = registry.counter("transport.retransmits")
            self._ctr_acks = registry.counter("transport.acks_sent")

    # ------------------------------------------------------------------
    # retransmit-epoch spans
    # ------------------------------------------------------------------
    def _retx_note(self, channel: Channel, seq: int) -> None:
        if self.trace is None or not self.trace.spans.enabled:
            return
        seqs = self._retx_seqs.setdefault(channel, set())
        seqs.add(seq)
        if channel not in self._retx_span:
            span = self.trace.spans.begin(
                "transport.retransmit_epoch",
                channel[0],
                self.sim.now,
                dst=channel[1],
            )
            if span is not None:
                self._retx_span[channel] = span

    def _retx_resolve(self, channel: Channel, seq: int) -> None:
        seqs = self._retx_seqs.get(channel)
        if seqs is None:
            return
        seqs.discard(seq)
        if not seqs:
            self._retx_close(channel)

    def _retx_close(self, channel: Channel, **attrs) -> None:
        self._retx_seqs.pop(channel, None)
        span = self._retx_span.pop(channel, None)
        if span is not None:
            self.trace.spans.end(span, self.sim.now, **attrs)

    # ------------------------------------------------------------------
    # sender side
    # ------------------------------------------------------------------
    def handles(self, message: Message) -> bool:
        """Whether this message class is carried reliably (all but acks)."""
        return message.kind is not MessageKind.TRANSPORT

    def send(self, message: Message) -> Message:
        channel = (message.src, message.dst)
        seq = self._send_seq.get(channel, 0)
        self._send_seq[channel] = seq + 1
        message.transport_seq = seq
        message.transport_epoch = self._epoch.get(channel, 0)
        entry = _InFlight(message=message)
        self._pending.setdefault(channel, {})[seq] = entry
        self.stats.sent += 1
        self.network.transmit(message)
        self._arm(channel, seq, entry)
        return message

    def _arm(self, channel: Channel, seq: int, entry: _InFlight) -> None:
        entry.handle = self.sim.schedule(
            self.params.timeout_for(entry.attempts),
            self._on_timeout,
            channel,
            seq,
            label=f"transport.rto:{channel[0]}->{channel[1]}",
        )

    def _on_timeout(self, channel: Channel, seq: int) -> None:
        entry = self._pending.get(channel, {}).get(seq)
        if entry is None:
            return  # acked, or the channel was reset
        entry.attempts += 1
        if entry.attempts > self.params.max_retries:
            # connection reset (as TCP does on retry exhaustion): abort
            # everything pending on the channel and bump the epoch, so a
            # later send does not leave a sequence hole the receiver would
            # wait on forever
            self.stats.gave_up += 1
            if self.trace is not None:
                self.trace.record(
                    self.sim.now, "transport", channel[0], "give_up",
                    dst=channel[1], seq=seq, mtype=entry.message.mtype,
                )
            del self._pending[channel][seq]
            self._reset_channel(channel)
            return
        # retransmit a clone so the copy already in flight keeps its
        # own msg_id/send_time in the trace
        self._retx_note(channel, seq)
        if self._ctr_retransmits is not None:
            self._ctr_retransmits.inc()
        clone = replace(entry.message)
        self.network.transmit(clone, retransmit=True)
        self._arm(channel, seq, entry)

    def _reset_channel(self, channel: Channel) -> None:
        """Abort the channel's in-flight window and start a new epoch."""
        pending = self._pending.pop(channel, {})
        for entry in pending.values():
            if entry.handle is not None:
                entry.handle.cancel()
        self._retx_close(channel, gave_up=True)
        self.stats.aborted_on_reset += len(pending)
        self._epoch[channel] = self._epoch.get(channel, 0) + 1
        self._send_seq[channel] = 0

    def on_ack(self, message: Message) -> None:
        """A cumulative ack arrived back at the original sender."""
        src, dst = message.payload["channel"]
        channel = (src, dst)
        if message.payload["epoch"] != self._epoch.get(channel, 0):
            self.stats.stale_dropped += 1
            return
        cum = message.payload["cum"]
        pending = self._pending.get(channel)
        if not pending:
            return
        for seq in [s for s in pending if s <= cum]:
            entry = pending.pop(seq)
            if entry.handle is not None:
                entry.handle.cancel()
            self._retx_resolve(channel, seq)

    # ------------------------------------------------------------------
    # receiver side
    # ------------------------------------------------------------------
    def on_receive(self, message: Message) -> None:
        channel = (message.src, message.dst)
        if not self.network.is_registered(message.dst):
            # the destination host is down; never ack on its behalf
            self.network.stats.record_drop(message.kind, "no_handler")
            return
        state = self._recv.get(channel)
        if state is None or message.transport_epoch > state.epoch:
            state = _RecvState(epoch=message.transport_epoch)
            self._recv[channel] = state
        elif message.transport_epoch < state.epoch:
            self.stats.stale_dropped += 1
            return
        seq = message.transport_seq
        if seq < state.expected or seq in state.buffer:
            self.stats.dup_suppressed += 1
            self._send_ack(channel, state)
            return
        if seq != state.expected:
            self.stats.out_of_order_buffered += 1
        state.buffer[seq] = message
        while self._recv.get(channel) is state:
            next_msg = state.buffer.pop(state.expected, None)
            if next_msg is None:
                break
            state.expected += 1
            # the handler may crash the node (trace-triggered injection),
            # resetting this channel -- the loop guard re-checks identity
            self.network.hand_to_handler(next_msg)
        if self._recv.get(channel) is state:
            self._send_ack(channel, state)

    def _send_ack(self, channel: Channel, state: _RecvState) -> None:
        src, dst = channel
        if not self.network.topology.connected(dst, src):
            return  # one-way link: rely on the sender's give-up bound
        if not self.network.is_registered(dst):
            return  # receiver crashed while draining its buffer
        self.stats.acks_sent += 1
        if self._ctr_acks is not None:
            self._ctr_acks.inc()
        self.network.transmit(
            Message(
                src=dst,
                dst=src,
                kind=MessageKind.TRANSPORT,
                mtype="transport_ack",
                payload={"channel": [src, dst], "epoch": state.epoch,
                         "cum": state.expected - 1},
                body_bytes=0,
            )
        )

    # ------------------------------------------------------------------
    # crash handling
    # ------------------------------------------------------------------
    def on_deregister(self, node_id: int) -> None:
        """A host went down: reset the channel state that was volatile
        *at that host*.

        Toward the crashed node (``* -> node``): unacked messages are
        aborted -- the transport does not replay traffic to a crashed
        destination, the recovery protocols' send logs do -- and the
        channel gets a new epoch, so the restarted incarnation begins a
        fresh sequence space and pre-crash stragglers are rejected as
        stale.

        Away from the crashed node (``node -> *``): nothing is touched.
        A message the channel has accepted stays its responsibility until
        acknowledged, exactly like the seed's in-flight messages, which
        outlive their sender's crash because they live in the network,
        not in the sender.  Aborting these would silently lose messages
        (and FBL's piggybacked determinants with them) that the perfect
        network would have delivered.
        """
        for channel in list(self._pending):
            if channel[1] == node_id:
                pending = self._pending.pop(channel)
                for entry in pending.values():
                    if entry.handle is not None:
                        entry.handle.cancel()
                self._retx_close(channel, aborted=True)
                self.stats.aborted_on_reset += len(pending)
        for channel in list(self._epoch.keys() | self._send_seq.keys()
                            | self._recv.keys()):
            if channel[1] == node_id:
                self._epoch[channel] = self._epoch.get(channel, 0) + 1
                self._send_seq[channel] = 0
        for channel in list(self._recv):
            if channel[1] == node_id:
                del self._recv[channel]  # the receiver's state was volatile

    # ------------------------------------------------------------------
    def unacked(self) -> int:
        """Messages still awaiting acknowledgement (tests/assertions)."""
        return sum(len(p) for p in self._pending.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ReliableTransport(sent={self.stats.sent}, "
            f"unacked={self.unacked()}, gave_up={self.stats.gave_up})"
        )
