"""Connectivity graphs between simulated nodes.

A :class:`Topology` says which ordered pairs of nodes may exchange
messages and optionally overrides the latency model per link.  The
reproduction's experiments all use the full mesh (the paper's LAN), but
ring and star are provided for workload variety and for exercising the
protocols on sparser communication patterns.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.net.latency import LatencyModel


class Topology:
    """Directed connectivity between node ids.

    Parameters
    ----------
    nodes:
        The node ids participating in the network.
    links:
        Ordered pairs allowed to communicate.  If ``None``, the topology
        is a full mesh (excluding self-links).
    """

    def __init__(
        self,
        nodes: Iterable[int],
        links: Optional[Iterable[Tuple[int, int]]] = None,
    ) -> None:
        self.nodes: List[int] = sorted(set(nodes))
        if len(self.nodes) < 1:
            raise ValueError("topology needs at least one node")
        node_set = set(self.nodes)
        if links is None:
            self._links: Set[Tuple[int, int]] = {
                (a, b) for a in self.nodes for b in self.nodes if a != b
            }
        else:
            self._links = set()
            for src, dst in links:
                if src not in node_set or dst not in node_set:
                    raise ValueError(f"link ({src}, {dst}) references unknown node")
                if src == dst:
                    raise ValueError(f"self-link ({src}, {dst}) not allowed")
                self._links.add((src, dst))
        self._latency_overrides: Dict[Tuple[int, int], LatencyModel] = {}

    # ------------------------------------------------------------------
    def connected(self, src: int, dst: int) -> bool:
        """Whether ``src`` may send directly to ``dst``."""
        return (src, dst) in self._links

    def neighbors(self, src: int) -> List[int]:
        """Nodes ``src`` can send to, sorted for determinism."""
        return sorted(dst for (a, dst) in self._links if a == src)

    def links(self) -> List[Tuple[int, int]]:
        """All directed links, sorted for determinism."""
        return sorted(self._links)

    # ------------------------------------------------------------------
    def set_link_latency(self, src: int, dst: int, model: LatencyModel) -> None:
        """Override the latency model on one directed link."""
        if not self.connected(src, dst):
            raise ValueError(f"no link ({src}, {dst}) in topology")
        self._latency_overrides[(src, dst)] = model

    def link_latency(self, src: int, dst: int) -> Optional[LatencyModel]:
        """Per-link latency override, or ``None`` to use the network default."""
        return self._latency_overrides.get((src, dst))

    def latency_override_models(self) -> List[LatencyModel]:
        """All per-link override models (lookahead derivation)."""
        return list(self._latency_overrides.values())

    def __len__(self) -> int:
        return len(self.nodes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Topology(nodes={len(self.nodes)}, links={len(self._links)})"


def full_mesh(n: int) -> Topology:
    """Every node can reach every other node directly (the paper's LAN)."""
    if n < 1:
        raise ValueError(f"need at least one node, got {n!r}")
    return Topology(range(n))


def ring(n: int, bidirectional: bool = True) -> Topology:
    """Nodes arranged in a cycle; each talks to its neighbour(s)."""
    if n < 2:
        raise ValueError(f"ring needs at least two nodes, got {n!r}")
    links = []
    for i in range(n):
        links.append((i, (i + 1) % n))
        if bidirectional:
            links.append(((i + 1) % n, i))
    return Topology(range(n), links)


def star(n: int, hub: int = 0) -> Topology:
    """A hub node connected to all spokes (client-server shape)."""
    if n < 2:
        raise ValueError(f"star needs at least two nodes, got {n!r}")
    if not 0 <= hub < n:
        raise ValueError(f"hub {hub!r} out of range for {n} nodes")
    links = []
    for i in range(n):
        if i != hub:
            links.append((hub, i))
            links.append((i, hub))
    return Topology(range(n), links)
