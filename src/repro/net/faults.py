"""Deterministic network fault models.

The seed simulator modelled a *perfect* network -- the only fault source
was a process crash.  This module grows it into a general fault-injection
substrate: per-link probabilistic or scheduled message **loss**,
**duplication**, **reordering** (extra delay that bypasses the FIFO
clamp), and **partitions** with heal times.  Every probabilistic decision
draws from the dedicated ``net.faults`` stream of the run's
:class:`~repro.sim.rng.RngRegistry`, so a chaotic run is exactly
repeatable from ``(seed, config)`` and adding faults never perturbs the
latency stream the failure-free experiments consume.

With no fault model installed the :class:`~repro.net.network.Network`
takes the exact same code path as the seed, keeping the paper's
experiments (E1--E9) byte-identical by default.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

#: stream name every fault decision draws from
FAULT_STREAM = "net.faults"


def _check_prob(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")


@dataclass
class LinkFaultSpec:
    """Probabilistic fault behaviour of one (or every) directed link.

    ``loss_prob`` drops the message outright; ``dup_prob`` injects one
    extra copy with an independent latency draw; ``reorder_prob`` adds up
    to ``reorder_delay`` seconds of extra delay *without* the per-channel
    FIFO clamp, so a later message can overtake it.
    """

    loss_prob: float = 0.0
    dup_prob: float = 0.0
    reorder_prob: float = 0.0
    reorder_delay: float = 0.002

    def __post_init__(self) -> None:
        _check_prob("loss_prob", self.loss_prob)
        _check_prob("dup_prob", self.dup_prob)
        _check_prob("reorder_prob", self.reorder_prob)
        if self.reorder_delay < 0:
            raise ValueError(
                f"reorder_delay must be non-negative, got {self.reorder_delay!r}"
            )

    @property
    def active(self) -> bool:
        return bool(self.loss_prob or self.dup_prob or self.reorder_prob)


@dataclass
class Partition:
    """A network cut active over ``[start, end)``.

    ``groups`` are sets of node ids; two nodes in *different* groups
    cannot exchange messages while the partition is active.  Nodes absent
    from every group are unaffected.  ``end=None`` means the partition
    never heals.
    """

    groups: Tuple[FrozenSet[int], ...]
    start: float = 0.0
    end: Optional[float] = None

    def __init__(
        self,
        groups: Iterable[Iterable[int]],
        start: float = 0.0,
        end: Optional[float] = None,
    ) -> None:
        self.groups = tuple(frozenset(g) for g in groups)
        if len(self.groups) < 2:
            raise ValueError("a partition needs at least two groups")
        seen: set = set()
        for group in self.groups:
            if seen & group:
                raise ValueError(f"node(s) {sorted(seen & group)} in two groups")
            seen |= group
        if end is not None and end < start:
            raise ValueError(f"partition heals before it starts: {start} > {end}")
        self.start = start
        self.end = end

    def active(self, now: float) -> bool:
        return now >= self.start and (self.end is None or now < self.end)

    def severs(self, src: int, dst: int, now: float) -> bool:
        if not self.active(now):
            return False
        src_group = dst_group = None
        for index, group in enumerate(self.groups):
            if src in group:
                src_group = index
            if dst in group:
                dst_group = index
        return src_group is not None and dst_group is not None and src_group != dst_group


@dataclass
class ScheduledDrop:
    """Deterministic (non-probabilistic) message loss.

    Drops messages matching the filters whose send falls in
    ``[start, end)``, up to ``max_drops`` of them (``None`` = unlimited).
    """

    src: Optional[int] = None
    dst: Optional[int] = None
    mtype: Optional[str] = None
    start: float = 0.0
    end: Optional[float] = None
    max_drops: Optional[int] = None
    dropped: int = field(default=0, repr=False)

    def claims(self, src: int, dst: int, mtype: str, now: float) -> bool:
        if self.max_drops is not None and self.dropped >= self.max_drops:
            return False
        if now < self.start or (self.end is not None and now >= self.end):
            return False
        if self.src is not None and src != self.src:
            return False
        if self.dst is not None and dst != self.dst:
            return False
        if self.mtype is not None and mtype != self.mtype:
            return False
        self.dropped += 1
        return True


@dataclass
class FaultDecision:
    """What the fault model decided for one transmission."""

    drop_cause: Optional[str] = None  # "loss" | "partition" | "scheduled"
    duplicates: int = 0
    extra_delay: float = 0.0

    @property
    def dropped(self) -> bool:
        return self.drop_cause is not None


#: a decision that leaves the message untouched (shared, immutable-by-use)
NO_FAULT = FaultDecision()


class NetworkFaultModel:
    """Aggregates every link-level fault source consulted per send.

    Decision order (first hit wins for drops): active partition,
    scheduled drops, probabilistic loss.  Duplication and reordering are
    only considered for messages that survive.
    """

    def __init__(
        self,
        default: Optional[LinkFaultSpec] = None,
        links: Optional[Dict[Tuple[int, int], LinkFaultSpec]] = None,
        partitions: Optional[Iterable[Partition]] = None,
        scheduled_drops: Optional[Iterable[ScheduledDrop]] = None,
    ) -> None:
        self.default = default or LinkFaultSpec()
        self.links: Dict[Tuple[int, int], LinkFaultSpec] = dict(links or {})
        self.partitions: List[Partition] = list(partitions or [])
        self.scheduled_drops: List[ScheduledDrop] = list(scheduled_drops or [])

    # -- mutators (used by the unified fault planner) -------------------
    def set_default(self, spec: LinkFaultSpec) -> LinkFaultSpec:
        """Replace the default spec; returns the previous one."""
        previous, self.default = self.default, spec
        return previous

    def set_link(self, src: int, dst: int, spec: LinkFaultSpec) -> Optional[LinkFaultSpec]:
        """Override one directed link; returns the previous override."""
        previous = self.links.get((src, dst))
        self.links[(src, dst)] = spec
        return previous

    def clear_link(self, src: int, dst: int) -> None:
        self.links.pop((src, dst), None)

    def add_partition(self, partition: Partition) -> Partition:
        self.partitions.append(partition)
        return partition

    def add_scheduled_drop(self, drop: ScheduledDrop) -> ScheduledDrop:
        self.scheduled_drops.append(drop)
        return drop

    # -- queries --------------------------------------------------------
    def spec_for(self, src: int, dst: int) -> LinkFaultSpec:
        return self.links.get((src, dst), self.default)

    def severed(self, src: int, dst: int, now: float) -> bool:
        return any(p.severs(src, dst, now) for p in self.partitions)

    def decide(
        self, src: int, dst: int, mtype: str, now: float, rng: random.Random
    ) -> FaultDecision:
        """The fault outcome for one transmission attempt."""
        if self.severed(src, dst, now):
            return FaultDecision(drop_cause="partition")
        for drop in self.scheduled_drops:
            if drop.claims(src, dst, mtype, now):
                return FaultDecision(drop_cause="scheduled")
        spec = self.spec_for(src, dst)
        if not spec.active:
            return NO_FAULT
        if spec.loss_prob and rng.random() < spec.loss_prob:
            return FaultDecision(drop_cause="loss")
        extra_delay = 0.0
        if spec.reorder_prob and rng.random() < spec.reorder_prob:
            extra_delay = rng.uniform(0.0, spec.reorder_delay)
        duplicates = 1 if spec.dup_prob and rng.random() < spec.dup_prob else 0
        if duplicates == 0 and extra_delay == 0.0:
            return NO_FAULT
        return FaultDecision(duplicates=duplicates, extra_delay=extra_delay)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"NetworkFaultModel(default={self.default}, links={len(self.links)}, "
            f"partitions={len(self.partitions)}, scheduled={len(self.scheduled_drops)})"
        )
