"""Command-line interface: ``python -m repro <command>``.

Seven commands cover the common uses:

* ``run``     -- one simulation with chosen protocol/recovery/failures,
                 printed as a run summary (``--sanitize`` runs the
                 online invariant monitor alongside);
* ``check``   -- re-run one scenario as N tie-break replicas and diff
                 the outcomes: a semantic divergence means the scenario
                 hides a schedule race (see docs/SANITIZER.md);
* ``compare`` -- the paper's head-to-head (blocking vs non-blocking, or
                 any set of stacks) on an identical scenario;
* ``sweep``   -- vary one numeric knob (n, f, detection delay, storage
                 latency, state size, checkpoint interval, group-commit
                 batch window) and print one row per value;
* ``grid``    -- cartesian product over several knobs x seeds, fanned
                 across worker processes (``--jobs``);
* ``report``  -- aggregate reports; ``report cost`` prints per-protocol
                 communication-cost breakdowns (purpose/phase/link),
                 overhead-vs-time curves, flamegraph export, and checks
                 overhead shares against a committed baseline;
* ``trace``   -- inspect a saved JSONL trace: filter, summarize, span
                 trees, the recovery critical path, Chrome export.

``sweep`` and ``grid`` execute their trials through the parallel runner
(:mod:`repro.runner`); ``--jobs 1`` and ``--jobs N`` print identical
tables, the trials just finish sooner.

Examples::

    python -m repro run --protocol fbl --f 2 --recovery nonblocking \\
        --crash 3@0.05 --spans --trace-out run.jsonl
    python -m repro run --protocol manetho --crash 2@0.05 --sanitize
    python -m repro check --protocol fbl --crash 2@0.03 --replicas 3 --seeds 0,7
    python -m repro compare --crash 3@0.05 --crash 5@0.06
    python -m repro sweep --knob n --values 4,8,16,32 --crash 1@0.05 --jobs 4
    python -m repro grid --knob n=4,8,16 --knob loss=0.0,0.05 --seeds 3
    python -m repro report cost --all-protocols --check
    python -m repro report cost --crash 3@0.05 --flame-out cost.folded
    python -m repro trace run.jsonl --critical-path
    python -m repro trace run.jsonl --chrome-out run.chrome.json
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, Dict, List, Optional, Sequence

from repro import SystemConfig, build_system, crash_at
from repro.analysis.report import format_run_summary, format_table
from repro.analysis.stats import summarize


def _parse_crash(text: str):
    """``NODE@TIME`` -> CrashPlan (e.g. ``3@0.05``)."""
    try:
        node_text, time_text = text.split("@", 1)
        return crash_at(node=int(node_text), time=float(time_text))
    except (ValueError, TypeError) as exc:
        raise argparse.ArgumentTypeError(
            f"crash must look like NODE@TIME (e.g. 3@0.05), got {text!r}"
        ) from exc


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--n", type=int, default=8, help="number of processes")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--protocol",
        default="fbl",
        choices=["fbl", "sender_based", "manetho", "pessimistic",
                 "optimistic", "coordinated", "adaptive"],
    )
    parser.add_argument("--f", type=int, default=2,
                        help="failures tolerated (fbl, adaptive)")
    parser.add_argument(
        "--recovery",
        default=None,
        help="recovery algorithm; defaults to the protocol's natural one",
    )
    parser.add_argument(
        "--workload", default="uniform",
        choices=["uniform", "token_ring", "client_server", "ping_pong",
                 "all_to_all", "shifting"],
    )
    parser.add_argument("--hops", type=int, default=40)
    parser.add_argument("--output-every", type=int, default=0,
                        help="emit an output commit every k deliveries")
    parser.add_argument("--crash", type=_parse_crash, action="append", default=[],
                        metavar="NODE@TIME", help="repeatable crash plan")
    parser.add_argument("--detection-delay", type=float, default=3.0)
    parser.add_argument("--state-bytes", type=int, default=1_000_000)
    parser.add_argument("--storage-latency", type=float, default=0.020)
    parser.add_argument("--storage-bandwidth", type=float, default=1e6)
    parser.add_argument("--header-bytes", type=int, default=64,
                        help="fixed per-message wire header size")
    parser.add_argument("--determinant-bytes", type=int, default=32,
                        help="wire size of one piggybacked determinant")
    parser.add_argument(
        "--transport", default=None, choices=["raw", "reliable"],
        help="channel layer; defaults to raw, or reliable when faults are on",
    )
    parser.add_argument("--loss", type=float, default=0.0,
                        help="per-message loss probability")
    parser.add_argument("--dup", type=float, default=0.0,
                        help="per-message duplication probability")
    parser.add_argument("--reorder", type=float, default=0.0,
                        help="per-message reordering probability")
    parser.add_argument("--reorder-delay", type=float, default=0.002,
                        help="max extra delay for reordered messages (s)")
    parser.add_argument("--storage-fail-prob", type=float, default=0.0,
                        help="per-attempt transient storage fault probability")
    parser.add_argument("--checkpoint-every", type=int, default=0,
                        help="take a checkpoint every k deliveries "
                             "(0 = only the initial one)")
    parser.add_argument("--shards", type=int, default=1,
                        help="partition the event heap across this many "
                             "shards with conservative-lookahead windows "
                             "(1 = the classic single heap; any count "
                             "yields the same semantic fingerprint)")
    realism = parser.add_argument_group(
        "storage realism",
        "opt-in storage-stack optimisations (repro.core.config."
        "StorageRealismConfig); all off = the seed's flat cost model",
    )
    realism.add_argument(
        "--incremental-checkpoints", action="store_true",
        help="charge delta checkpoints by dirty bytes instead of a full "
             "state_bytes image every time",
    )
    realism.add_argument(
        "--full-checkpoint-every", type=int, default=8,
        help="force a full checkpoint every k-th checkpoint (bounds the "
             "delta chain a restart reads back)",
    )
    realism.add_argument(
        "--dirty-bytes-per-delivery", type=int, default=65_536,
        help="modelled bytes dirtied by one delivery (saturates at "
             "state-bytes)",
    )
    realism.add_argument(
        "--group-commit", action="store_true",
        help="coalesce pending log appends into one stable operation",
    )
    realism.add_argument(
        "--batch-window", type=float, default=0.005,
        help="group-commit flush window in seconds (sweeping the "
             "batch-window knob implies --group-commit)",
    )
    realism.add_argument(
        "--log-compaction", action="store_true",
        help="reclaim checkpoint-covered log entries and superseded "
             "snapshots, with reclaimed-byte accounting",
    )
    adaptive = parser.add_argument_group(
        "adaptive hybrid logging",
        "controller knobs for --protocol adaptive (repro.core.config."
        "AdaptiveConfig); ignored by every other protocol",
    )
    adaptive.add_argument(
        "--adaptive-initial-mode", default="fbl",
        choices=["pessimistic", "fbl", "optimistic"],
        help="logging mode every process starts in",
    )
    adaptive.add_argument(
        "--adaptive-eval-every", type=int, default=16,
        help="controller evaluation cadence, in deliveries",
    )
    adaptive.add_argument(
        "--adaptive-min-dwell", type=int, default=48,
        help="deliveries a process must spend in a mode before the "
             "controller may switch it again",
    )
    adaptive.add_argument(
        "--adaptive-hysteresis", type=float, default=0.9,
        help="switch only when the candidate mode's estimated cost is "
             "below this fraction of the current mode's (1.0 = any "
             "strict improvement)",
    )


DEFAULT_RECOVERY = {
    "fbl": "nonblocking",
    "sender_based": "nonblocking",
    "manetho": "nonblocking",
    "pessimistic": "local",
    "optimistic": "optimistic",
    "coordinated": "coordinated",
    "adaptive": "nonblocking",
}


def _config_from_args(args: argparse.Namespace, **overrides: Any) -> SystemConfig:
    protocol = overrides.pop("protocol", args.protocol)
    recovery = overrides.pop(
        "recovery", args.recovery or DEFAULT_RECOVERY[protocol]
    )
    protocol_params: Dict[str, Any] = {}
    if protocol in ("fbl", "adaptive"):
        protocol_params = {"f": overrides.pop("f", args.f)}
    elif protocol == "coordinated":
        protocol_params = {"snapshot_every": 12}
    adaptive_config = None
    if protocol == "adaptive":
        from repro.core.config import AdaptiveConfig

        adaptive_config = AdaptiveConfig(
            initial_mode=args.adaptive_initial_mode,
            f=protocol_params["f"],
            eval_every=args.adaptive_eval_every,
            min_dwell=args.adaptive_min_dwell,
            hysteresis=args.adaptive_hysteresis,
        )
    if args.workload == "shifting":
        workload_params: Dict[str, Any] = {"steady_hops": args.hops}
    else:
        workload_params = {"hops": args.hops}
    if args.workload == "uniform":
        workload_params["fanout"] = 2
        if args.output_every:
            workload_params["output_every"] = args.output_every
    name = overrides.pop("name", f"{protocol}+{recovery}")
    loss = overrides.pop("loss_prob", args.loss)
    faults = None
    if loss or args.dup or args.reorder or args.storage_fail_prob:
        from repro.core.config import FaultConfig

        faults = FaultConfig(
            loss_prob=loss,
            dup_prob=args.dup,
            reorder_prob=args.reorder,
            reorder_delay=args.reorder_delay,
            storage_fail_prob=args.storage_fail_prob,
        )
    transport = args.transport
    if transport is None:
        transport = "reliable" if faults is not None else "raw"
    batch_window = overrides.pop("batch_window", None)
    realism = None
    if (
        args.incremental_checkpoints
        or args.group_commit
        or args.log_compaction
        or batch_window is not None
    ):
        from repro.core.config import StorageRealismConfig

        realism = StorageRealismConfig(
            incremental_checkpoints=args.incremental_checkpoints,
            full_checkpoint_every=args.full_checkpoint_every,
            dirty_bytes_per_delivery=args.dirty_bytes_per_delivery,
            # sweeping the batch window only makes sense with batching on
            group_commit=args.group_commit or batch_window is not None,
            batch_window=(
                batch_window if batch_window is not None else args.batch_window
            ),
            log_compaction=args.log_compaction,
        )
    config = SystemConfig(
        name=name,
        n=overrides.pop("n", args.n),
        seed=args.seed,
        protocol=protocol,
        protocol_params=protocol_params,
        recovery=recovery,
        workload=args.workload,
        workload_params=workload_params,
        crashes=[crash_at(plan.node, plan.at_time) for plan in args.crash],
        detection_delay=overrides.pop("detection_delay", args.detection_delay),
        state_bytes=overrides.pop("state_bytes", args.state_bytes),
        storage_op_latency=overrides.pop("storage_op_latency", args.storage_latency),
        storage_bandwidth=args.storage_bandwidth,
        header_bytes=args.header_bytes,
        determinant_bytes=args.determinant_bytes,
        faults=faults,
        transport=transport,
        storage_realism=realism,
        adaptive=adaptive_config,
        checkpoint_every=overrides.pop("checkpoint_every", args.checkpoint_every),
        shard_count=overrides.pop("shard_count", args.shards),
    )
    if overrides:
        raise ValueError(f"unused overrides: {sorted(overrides)}")
    return config


def _crashed_nodes(config: SystemConfig) -> List[int]:
    return sorted({plan.node for plan in config.crashes})


# ----------------------------------------------------------------------
def cmd_run(args: argparse.Namespace) -> int:
    config = _config_from_args(args)
    config.spans = args.spans or bool(args.trace_out)
    config.profile = args.profile
    config.sanitize = args.sanitize
    config.cost_ledger = args.cost
    config.timeseries_window = args.timeseries_window
    config.trace_spill_path = args.trace_spill
    config.trace_spill_window = args.trace_spill_window
    system = build_system(config)
    result = system.run()
    print(config.describe())
    print()
    print(format_run_summary(result, crashed=_crashed_nodes(config)))
    if args.timeline:
        from repro.analysis.timeline import render_timeline

        print()
        print(render_timeline(system.trace))
    if args.metrics:
        from repro.analysis.report import format_metrics

        print()
        print(format_metrics(result.extra["metrics"]))
    if args.profile:
        profile = result.extra["profile"]
        print(
            f"  profile: {profile['events_fired']} events in "
            f"{profile['wall_elapsed'] * 1000:.1f} ms host time "
            f"({profile['events_per_sec']:.0f} events/s), "
            f"heap high-water {profile['heap_high_water']}, "
            f"peak RSS {profile['peak_rss_kb'] / 1024:.1f} MB"
        )
    kernel = result.extra["kernel"]
    print(
        f"  kernel: {result.extra['events_processed']} events fired, "
        f"{kernel['live_events']} live / {kernel['pending_events']} queued "
        f"at end, {kernel['compactions']} heap compactions"
    )
    if args.trace_out:
        from repro.analysis.trace_io import dump_trace

        count = dump_trace(system.trace, args.trace_out)
        print(f"  trace: wrote {count} events to {args.trace_out}")
    if args.trace_spill:
        spill = system.trace.spill
        if spill is not None:
            print(
                f"  trace: streamed {len(spill)} events to {args.trace_spill} "
                f"(in-memory window {spill.window})"
            )
    if result.outputs_committed:
        stats = summarize(result.output_latencies())
        print(
            f"  output commits: {result.outputs_committed} "
            f"(p50 {stats.p50 * 1000:.2f} ms, max {stats.maximum * 1000:.1f} ms)"
        )
    exit_code = 0
    if args.cost or args.timeseries_window is not None:
        from repro.analysis.cost import purpose_table

        cost = result.extra["cost"]
        print()
        print(purpose_table(cost, title="cost ledger (by purpose)"))
        print(
            f"  overhead share: {100 * cost['overhead_share']:.1f}%  "
            f"cost-conserved: {'yes' if cost['conserved'] else 'NO'}"
        )
        if not cost["conserved"]:
            exit_code = 1
    if args.sanitize:
        report = result.extra["sanitizer"]
        checks = ", ".join(
            f"{name} x{count}" for name, count in sorted(report["checks"].items())
        )
        print(f"  sanitizer: {report['events_seen']} events checked ({checks})")
        if not report["clean"]:
            print("\nSANITIZER VIOLATIONS:")
            for violation in report["violations"][:10]:
                chain = " <- ".join(
                    f"{link['kind']}#{link['span']}"
                    for link in violation["span_chain"]
                )
                where = f" [{chain}]" if chain else ""
                print(
                    f"  [{violation['invariant']}] t={violation['time']:.6f} "
                    f"node={violation['node']}: {violation['detail']}{where}"
                )
            exit_code = 1
    if not result.consistent:
        print("\nINCONSISTENT RUN -- oracle violations:")
        for violation in result.oracle_violations[:10]:
            print(f"  {violation}")
        exit_code = 1
    return exit_code


def cmd_check(args: argparse.Namespace) -> int:
    """Tie-break replica diff: flag scenarios hiding schedule races."""
    import json
    import os

    from repro.sanitizer.differ import check_trial

    seeds = (
        [int(s) for s in args.seeds.split(",")] if args.seeds else [args.seed]
    )
    if args.exhaustive:
        if args.shards > 1:
            print(
                "error: --exhaustive enumerates same-instant ties on one "
                "global heap; run it with --shards 1",
                file=sys.stderr,
            )
            return 2
        return _cmd_check_exhaustive(args, seeds)
    rows = []
    reports = []
    exit_code = 0
    for seed in seeds:
        config = _config_from_args(args)
        config.seed = seed
        config.name = f"check-{config.protocol}-s{seed}"
        config.sanitize = not args.no_sanitize
        report = check_trial(config, replicas=args.replicas, jobs=args.jobs)
        reports.append(report)
        semantic = report.replicas[0].semantic
        rows.append([
            seed,
            args.replicas,
            "yes" if semantic["consistent"] else "NO",
            {None: "-", True: "yes", False: "NO"}[semantic["sanitizer_clean"]],
            len(report.strict_drift),
            "none" if report.ok else f"{len(report.divergences)} DIVERGENT",
        ])
        if not report.ok:
            exit_code = 1
    print(format_table(
        ["seed", "replicas", "consistent", "sanitizer", "timing drift",
         "divergence"],
        rows,
        title=f"tie-break schedule check ({args.protocol} + "
              f"{args.recovery or DEFAULT_RECOVERY[args.protocol]})",
    ))
    for report in reports:
        for line in report.divergences:
            print(f"  seed {report.seed}: {line}")
    if args.report_dir:
        os.makedirs(args.report_dir, exist_ok=True)
        for report in reports:
            path = os.path.join(args.report_dir, f"check-seed{report.seed}.json")
            with open(path, "w", encoding="utf-8") as handle:
                json.dump(report.as_dict(), handle, indent=2, default=str)
        print(f"  reports: wrote {len(reports)} file(s) to {args.report_dir}")
    return exit_code


def _cmd_check_exhaustive(args: argparse.Namespace, seeds: List[int]) -> int:
    """Small-scope systematic search: every legal same-instant schedule."""
    import json
    import os

    from repro.sanitizer.differ import exhaustive_check_trial

    rows = []
    reports = []
    exit_code = 0
    for seed in seeds:
        config = _config_from_args(args)
        config.seed = seed
        config.name = f"check-exh-{config.protocol}-s{seed}"
        config.sanitize = not args.no_sanitize
        report = exhaustive_check_trial(
            config,
            max_schedules=args.max_schedules,
            max_depth=args.max_depth,
        )
        reports.append(report)
        rows.append([
            seed,
            report.schedules,
            report.decision_points,
            report.max_width,
            "yes" if report.complete else "no",
            "none" if report.ok else f"{len(report.divergences)} DIVERGENT",
        ])
        if not report.ok:
            exit_code = 1
    print(format_table(
        ["seed", "schedules", "decisions", "max width", "complete",
         "divergence"],
        rows,
        title=f"exhaustive schedule check ({args.protocol} + "
              f"{args.recovery or DEFAULT_RECOVERY[args.protocol]})",
    ))
    for report in reports:
        for line in report.divergences:
            print(f"  seed {report.seed}: {line}")
    if args.report_dir:
        os.makedirs(args.report_dir, exist_ok=True)
        for report in reports:
            path = os.path.join(
                args.report_dir, f"check-exh-seed{report.seed}.json"
            )
            with open(path, "w", encoding="utf-8") as handle:
                json.dump(report.as_dict(), handle, indent=2, default=str)
        print(f"  reports: wrote {len(reports)} file(s) to {args.report_dir}")
    return exit_code


def cmd_compare(args: argparse.Namespace) -> int:
    stacks = [
        ("fbl + nonblocking", {"protocol": "fbl", "recovery": "nonblocking"}),
        ("fbl + blocking", {"protocol": "fbl", "recovery": "blocking"}),
    ]
    if args.all_protocols:
        stacks += [
            ("sender_based", {"protocol": "sender_based", "recovery": "nonblocking"}),
            ("manetho", {"protocol": "manetho", "recovery": "nonblocking"}),
            ("pessimistic", {"protocol": "pessimistic", "recovery": "local"}),
            ("optimistic", {"protocol": "optimistic", "recovery": "optimistic"}),
            ("coordinated", {"protocol": "coordinated", "recovery": "coordinated"}),
        ]
    rows = []
    exit_code = 0
    for label, overrides in stacks:
        config = _config_from_args(args, name=label, **overrides)
        result = build_system(config).run()
        durations = result.recovery_durations()
        rows.append([
            label,
            f"{max(durations):.2f}" if durations else "-",
            f"{result.mean_blocked_time(exclude=_crashed_nodes(config)) * 1000:.1f}",
            result.recovery_messages(),
            "yes" if result.consistent else "NO",
        ])
        if not result.consistent:
            exit_code = 1
    print(format_table(
        ["stack", "recovery (s)", "live blocked (ms)", "ctl msgs", "consistent"],
        rows,
        title="same scenario, different recovery machinery",
    ))
    return exit_code


def cmd_report(args: argparse.Namespace) -> int:
    """``repro report cost``: per-protocol cost breakdowns, overhead
    curves, flamegraph export and the baseline drift check."""
    import json

    from repro.analysis.cost import format_cost_report, overhead_shares
    from repro.runner import TrialRunner, TrialSpec, merge_cost

    stacks = [(
        f"{args.protocol}+{args.recovery or DEFAULT_RECOVERY[args.protocol]}",
        {},
    )]
    if args.all_protocols:
        stacks = [
            ("fbl+nonblocking", {"protocol": "fbl", "recovery": "nonblocking"}),
            ("fbl+blocking", {"protocol": "fbl", "recovery": "blocking"}),
            ("sender_based", {"protocol": "sender_based", "recovery": "nonblocking"}),
            ("manetho", {"protocol": "manetho", "recovery": "nonblocking"}),
            ("pessimistic", {"protocol": "pessimistic", "recovery": "local"}),
            ("optimistic", {"protocol": "optimistic", "recovery": "optimistic"}),
            ("coordinated", {"protocol": "coordinated", "recovery": "coordinated"}),
        ]

    exit_code = 0
    shares_by_stack: Dict[str, Dict[str, float]] = {}
    flame_lines: List[str] = []
    json_payload: Dict[str, Any] = {}
    for label, overrides in stacks:
        config = _config_from_args(args, name=label, **overrides)
        config.cost_ledger = True
        config.timeseries_window = args.window
        if args.flame_out:
            config.spans = True
        # repetitions exercise the runner's dump/merge path: per-trial
        # ledgers fold in spec order, identical at any --jobs
        specs = [
            TrialSpec(config=config, seed=args.seed + rep * 10_007, label=label)
            for rep in range(args.seeds)
        ]
        results = TrialRunner(jobs=args.jobs).run(specs)
        conserved = all(
            trial.summary.extra["cost"]["conserved"] for trial in results
        )
        merged = merge_cost(results)
        if len(results) == 1:
            cost = results[0].summary.extra["cost"]
            timeseries = results[0].summary.extra.get("timeseries")
        else:
            cost = merged.summary()
            timeseries = None
        print(format_cost_report(cost, timeseries, label=label))
        print(f"cost-conserved: {'yes' if conserved else 'NO'}")
        print()
        if not conserved:
            exit_code = 1
        shares_by_stack[label] = overhead_shares(cost)
        flame_lines.extend(f"{label};{line}" for line in merged.flame_lines())
        json_payload[label] = cost

    if args.flame_out:
        with open(args.flame_out, "w", encoding="utf-8") as handle:
            handle.write("\n".join(flame_lines) + "\n")
        print(
            f"flamegraph: wrote {len(flame_lines)} collapsed stacks to "
            f"{args.flame_out} (load in speedscope or flamegraph.pl)"
        )
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as handle:
            json.dump(json_payload, handle, indent=2, default=str)
        print(f"json: wrote {len(json_payload)} stack summaries to {args.json_out}")

    if args.update_baseline:
        with open(args.baseline, "w", encoding="utf-8") as handle:
            json.dump(shares_by_stack, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"baseline: wrote {len(shares_by_stack)} stacks to {args.baseline}")
    elif args.check_baseline:
        with open(args.baseline, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
        drifted = []
        for label, shares in shares_by_stack.items():
            expected = baseline.get(label)
            if expected is None:
                drifted.append(f"{label}: not in baseline {args.baseline}")
                continue
            for purpose, share in shares.items():
                want = expected.get(purpose, 0.0)
                # relative drift against the committed share, with an
                # absolute floor so near-zero shares don't trip on noise
                if abs(share - want) > max(args.tolerance * want, 0.005):
                    drifted.append(
                        f"{label}: {purpose} share {share:.4f} drifted "
                        f">{args.tolerance:.0%} from baseline {want:.4f}"
                    )
        if drifted:
            print("BASELINE DRIFT:")
            for line in drifted:
                print(f"  {line}")
            exit_code = 1
        else:
            print(
                f"baseline: {len(shares_by_stack)} stacks within "
                f"{args.tolerance:.0%} of {args.baseline}"
            )
    return exit_code


SWEEP_KNOBS = {
    "n": ("n", int),
    "f": ("f", int),
    "detection": ("detection_delay", float),
    "storage-latency": ("storage_op_latency", float),
    "state-bytes": ("state_bytes", int),
    "loss": ("loss_prob", float),
    "checkpoint-every": ("checkpoint_every", int),
    "batch-window": ("batch_window", float),
    "shards": ("shard_count", int),
}


def cmd_sweep(args: argparse.Namespace) -> int:
    from repro.runner import run_results

    knob, caster = SWEEP_KNOBS[args.knob]
    values = [caster(v) for v in args.values.split(",")]
    configs = []
    for value in values:
        config = _config_from_args(args, name=f"{args.knob}={value}", **{knob: value})
        # sweeps only read aggregates; keep memory flat across many runs
        config.keep_trace_events = False
        configs.append(config)
    rows = []
    exit_code = 0
    for value, result in zip(values, run_results(configs, jobs=args.jobs)):
        durations = result.recovery_durations()
        rows.append([
            value,
            f"{max(durations):.2f}" if durations else "-",
            f"{result.total_blocked_time:.3f}",
            result.recovery_messages(),
            result.final_progress,
            "yes" if result.consistent else "NO",
        ])
        if not result.consistent:
            exit_code = 1
    print(format_table(
        [args.knob, "recovery (s)", "total blocked (s)", "ctl msgs",
         "progress", "consistent"],
        rows,
        title=f"sweep over {args.knob} ({args.protocol} + "
              f"{args.recovery or DEFAULT_RECOVERY[args.protocol]})",
    ))
    return exit_code


def _parse_grid_knob(text: str):
    """``NAME=V1,V2,...`` with NAME from :data:`SWEEP_KNOBS`."""
    name, _, values_text = text.partition("=")
    if name not in SWEEP_KNOBS or not values_text:
        raise argparse.ArgumentTypeError(
            f"grid knob must look like NAME=V1,V2 with NAME in "
            f"{sorted(SWEEP_KNOBS)}, got {text!r}"
        )
    _, caster = SWEEP_KNOBS[name]
    try:
        return name, [caster(v) for v in values_text.split(",")]
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"bad value in {text!r}: {exc}") from exc


def cmd_grid(args: argparse.Namespace) -> int:
    """Cartesian product over ``--knob`` axes x ``--seeds`` repetitions,
    executed through the parallel runner; one aggregated row per point."""
    import itertools

    from repro.runner import TrialRunner, TrialSpec, merge_metrics

    knobs = args.knob or []
    if not knobs:
        print("error: grid needs at least one --knob NAME=V1,V2", file=sys.stderr)
        return 2
    specs: List[Any] = []
    labels: List[str] = []
    for combo in itertools.product(*(values for _, values in knobs)):
        overrides = {
            SWEEP_KNOBS[name][0]: value
            for (name, _), value in zip(knobs, combo)
        }
        label = ",".join(
            f"{name}={value}" for (name, _), value in zip(knobs, combo)
        )
        config = _config_from_args(args, name=label, **overrides)
        config.keep_trace_events = False
        labels.append(label)
        for rep in range(args.seeds):
            # the same seed derivation as ExperimentRunner._reseed, so a
            # grid point reproduces the equivalent repeated serial run
            specs.append(TrialSpec(
                config=config, seed=args.seed + rep * 10_007, label=label,
            ))

    results = TrialRunner(jobs=args.jobs).run(specs)
    by_label: Dict[str, List[Any]] = {}
    for trial in results:
        by_label.setdefault(trial.label, []).append(trial.summary)

    rows = []
    exit_code = 0
    for label in labels:
        runs = by_label[label]
        durations = [d for r in runs for d in r.recovery_durations()]
        consistent = all(r.consistent for r in runs)
        rows.append([
            label,
            len(runs),
            f"{max(durations):.2f}" if durations else "-",
            f"{sum(r.total_blocked_time for r in runs) / len(runs):.3f}",
            sum(r.recovery_messages() for r in runs),
            min(r.final_progress for r in runs),
            "yes" if consistent else "NO",
        ])
        if not consistent:
            exit_code = 1
    print(format_table(
        ["point", "runs", "worst recovery (s)", "mean blocked (s)",
         "ctl msgs", "min progress", "consistent"],
        rows,
        title=f"grid over {' x '.join(name for name, _ in knobs)} "
              f"x {args.seeds} seed(s) ({args.protocol} + "
              f"{args.recovery or DEFAULT_RECOVERY[args.protocol]})",
    ))
    merged = merge_metrics(results)
    events_gauge = merged.get("sim.events_processed")
    total_events = int(events_gauge.value) if events_gauge is not None else 0
    print(f"{len(results)} trials, {total_events} simulated events")
    return exit_code


def cmd_trace(args: argparse.Namespace) -> int:
    from repro.analysis.trace_io import load_trace
    from repro.sim.spans import recovery_critical_paths, spans_from_trace

    try:
        trace = load_trace(args.trace_file)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    events = trace.events
    if args.node is not None:
        events = [e for e in events if e.node == args.node]
    if args.category:
        events = [e for e in events if e.category == args.category]

    did_something = False
    if args.chrome_out:
        from repro.analysis.chrome import dump_chrome_trace

        count = dump_chrome_trace(trace, args.chrome_out)
        print(f"wrote {count} trace events to {args.chrome_out}")
        did_something = True

    if args.critical_path:
        from repro.analysis.report import format_critical_path

        paths = recovery_critical_paths(trace, node=args.node)
        if not paths:
            print("no recovery episodes with spans found "
                  "(was the run recorded with --spans?)")
        for path in paths:
            print(format_critical_path(path))
        did_something = True

    if args.spans:
        from repro.analysis.report import format_span_tree

        spans = spans_from_trace(trace)
        print(format_span_tree(spans, node=args.node))
        did_something = True

    if args.timeline:
        from repro.analysis.timeline import render_timeline

        print(render_timeline(trace))
        did_something = True

    if args.tail:
        for event in events[-args.tail:]:
            print(
                f"{event.time:.6f} [{event.category}.{event.action}] "
                f"node={event.node} {event.details or ''}".rstrip()
            )
        did_something = True

    if args.summary or not did_something:
        counters: Dict[str, int] = {}
        for event in events:
            key = f"{event.category}.{event.action}"
            counters[key] = counters.get(key, 0) + 1
        span_count = sum(1 for e in events if e.category == "span")
        nodes = sorted({e.node for e in events if e.node is not None})
        first = events[0].time if events else 0.0
        last = events[-1].time if events else 0.0
        print(
            f"{len(events)} events, {len(nodes)} nodes, "
            f"virtual time {first:.6f} -> {last:.6f}"
            + (f", {span_count // 2} spans" if span_count else "")
        )
        rows = [[key, counters[key]] for key in sorted(counters)]
        print(format_table(["event", "count"], rows))
    return 0


# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Rollback-recovery protocol simulator (Elnozahy, PODC 1995)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser("run", help="run one scenario")
    _add_common(run_parser)
    run_parser.add_argument(
        "--timeline", action="store_true",
        help="render an ASCII per-node timeline of the run",
    )
    run_parser.add_argument(
        "--spans", action="store_true",
        help="record causal spans (checkpoint rounds, recovery phases, ...)",
    )
    run_parser.add_argument(
        "--profile", action="store_true",
        help="profile the sim kernel (events/sec, hot handlers, peak RSS)",
    )
    run_parser.add_argument(
        "--metrics", action="store_true",
        help="print the metrics-registry snapshot after the summary",
    )
    run_parser.add_argument(
        "--trace-out", metavar="PATH", default=None,
        help="write the JSONL trace here (implies --spans); inspect "
             "it later with `repro trace PATH`",
    )
    run_parser.add_argument(
        "--sanitize", action="store_true",
        help="run the online invariant monitor (repro.sanitizer) over "
             "the trace stream; violations fail the run",
    )
    run_parser.add_argument(
        "--cost", action="store_true",
        help="attribute every wire/storage byte to (process, peer, "
             "purpose, phase) accounts and print the breakdown",
    )
    run_parser.add_argument(
        "--timeseries-window", type=float, default=None, metavar="SECONDS",
        help="sample the cost ledger every SECONDS of virtual time "
             "(implies --cost)",
    )
    run_parser.add_argument(
        "--trace-spill", metavar="PATH", default=None,
        help="stream trace events to this JSONL file with a bounded "
             "in-memory window (flat-memory tracing at any horizon); "
             "the file is readable with `repro trace PATH`",
    )
    run_parser.add_argument(
        "--trace-spill-window", type=int, default=10_000, metavar="N",
        help="in-memory window size for --trace-spill (default 10000)",
    )
    run_parser.set_defaults(fn=cmd_run)

    check_parser = sub.add_parser(
        "check", help="diff tie-break schedule replicas of one scenario"
    )
    _add_common(check_parser)
    check_parser.add_argument(
        "--replicas", type=int, default=3,
        help="replicas per seed: one canonical + N-1 perturbed (default 3)",
    )
    check_parser.add_argument(
        "--seeds", default=None, metavar="S1,S2",
        help="comma-separated seeds to check (default: just --seed)",
    )
    check_parser.add_argument(
        "--no-sanitize", action="store_true",
        help="skip the invariant monitor inside each replica",
    )
    check_parser.add_argument(
        "--report-dir", metavar="DIR", default=None,
        help="write one JSON report per seed here (CI artifacts)",
    )
    check_parser.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes (default: $REPRO_JOBS, else cpu_count-1)",
    )
    check_parser.add_argument(
        "--exhaustive", action="store_true",
        help="enumerate every legal same-instant interleaving (small-scope "
             "systematic search) instead of sampling tie-break replicas",
    )
    check_parser.add_argument(
        "--max-schedules", type=int, default=64,
        help="schedule budget for --exhaustive (default 64)",
    )
    check_parser.add_argument(
        "--max-depth", type=int, default=None,
        help="only branch on the first K decision points (--exhaustive)",
    )
    check_parser.set_defaults(fn=cmd_check)

    compare_parser = sub.add_parser("compare", help="compare recovery algorithms")
    _add_common(compare_parser)
    compare_parser.add_argument(
        "--all-protocols", action="store_true",
        help="include every protocol family, not just the two recovery algorithms",
    )
    compare_parser.set_defaults(fn=cmd_compare)

    sweep_parser = sub.add_parser("sweep", help="sweep one knob")
    _add_common(sweep_parser)
    sweep_parser.add_argument("--knob", required=True, choices=sorted(SWEEP_KNOBS))
    sweep_parser.add_argument(
        "--values", required=True, help="comma-separated values, e.g. 4,8,16"
    )
    sweep_parser.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes (default: $REPRO_JOBS, else cpu_count-1; "
             "1 = in-process serial; the table is identical either way)",
    )
    sweep_parser.set_defaults(fn=cmd_sweep)

    grid_parser = sub.add_parser(
        "grid", help="cartesian sweep over several knobs x seeds, in parallel"
    )
    _add_common(grid_parser)
    grid_parser.add_argument(
        "--knob", type=_parse_grid_knob, action="append", metavar="NAME=V1,V2",
        help=f"repeatable grid axis; NAME in {sorted(SWEEP_KNOBS)}",
    )
    grid_parser.add_argument(
        "--seeds", type=int, default=1,
        help="repetitions per grid point with derived seeds",
    )
    grid_parser.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes (default: $REPRO_JOBS, else cpu_count-1)",
    )
    grid_parser.set_defaults(fn=cmd_grid)

    report_parser = sub.add_parser(
        "report", help="aggregate reports (currently: cost)"
    )
    report_parser.add_argument(
        "what", choices=["cost"],
        help="which report to produce",
    )
    _add_common(report_parser)
    report_parser.add_argument(
        "--all-protocols", action="store_true",
        help="one report per protocol family (the compare stacks)",
    )
    report_parser.add_argument(
        "--window", type=float, default=0.05, metavar="SECONDS",
        help="time-series sample window in virtual seconds (default 0.05)",
    )
    report_parser.add_argument(
        "--seeds", type=int, default=1,
        help="trials per stack with derived seeds; >1 exercises the "
             "runner's ledger merge (identical at any --jobs)",
    )
    report_parser.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes (default: $REPRO_JOBS, else cpu_count-1)",
    )
    report_parser.add_argument(
        "--flame-out", metavar="PATH", default=None,
        help="write collapsed-stack flamegraph lines here (implies spans; "
             "load in speedscope or flamegraph.pl)",
    )
    report_parser.add_argument(
        "--json-out", metavar="PATH", default=None,
        help="write the per-stack cost summaries as JSON",
    )
    report_parser.add_argument(
        "--baseline", metavar="PATH", default="benchmarks/BENCH_COST.json",
        help="overhead-share baseline file (see --check/--update)",
    )
    report_parser.add_argument(
        "--check", dest="check_baseline", action="store_true",
        help="fail if any stack's overhead shares drift beyond --tolerance "
             "from the baseline",
    )
    report_parser.add_argument(
        "--update", dest="update_baseline", action="store_true",
        help="rewrite the baseline from this run's shares",
    )
    report_parser.add_argument(
        "--tolerance", type=float, default=0.30,
        help="relative drift allowed by --check (default 0.30)",
    )
    report_parser.set_defaults(fn=cmd_report)

    trace_parser = sub.add_parser(
        "trace", help="inspect a saved JSONL trace (from run --trace-out)"
    )
    trace_parser.add_argument("trace_file", help="JSONL trace path")
    trace_parser.add_argument("--node", type=int, default=None,
                              help="restrict to one node")
    trace_parser.add_argument("--category", default=None,
                              help="restrict to one event category")
    trace_parser.add_argument(
        "--summary", action="store_true",
        help="event-count summary (the default when nothing else is asked)",
    )
    trace_parser.add_argument(
        "--tail", type=int, default=0, metavar="K",
        help="print the last K (filtered) events",
    )
    trace_parser.add_argument(
        "--spans", action="store_true",
        help="print the span tree (requires a run recorded with --spans)",
    )
    trace_parser.add_argument(
        "--timeline", action="store_true",
        help="render the ASCII per-node timeline",
    )
    trace_parser.add_argument(
        "--critical-path", action="store_true",
        help="attribute each recovery episode's duration to components",
    )
    trace_parser.add_argument(
        "--chrome-out", metavar="PATH", default=None,
        help="export Chrome trace-event JSON (open in ui.perfetto.dev)",
    )
    trace_parser.set_defaults(fn=cmd_trace)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
