"""Online correctness tooling: invariant monitor + causal bookkeeping.

The differ (:mod:`repro.sanitizer.differ`) is imported lazily by the
CLI; keeping it out of this namespace avoids pulling the parallel
runner into every ``--sanitize`` run.
"""

from repro.sanitizer.causal import CausalGraph
from repro.sanitizer.monitor import Sanitizer, SanitizerViolation

__all__ = ["CausalGraph", "Sanitizer", "SanitizerViolation"]
