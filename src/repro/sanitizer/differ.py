"""Schedule-perturbation differ: the engine behind ``repro check``.

A discrete-event run is deterministic, but determinism can *hide*
schedule races: a protocol that only works because two same-instant
events happen to fire in FIFO order will pass every seeded test and
fail on the first real machine.  The kernel's ``tiebreak_seed``
(:class:`~repro.sim.kernel.Simulator`) makes same-instant ordering a
controlled perturbation; this module re-runs one trial as ``N``
replicas -- replica 0 canonical (no perturbation), replicas 1..N-1
under derived tie-break seeds -- and diffs the outcomes.

What must and must not match
----------------------------
Perturbing tie order legitimately changes *timing*: the network's
latency-jitter stream is shared, so a reshuffled schedule draws
different jitter for the same messages, and end times, state digests
and message interleavings all drift.  Those are reported as
**strict** (informational) fields.  What a correct protocol must
preserve under any legal schedule is the **semantic** fingerprint:

* the oracle found no violation (``consistent``),
* the sanitizer found no violation (when enabled),
* every node is live at the end,
* every recovery episode that started also completed,
* the run made progress.

A replica whose semantic fingerprint differs from replica 0's -- or
which is unhealthy outright -- is a divergence: the trial hides a
schedule race.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.core.config import SystemConfig
from repro.core.metrics import RunResult
from repro.core.system import build_system
from repro.runner import TrialRunner, TrialSpec


def derive_tiebreak_seed(seed: int, replica: int) -> Optional[int]:
    """Deterministic per-replica tie-break seed; replica 0 is canonical."""
    if replica == 0:
        return None
    return (seed * 1_000_003 + replica * 7_919 + 0x5EED) & 0x7FFF_FFFF


def semantic_fingerprint(summary: RunResult) -> Dict[str, Any]:
    """The schedule-invariant outcome of a run (must match across replicas)."""
    sanitizer = summary.extra.get("sanitizer")
    return {
        "consistent": summary.consistent,
        "sanitizer_clean": None if sanitizer is None else sanitizer["clean"],
        "non_live_nodes": list(summary.extra.get("non_live_nodes", [])),
        "episodes_complete": all(e.complete for e in summary.episodes),
        "progressed": summary.final_progress > 0,
    }


def strict_fingerprint(summary: RunResult) -> Dict[str, Any]:
    """Timing-sensitive outcome (informational: tie perturbation reshuffles
    the shared latency-jitter stream, so these may legitimately differ)."""
    return {
        "digests": dict(summary.digests),
        "end_time": summary.end_time,
        "messages": summary.network.messages,
        "delivered": dict(summary.extra.get("final_delivered_counts", {})),
        "outputs": summary.extra.get("outputs", {}).get("count", 0),
    }


def _health_problems(semantic: Dict[str, Any]) -> List[str]:
    problems = []
    if not semantic["consistent"]:
        problems.append("oracle violations")
    if semantic["sanitizer_clean"] is False:
        problems.append("sanitizer violations")
    if semantic["non_live_nodes"]:
        problems.append(f"non-live nodes {semantic['non_live_nodes']}")
    if not semantic["episodes_complete"]:
        problems.append("incomplete recovery episode")
    if not semantic["progressed"]:
        problems.append("no progress")
    return problems


@dataclass
class ReplicaOutcome:
    """One replica's run, reduced to its fingerprints."""

    replica: int
    tiebreak_seed: Optional[int]
    semantic: Dict[str, Any]
    strict: Dict[str, Any]
    sanitizer: Optional[Dict[str, Any]] = None

    def as_dict(self) -> Dict[str, Any]:
        """JSON-serializable form for check reports."""
        return {
            "replica": self.replica,
            "tiebreak_seed": self.tiebreak_seed,
            "semantic": dict(self.semantic),
            "strict": dict(self.strict),
            "sanitizer": self.sanitizer,
        }


@dataclass
class CheckReport:
    """Outcome of one ``repro check`` trial across all replicas."""

    name: str
    seed: int
    replicas: List[ReplicaOutcome]
    #: semantic failures: the trial hides a schedule race (gating)
    divergences: List[str] = field(default_factory=list)
    #: strict-field drift between replicas (informational)
    strict_drift: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no replica diverged semantically."""
        return not self.divergences

    def as_dict(self) -> Dict[str, Any]:
        """JSON-serializable form (written by ``check --report-dir``)."""
        return {
            "name": self.name,
            "seed": self.seed,
            "ok": self.ok,
            "divergences": list(self.divergences),
            "strict_drift": list(self.strict_drift),
            "replicas": [r.as_dict() for r in self.replicas],
        }


def check_trial(
    config: SystemConfig,
    replicas: int = 3,
    jobs: Optional[int] = None,
) -> CheckReport:
    """Run ``config`` as ``replicas`` tie-break replicas and diff them.

    Replica 0 runs the canonical FIFO schedule; the others perturb
    same-instant event ordering with seeds derived from ``config.seed``.
    All replicas (including 0) run through the parallel
    :class:`~repro.runner.TrialRunner`, so a check costs roughly one
    trial of wall-clock when enough workers are available.
    """
    if replicas < 2:
        raise ValueError(f"need at least 2 replicas to diff, got {replicas!r}")
    specs = []
    for replica in range(replicas):
        variant = copy.deepcopy(config)
        variant.tiebreak_seed = derive_tiebreak_seed(config.seed, replica)
        specs.append(TrialSpec(config=variant, label=f"replica-{replica}"))
    trials = TrialRunner(jobs=jobs).run(specs)

    outcomes = []
    for replica, trial in enumerate(trials):
        summary = trial.summary
        outcomes.append(
            ReplicaOutcome(
                replica=replica,
                tiebreak_seed=derive_tiebreak_seed(config.seed, replica),
                semantic=semantic_fingerprint(summary),
                strict=strict_fingerprint(summary),
                sanitizer=summary.extra.get("sanitizer"),
            )
        )

    report = CheckReport(name=config.name, seed=config.seed, replicas=outcomes)
    canonical = outcomes[0]
    for outcome in outcomes:
        for problem in _health_problems(outcome.semantic):
            report.divergences.append(
                f"replica {outcome.replica} "
                f"(tiebreak={outcome.tiebreak_seed}): {problem}"
            )
        if outcome.replica == 0:
            continue
        for key, value in outcome.semantic.items():
            if value != canonical.semantic[key]:
                report.divergences.append(
                    f"replica {outcome.replica} diverged on {key}: "
                    f"{canonical.semantic[key]!r} -> {value!r}"
                )
        for key, value in outcome.strict.items():
            if value != canonical.strict[key]:
                report.strict_drift.append(
                    f"replica {outcome.replica}: {key} differs "
                    f"(legitimate timing drift)"
                )
    return report


# ----------------------------------------------------------------------
# exhaustive small-scope checking (repro check --exhaustive)
# ----------------------------------------------------------------------
@dataclass
class ExhaustiveReport:
    """Outcome of a systematic same-instant interleaving enumeration."""

    name: str
    seed: int
    #: schedules actually executed (the all-FIFO canonical counts as one)
    schedules: int
    #: longest decision journal observed across all schedules
    decision_points: int
    #: widest tie group encountered
    max_width: int
    #: True when the whole decision tree fit inside the budget
    complete: bool
    #: semantic divergences from the canonical schedule (gating)
    divergences: List[str] = field(default_factory=list)
    canonical: Dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True when every explored schedule matched the canonical one."""
        return not self.divergences

    def as_dict(self) -> Dict[str, Any]:
        """JSON-serializable form (written by ``check --report-dir``)."""
        return {
            "name": self.name,
            "seed": self.seed,
            "mode": "exhaustive",
            "ok": self.ok,
            "schedules": self.schedules,
            "decision_points": self.decision_points,
            "max_width": self.max_width,
            "complete": self.complete,
            "divergences": list(self.divergences),
            "canonical": dict(self.canonical),
        }


def exhaustive_check_trial(
    config: SystemConfig,
    max_schedules: int = 64,
    max_depth: Optional[int] = None,
) -> ExhaustiveReport:
    """Enumerate every legal same-instant interleaving of one trial.

    Where :func:`check_trial` *samples* a few random tie-break shuffles,
    this performs a small-scope systematic search: the kernel's choice
    oracle (:meth:`~repro.sim.kernel.Simulator.set_choice_oracle`) turns
    each group of same-``(time, priority)`` events into an explicit
    decision, and a depth-first search over decision journals replays the
    trial once per distinct choice sequence.  Every schedule's semantic
    fingerprint must match the canonical (all-FIFO) run.

    The state space is the product of tie widths, so this is only
    tractable for small configurations (3-4 processes, short workloads);
    ``max_schedules`` bounds the number of runs and ``max_depth`` limits
    how deep in the journal alternatives are explored.  ``complete`` on
    the returned report says whether the budget covered the whole tree.
    """
    if max_schedules < 1:
        raise ValueError(f"need at least 1 schedule, got {max_schedules!r}")

    truncated = False

    def run_prefix(prefix: List[int]):
        """One run: forced choices from ``prefix``, FIFO (0) beyond it."""
        journal: List[tuple] = []

        def oracle(width: int) -> int:
            depth = len(journal)
            choice = prefix[depth] if depth < len(prefix) else 0
            journal.append((width, choice))
            return choice

        variant = copy.deepcopy(config)
        variant.tiebreak_seed = None  # choices replace random shuffling
        system = build_system(variant)
        system.sim.set_choice_oracle(oracle)
        return system.run(), journal

    summary, journal = run_prefix([])
    canonical = semantic_fingerprint(summary)
    report = ExhaustiveReport(
        name=config.name,
        seed=config.seed,
        schedules=1,
        decision_points=len(journal),
        max_width=max((w for w, _ in journal), default=1),
        complete=True,
        canonical=dict(canonical),
    )
    for problem in _health_problems(canonical):
        report.divergences.append(f"schedule [canonical]: {problem}")

    stack: List[List[int]] = []

    def expand(journal: List[tuple], start: int) -> None:
        """Queue the unexplored siblings of decisions taken at >= start."""
        nonlocal truncated
        for depth in range(len(journal) - 1, start - 1, -1):
            if len(stack) >= max_schedules * 4:
                # no point queueing work the run budget can never execute
                truncated = True
                return
            width, choice = journal[depth]
            if choice + 1 >= width:
                continue
            if max_depth is not None and depth >= max_depth:
                truncated = True
                continue
            base = [c for _, c in journal[:depth]]
            for alt in range(width - 1, choice, -1):
                stack.append(base + [alt])

    expand(journal, 0)
    while stack:
        if report.schedules >= max_schedules:
            truncated = True
            break
        prefix = stack.pop()
        summary, journal = run_prefix(prefix)
        report.schedules += 1
        report.decision_points = max(report.decision_points, len(journal))
        report.max_width = max(
            report.max_width, max((w for w, _ in journal), default=1)
        )
        semantic = semantic_fingerprint(summary)
        label = "/".join(str(c) for c in prefix)
        for problem in _health_problems(semantic):
            report.divergences.append(f"schedule [{label}]: {problem}")
        for key, value in semantic.items():
            if value != canonical[key]:
                report.divergences.append(
                    f"schedule [{label}] diverged on {key}: "
                    f"{canonical[key]!r} -> {value!r}"
                )
        expand(journal, len(prefix))

    report.complete = not truncated
    return report
