"""Online invariant monitor over the trace stream.

The :class:`~repro.core.oracle.ConsistencyOracle` audits a run's *end
state*; by then the schedule that produced a violation is gone.  The
:class:`Sanitizer` subscribes to the live trace stream
(:meth:`repro.sim.trace.TraceRecorder.subscribe`) and checks each
invariant *at the event where it can first be violated*, attaching the
causal span chain that was open at that moment.  Like the kernel
profiler, it costs nothing when off: ``System`` only builds and
subscribes it under ``config.sanitize``.

Invariants checked (see ``docs/SANITIZER.md`` for the mapping to paper
sections):

``orphan-free``
    No process delivers a message whose send was rolled back, and no
    live process ends up causally dependent on a rolled-back delivery
    (paper Theorem 1 / Section 2).  Checked at ``app.deliver`` against
    the shared :class:`~repro.sanitizer.causal.CausalGraph`, and at
    ``node.recovered`` by intersecting every live peer's frontier
    antecedents with the just-archived deliveries.  The frontier check
    is deferred until virtual time advances past the recovery instant:
    queued retransmissions and regenerated sends land at the exact
    completion timestamp, re-occupying slots the ``delivered`` count
    did not yet include, and only a slot still empty once the clock
    moves is a lost delivery someone can be orphaned by.  Optimistic
    logging
    *creates* orphans by design and kills them asynchronously, so there
    the finding is held pending and only reported if the orphaned
    process never rolls back (checked in :meth:`Sanitizer.finalize`).
    Coordinated checkpointing replaces replay with divergent
    re-execution, so per-delivery causal checks do not apply; it is
    covered by the cut-consistency invariant instead.

``commit-order``
    An output at receipt order ``rsn`` commits only once every delivery
    in ``(checkpoint horizon, rsn]`` is recoverable: determinant stable
    at f+1 hosts (FBL family), receipt durably logged (pessimistic /
    optimistic), or covered by a committed snapshot line (coordinated).
    Checked at ``output.commit``.

``det-complete``
    FBL's acknowledged determinant push: a pusher may count a host
    toward the f+1 replication target only after that host reported
    storing the determinant.  Checked at ``protocol.det_ack`` against
    the ``protocol.det_store`` events the storer emitted.

``write-order``
    Stable-storage ordering vs. the commit protocol: pessimistic
    logging must not deliver before the receipt-log write commits
    (checked at ``app.deliver`` against ``protocol.log_commit``), and
    Manetho must not mark a determinant host-stable without a durable
    log write behind it (checked at ``protocol.det_stable`` against
    ``protocol.det_durable``).  One documented exemption: after local
    replay, pessimistic delivers traffic that was in flight during the
    restore without logging it first -- those messages are unacked at
    their senders and will be retransmitted if the receiver fails
    again, so the deliveries (flagged by sharing the ``node.recovered``
    timestamp) are recoverable and legitimate.

``cut-consistent``
    Every committed coordinated snapshot round is a consistent cut: all
    ``n`` processes snapshotted the round and every channel's sent
    count equals the peer's received count (checked at
    ``snapshot.commit``), and a rollback sends every process to the
    same round (checked at ``snapshot.rolled_back``).

``no-block``
    The paper's non-blocking guarantee (Section 3): under
    ``recovery="nonblocking"`` (or the ``nonblocking-restart``
    comparison variant) a live process never suspends application
    progress, for any reason, at any point.  Any ``node.block`` event
    is a violation.

``recovery-epoch``
    The churn-hardening discipline (see ``docs/RECOVERY.md``): recovery
    epochs strictly increase across a node's episodes (checked at
    ``recovery.epoch_begin``); every epoch-tagged recovery action
    (``gather_start``, ``depinfo_phase``, ``distribute``,
    ``leader_handoff``, ``complete``, ...) runs under the node's
    *current* epoch -- no control message or action from a dead epoch
    *e* may take effect in epoch *e' > e*; a leader handoff adopts
    state only from a strictly older epoch; and a handoff preserves the
    gathered-cut consistency: the distributed incvector never carries
    an incarnation below one the system has already restored (checked
    against ``node.restored`` events).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Set, Tuple

from repro.sanitizer.causal import CausalGraph
from repro.sim.spans import SpanChainTracker

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.config import SystemConfig
    from repro.sim.trace import TraceEvent

#: protocols whose recovery re-executes divergently; the per-delivery
#: causal-graph checks do not apply to them
GRAPH_FREE_PROTOCOLS = frozenset({"coordinated"})
#: protocols gating outputs on determinant stability (f+1 replication)
FBL_FAMILY = frozenset({"fbl", "sender_based", "manetho"})
#: protocols whose outputs gate on det_stable events; the adaptive stack
#: announces stability uniformly (f+1 piggyback, durable record, or
#: synchronous write) so the FBL commit-order check covers all its modes
DET_STABILITY_PROTOCOLS = FBL_FAMILY | frozenset({"adaptive"})


@dataclass
class SanitizerViolation:
    """One invariant violation, caught at the violating event."""

    invariant: str
    node: Optional[int]
    time: float
    detail: str
    #: innermost-first causal span chain open at the violating event
    span_chain: List[Dict[str, Any]] = field(default_factory=list)

    def as_dict(self) -> Dict[str, Any]:
        """JSON-serializable form for reports and CLI output."""
        return {
            "invariant": self.invariant,
            "node": self.node,
            "time": self.time,
            "detail": self.detail,
            "span_chain": list(self.span_chain),
        }

    def __str__(self) -> str:
        chain = " <- ".join(
            f"{link['kind']}#{link['span']}" for link in self.span_chain
        )
        where = f" [{chain}]" if chain else ""
        return (
            f"[{self.invariant}] t={self.time:.6f} node={self.node}: "
            f"{self.detail}{where}"
        )


class Sanitizer:
    """Event-driven invariant checker for one run.

    Attach with ``trace.subscribe(sanitizer.on_event)``; call
    :meth:`finalize` after the run (flushes pending optimistic-orphan
    findings) and :meth:`report` for a picklable summary.  The monitor
    only *observes*: it never schedules events, draws randomness, or
    touches protocol state, so enabling it cannot perturb a run.
    """

    def __init__(self, config: "SystemConfig") -> None:
        self.protocol = config.protocol
        self.recovery = config.recovery
        self.n = config.n
        self.graph = CausalGraph()
        self.chains = SpanChainTracker()
        self.violations: List[SanitizerViolation] = []
        self.events_seen = 0
        self.checks: Dict[str, int] = {}

        # -- per-node run state ----------------------------------------
        self._delivered: Dict[int, int] = {}
        self._live: Dict[int, bool] = {}
        self._recovered_at: Dict[int, float] = {}
        #: deliveries covered by the latest durable checkpoint
        self._horizon: Dict[int, int] = {}
        #: deferred recovery-instant orphan checks, oldest first:
        #: (time, recovered node, rolled-back delivery slots); judged
        #: once the clock advances past the recovery instant, ignoring
        #: slots a live delivery re-occupied in the meantime
        self._stale_pending: List[Tuple[float, int, Set[Tuple[int, int]]]] = []

        # -- FBL family ------------------------------------------------
        #: owner -> rsns whose determinants reached stability
        self._stable_rsns: Dict[int, Set[int]] = {}
        #: owner -> rsns with a durable determinant write (manetho)
        self._durable_rsns: Dict[int, Set[int]] = {}
        #: (storer, determinant tuple) pairs confirmed stored
        self._det_stored: Set[Tuple[int, tuple]] = set()

        # -- pessimistic -----------------------------------------------
        #: (receiver, sender, ssn) with a committed receipt-log write
        self._pess_logged: Set[Tuple[int, int, int]] = set()
        #: deliveries exempted as recoverable in-flight replay leftovers
        self._pess_unlogged_ok: Set[Tuple[int, int, int]] = set()

        # -- optimistic ------------------------------------------------
        #: mirror of the protocol's logged-prefix counter
        self._opt_logged: Dict[int, int] = {}
        #: (receiver, rsn) -> pending orphan-delivery finding
        self._pending_orphans: Dict[Tuple[int, int], SanitizerViolation] = {}
        #: (peer, frontier rsn) -> pending orphaned-process finding
        self._pending_frontiers: Dict[Tuple[int, int], SanitizerViolation] = {}

        # -- recovery epochs -------------------------------------------
        #: per-node current recovery epoch (last epoch_begin)
        self._rec_epoch: Dict[int, int] = {}
        #: per-node latest restored incarnation (from node.restored)
        self._incarnation: Dict[int, int] = {}

        # -- adaptive mode epochs --------------------------------------
        #: mode every process starts in (adaptive only)
        self._mode_default = "fbl"
        if config.protocol == "adaptive":
            adaptive = getattr(config, "adaptive", None)
            if adaptive is not None:
                self._mode_default = adaptive.initial_mode
            else:
                self._mode_default = config.protocol_params.get(
                    "initial_mode", "fbl"
                )
        #: per-node mode currently governing deliveries
        self._mode: Dict[int, str] = {}
        #: per-node mode epoch (bumped by each committed switch)
        self._mode_epoch: Dict[int, int] = {}

        # -- coordinated -----------------------------------------------
        #: round -> node -> (delivered, sent counts, recv counts)
        self._snaps: Dict[int, Dict[int, Tuple[int, Dict, Dict]]] = {}
        #: per-node delivered count covered by the committed round
        self._cover: Dict[int, int] = {}
        #: rollback epoch -> the single round it must target
        self._rollback_round: Dict[int, int] = {}

        self._handlers: Dict[
            Tuple[str, str], Callable[["TraceEvent"], None]
        ] = {
            ("span", "begin"): self.chains.on_event,
            ("span", "end"): self.chains.on_event,
            ("app", "send"): self._on_send,
            ("app", "deliver"): self._on_deliver,
            ("node", "start"): self._on_start,
            ("node", "crash"): self._on_crash,
            ("node", "recovered"): self._on_recovered,
            ("node", "restored"): self._on_restored,
            ("node", "checkpoint_durable"): self._on_checkpoint_durable,
            ("node", "block"): self._on_block,
            ("recovery", "epoch_begin"): self._on_epoch_begin,
            ("recovery", "stale_epoch_drop"): self._on_stale_epoch_drop,
            ("recovery", "leader_handoff"): self._on_leader_handoff,
            ("recovery", "ord_acquired"): self._on_epoch_action,
            ("recovery", "gather_start"): self._on_epoch_action,
            ("recovery", "depinfo_phase"): self._on_epoch_action,
            ("recovery", "distribute"): self._on_distribute,
            ("recovery", "complete"): self._on_epoch_action,
            ("protocol", "det_stable"): self._on_det_stable,
            ("protocol", "det_durable"): self._on_det_durable,
            ("protocol", "det_store"): self._on_det_store,
            ("protocol", "det_ack"): self._on_det_ack,
            ("protocol", "log_commit"): self._on_log_commit,
            ("protocol", "mode_switch"): self._on_mode_switch,
            ("protocol", "mode_restored"): self._on_mode_restored,
            ("replay", "done"): self._on_replay_done,
            ("output", "commit"): self._on_output_commit,
            ("snapshot", "snap"): self._on_snap,
            ("snapshot", "commit"): self._on_snapshot_commit,
            ("snapshot", "committed"): self._on_snapshot_committed,
            ("snapshot", "rolled_back"): self._on_rolled_back,
        }

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def on_event(self, event: "TraceEvent") -> None:
        """Feed one trace event through the invariant handlers."""
        self.events_seen += 1
        if self._stale_pending and event.time > self._stale_pending[0][0]:
            self._flush_stale_pending(event.time)
        handler = self._handlers.get((event.category, event.action))
        if handler is not None:
            handler(event)

    def _check(self, invariant: str) -> None:
        self.checks[invariant] = self.checks.get(invariant, 0) + 1

    def _make(
        self, invariant: str, node: Optional[int], time: float, detail: str
    ) -> SanitizerViolation:
        return SanitizerViolation(
            invariant=invariant,
            node=node,
            time=time,
            detail=detail,
            span_chain=self.chains.chain(node),
        )

    def _flag(
        self, invariant: str, node: Optional[int], time: float, detail: str
    ) -> None:
        self.violations.append(self._make(invariant, node, time, detail))

    # ------------------------------------------------------------------
    # causal bookkeeping + orphan freedom
    # ------------------------------------------------------------------
    def _on_send(self, event: "TraceEvent") -> None:
        d = event.details
        if event.node is None:
            return
        self.graph.record_send(event.node, d["ssn"], d["dst"], d["deliveries"])

    def _on_deliver(self, event: "TraceEvent") -> None:
        receiver = event.node
        if receiver is None:
            return
        d = event.details
        sender, ssn, rsn = d["sender"], d["ssn"], d["rsn"]
        self.graph.record_delivery(receiver, rsn, sender, ssn)
        self._delivered[receiver] = rsn + 1
        if self.protocol not in GRAPH_FREE_PROTOCOLS:
            self._check("orphan-free")
            if self.graph.send_is_rolled_back(sender, ssn, receiver):
                detail = (
                    f"delivered message ({sender}, ssn {ssn}) at rsn {rsn} "
                    f"but its send was rolled back and never re-executed"
                )
                finding = self._make("orphan-free", receiver, event.time, detail)
                if self.protocol == "optimistic":
                    # orphans are transient by design; must die by rollback
                    self._pending_orphans[(receiver, rsn)] = finding
                else:
                    self.violations.append(finding)
        if self.protocol == "pessimistic":
            self._check("write-order")
            key = (receiver, sender, ssn)
            if key not in self._pess_logged:
                if event.time == self._recovered_at.get(receiver):
                    # replay leftover: in flight during the restore, still
                    # unacked at its sender, hence recoverable (see module
                    # docstring) -- remember it for the commit-order check
                    self._pess_unlogged_ok.add(key)
                else:
                    self._flag(
                        "write-order",
                        receiver,
                        event.time,
                        f"delivered ({sender}, ssn {ssn}) at rsn {rsn} "
                        f"before its receipt-log write committed",
                    )
        if self.protocol == "adaptive":
            # every delivery is governed by exactly one mode's
            # obligations; under pessimistic governance the receipt-log
            # write must have committed first, with the same replay
            # exemptions as the static pessimistic stack (replayed
            # deliveries happen while the node is down; leftovers land
            # exactly at the recovery instant)
            self._check("mode-epoch")
            mode = self._mode.get(receiver, self._mode_default)
            if mode == "pessimistic" and self._live.get(receiver, True):
                key = (receiver, sender, ssn)
                if key not in self._pess_logged:
                    if event.time == self._recovered_at.get(receiver):
                        self._pess_unlogged_ok.add(key)
                    else:
                        self._flag(
                            "mode-epoch",
                            receiver,
                            event.time,
                            f"delivery ({sender}, ssn {ssn}) at rsn {rsn} is "
                            f"governed by pessimistic mode but no receipt-log "
                            f"write committed first",
                        )

    # ------------------------------------------------------------------
    # node lifecycle
    # ------------------------------------------------------------------
    def _on_start(self, event: "TraceEvent") -> None:
        if event.node is not None:
            self._live[event.node] = True
            self._cover.setdefault(event.node, 0)

    def _on_crash(self, event: "TraceEvent") -> None:
        node = event.node
        if node is None:
            return
        self._live[node] = False
        if self.protocol == "optimistic":
            self._opt_logged[node] = 0
        if self.protocol in GRAPH_FREE_PROTOCOLS:
            self._cover[node] = 0

    def _on_recovered(self, event: "TraceEvent") -> None:
        node = event.node
        if node is None:
            return
        self._live[node] = True
        self._recovered_at[node] = event.time
        final = event.details["delivered"]
        self._delivered[node] = final
        if self.protocol == "optimistic":
            self._clear_pending(node, final)
        if self.protocol in GRAPH_FREE_PROTOCOLS:
            return
        stale = self.graph.roll_back(node, final)
        if stale:
            self._stale_pending.append((event.time, node, set(stale)))

    def _flush_stale_pending(self, now: float) -> None:
        """Judge deferred recovery rollbacks once the clock passed them.

        A slot re-occupied by a live delivery in the meantime -- the
        queued retransmissions and regenerated sends that land at the
        recovery instant itself -- has been restored; only a slot still
        empty when the clock moves is a lost delivery someone can be
        orphaned by.
        """
        while self._stale_pending and self._stale_pending[0][0] < now:
            time, node, stale_keys = self._stale_pending.pop(0)
            lost = {k for k in stale_keys if k not in self.graph.delivery}
            if lost:
                self._check_recovery_orphans(time, node, lost)

    def _check_recovery_orphans(
        self, time: float, node: int, stale_set: Set[Tuple[int, int]]
    ) -> None:
        self._check("orphan-free")
        for peer, count in sorted(self._delivered.items()):
            if peer == node or count <= 0 or not self._live.get(peer, False):
                continue
            frontier = (peer, count - 1)
            tainted = self.graph.antecedents(frontier) & stale_set
            if not tainted:
                continue
            detail = (
                f"live process depends on deliveries "
                f"{sorted(tainted)} rolled back by node {node}'s recovery"
            )
            finding = self._make("orphan-free", peer, time, detail)
            if self.protocol == "optimistic":
                # legitimate until the peer fails to roll itself back
                self._pending_frontiers[frontier] = finding
            else:
                self.violations.append(finding)

    def _clear_pending(self, node: int, final: int) -> None:
        """A rollback to ``final`` deliveries undoes this node's orphaned
        state at any rsn >= ``final``."""
        for key in [k for k in self._pending_orphans if k[0] == node and k[1] >= final]:
            del self._pending_orphans[key]
        for key in [
            k for k in self._pending_frontiers if k[0] == node and k[1] >= final
        ]:
            del self._pending_frontiers[key]

    def _on_checkpoint_durable(self, event: "TraceEvent") -> None:
        node = event.node
        if node is None:
            return
        covered = event.details["delivered"]
        self._horizon[node] = max(self._horizon.get(node, 0), covered)
        self.graph.prune(node, covered)

    def _on_block(self, event: "TraceEvent") -> None:
        self._check("no-block")
        if self.recovery in ("nonblocking", "nonblocking-restart"):
            self._flag(
                "no-block",
                event.node,
                event.time,
                "live process suspended application progress under the "
                "non-blocking recovery algorithm",
            )

    # ------------------------------------------------------------------
    # recovery epochs (churn hardening)
    # ------------------------------------------------------------------
    def _on_restored(self, event: "TraceEvent") -> None:
        node = event.node
        if node is None:
            return
        incarnation = event.details.get("incarnation")
        if incarnation is not None:
            current = self._incarnation.get(node, 0)
            self._incarnation[node] = max(current, incarnation)

    def _on_epoch_begin(self, event: "TraceEvent") -> None:
        node = event.node
        if node is None:
            return
        self._check("recovery-epoch")
        epoch = event.details["epoch"]
        last = self._rec_epoch.get(node)
        if last is not None and epoch <= last:
            self._flag(
                "recovery-epoch",
                node,
                event.time,
                f"recovery epoch {epoch} does not advance past the node's "
                f"previous epoch {last}",
            )
        self._rec_epoch[node] = epoch

    def _on_stale_epoch_drop(self, event: "TraceEvent") -> None:
        # evidence the discipline is active; the drop itself is correct
        # behaviour, so this only counts as an audit point
        self._check("recovery-epoch")

    def _on_epoch_action(self, event: "TraceEvent") -> None:
        node = event.node
        epoch = event.details.get("epoch")
        if node is None or epoch is None:
            return
        self._check("recovery-epoch")
        current = self._rec_epoch.get(node)
        if epoch != current:
            self._flag(
                "recovery-epoch",
                node,
                event.time,
                f"recovery action {event.action!r} took effect under epoch "
                f"{epoch} but the node's current epoch is {current}",
            )

    def _on_leader_handoff(self, event: "TraceEvent") -> None:
        self._on_epoch_action(event)
        d = event.details
        self._check("recovery-epoch")
        if d["from_epoch"] >= d["epoch"]:
            self._flag(
                "recovery-epoch",
                event.node,
                event.time,
                f"handoff adopted gather state from epoch {d['from_epoch']}, "
                f"which is not a predecessor of epoch {d['epoch']}",
            )

    def _on_distribute(self, event: "TraceEvent") -> None:
        self._on_epoch_action(event)
        node = event.node
        incvector = event.details.get("incvector")
        if node is None or not incvector:
            return
        self._check("recovery-epoch")
        for peer, inc in incvector.items():
            peer = int(peer)
            latest = self._incarnation.get(peer, 0)
            if inc < latest:
                self._flag(
                    "recovery-epoch",
                    node,
                    event.time,
                    f"distributed incvector carries incarnation {inc} for "
                    f"node {peer}, which already restored incarnation "
                    f"{latest} (the handoff broke the gathered cut)",
                )

    # ------------------------------------------------------------------
    # determinant stability (FBL family)
    # ------------------------------------------------------------------
    def _on_det_stable(self, event: "TraceEvent") -> None:
        node = event.node
        if node is None:
            return
        rsn = event.details["rsn"]
        self._stable_rsns.setdefault(node, set()).add(rsn)
        if self.protocol == "manetho":
            self._check("write-order")
            if rsn not in self._durable_rsns.get(node, set()):
                self._flag(
                    "write-order",
                    node,
                    event.time,
                    f"determinant for rsn {rsn} marked host-stable without "
                    f"a durable log write behind it",
                )

    def _on_det_durable(self, event: "TraceEvent") -> None:
        if event.node is not None:
            self._durable_rsns.setdefault(event.node, set()).add(
                event.details["rsn"]
            )

    def _on_det_store(self, event: "TraceEvent") -> None:
        storer = event.node
        if storer is None:
            return
        for det in event.details["dets"]:
            self._det_stored.add((storer, tuple(det)))

    def _on_det_ack(self, event: "TraceEvent") -> None:
        pusher = event.node
        storer = event.details["src"]
        for det in event.details["dets"]:
            self._check("det-complete")
            if (storer, tuple(det)) not in self._det_stored:
                self._flag(
                    "det-complete",
                    pusher,
                    event.time,
                    f"push of determinant {tuple(det)} acknowledged by node "
                    f"{storer} before the store was recorded there",
                )

    # ------------------------------------------------------------------
    # receipt logs (pessimistic / optimistic)
    # ------------------------------------------------------------------
    def _on_log_commit(self, event: "TraceEvent") -> None:
        node = event.node
        if node is None:
            return
        d = event.details
        if self.protocol in ("pessimistic", "adaptive"):
            self._pess_logged.add((node, d["sender"], d["ssn"]))
        elif self.protocol == "optimistic":
            current = self._opt_logged.get(node, 0)
            self._opt_logged[node] = max(current, d["index"])

    def _on_replay_done(self, event: "TraceEvent") -> None:
        if self.protocol == "optimistic" and event.node is not None:
            self._opt_logged[event.node] = event.details["delivered"]

    # ------------------------------------------------------------------
    # adaptive mode epochs
    # ------------------------------------------------------------------
    def _on_mode_switch(self, event: "TraceEvent") -> None:
        """A process committed a logging-mode switch.

        The ``mode-epoch`` invariant: epochs advance by exactly one per
        committed switch, the claimed outgoing mode is the one that
        actually governed deliveries, the process is live, and — the
        load-bearing part — the switch happens at a determinant-quiescent
        point: every delivery above the checkpoint horizon already has a
        stable determinant, so no obligation straddles the epoch line.
        """
        node = event.node
        if node is None:
            return
        d = event.details
        epoch = d["epoch"]
        self._check("mode-epoch")
        last = self._mode_epoch.get(node, 0)
        if epoch != last + 1:
            self._flag(
                "mode-epoch",
                node,
                event.time,
                f"mode switch carries epoch {epoch}, which does not advance "
                f"the node's previous mode epoch {last} by one",
            )
        prev_mode = self._mode.get(node, self._mode_default)
        if d.get("from_mode") != prev_mode:
            self._flag(
                "mode-epoch",
                node,
                event.time,
                f"switch claims to leave mode {d.get('from_mode')!r} but "
                f"deliveries were governed by {prev_mode!r}",
            )
        if not self._live.get(node, True):
            self._flag(
                "mode-epoch",
                node,
                event.time,
                f"mode switch to {d.get('to_mode')!r} while the process is "
                f"down or recovering",
            )
        delivered = self._delivered.get(node, 0)
        horizon = self._horizon.get(node, 0)
        stable = self._stable_rsns.get(node, set())
        missing = [r for r in range(horizon, delivered) if r not in stable]
        if missing:
            self._flag(
                "mode-epoch",
                node,
                event.time,
                f"switch to {d.get('to_mode')!r} at a non-quiescent point: "
                f"determinants at rsns {missing[:6]} not yet stable",
            )
        self._mode_epoch[node] = epoch
        self._mode[node] = d["to_mode"]

    def _on_mode_restored(self, event: "TraceEvent") -> None:
        """A restore re-baselined the mode state from a checkpoint.

        A crash between the durable mode marker and the switch
        checkpoint legitimately rolls the epoch back; monotonicity is
        re-anchored here rather than flagged.
        """
        node = event.node
        if node is None:
            return
        self._check("mode-epoch")
        self._mode[node] = event.details["mode"]
        self._mode_epoch[node] = event.details["epoch"]

    # ------------------------------------------------------------------
    # output commit ordering
    # ------------------------------------------------------------------
    def _on_output_commit(self, event: "TraceEvent") -> None:
        if event.details.get("duplicate"):
            return  # a replayed re-request; the first release was checked
        node = event.node
        if node is None:
            return
        rsn = event.details["output_id"][1]
        time = event.time
        self._check("commit-order")
        if self.protocol in DET_STABILITY_PROTOCOLS:
            horizon = self._horizon.get(node, 0)
            stable = self._stable_rsns.get(node, set())
            missing = [r for r in range(horizon, rsn + 1) if r not in stable]
            if missing:
                self._flag(
                    "commit-order",
                    node,
                    time,
                    f"output at rsn {rsn} committed with unstable "
                    f"determinants at rsns {missing[:6]} "
                    f"(checkpoint horizon {horizon})",
                )
        elif self.protocol == "pessimistic":
            delivered = self.graph.delivery_at(node, rsn)
            if delivered is not None:
                sender, ssn = delivered
                key = (node, sender, ssn)
                if key not in self._pess_logged and key not in self._pess_unlogged_ok:
                    self._flag(
                        "commit-order",
                        node,
                        time,
                        f"output at rsn {rsn} committed before the delivery's "
                        f"receipt-log write",
                    )
        elif self.protocol == "optimistic":
            logged = self._opt_logged.get(node, 0)
            if logged < rsn + 1:
                self._flag(
                    "commit-order",
                    node,
                    time,
                    f"output at rsn {rsn} committed with only {logged} "
                    f"deliveries durably logged",
                )
        elif self.protocol == "coordinated":
            cover = self._cover.get(node, 0)
            if rsn >= cover:
                self._flag(
                    "commit-order",
                    node,
                    time,
                    f"output at rsn {rsn} committed but the committed "
                    f"snapshot line only covers {cover} deliveries",
                )

    # ------------------------------------------------------------------
    # coordinated snapshot rounds
    # ------------------------------------------------------------------
    @staticmethod
    def _count(counts: Dict[Any, int], peer: int) -> int:
        """Channel counter lookup tolerant of int/str keys."""
        value = counts.get(peer)
        if value is None:
            value = counts.get(str(peer), 0)
        return value

    def _on_snap(self, event: "TraceEvent") -> None:
        node = event.node
        d = event.details
        if node is None or "delivered" not in d:
            return  # pre-sanitizer trace without enriched snap events
        self._snaps.setdefault(d["round"], {})[node] = (
            d["delivered"],
            dict(d["sent"]),
            dict(d["recv"]),
        )

    def _on_snapshot_commit(self, event: "TraceEvent") -> None:
        round_id = event.details["round"]
        snaps = self._snaps.get(round_id, {})
        self._check("cut-consistent")
        missing = [p for p in range(self.n) if p not in snaps]
        if missing:
            if snaps:  # silent when snap events carry no counters (old trace)
                self._flag(
                    "cut-consistent",
                    event.node,
                    event.time,
                    f"round {round_id} committed without snapshots from "
                    f"nodes {missing}",
                )
            return
        for a in range(self.n):
            _, sent_a, _ = snaps[a]
            for b in range(self.n):
                if a == b:
                    continue
                sent = self._count(sent_a, b)
                recv = self._count(snaps[b][2], a)
                if sent != recv:
                    self._flag(
                        "cut-consistent",
                        event.node,
                        event.time,
                        f"round {round_id} committed an inconsistent cut: "
                        f"channel {a}->{b} sent {sent} but received {recv}",
                    )
        # older rounds can no longer commit or be rolled back to
        for done in [r for r in self._snaps if r < round_id]:
            del self._snaps[done]

    def _on_snapshot_committed(self, event: "TraceEvent") -> None:
        if event.node is not None:
            self._cover[event.node] = event.details["covered"]

    def _on_rolled_back(self, event: "TraceEvent") -> None:
        node = event.node
        d = event.details
        if node is None:
            return
        if "covered" in d:
            self._cover[node] = d["covered"]
        epoch = d.get("epoch")
        round_id = d["round"]
        if epoch is None:
            return
        self._check("cut-consistent")
        expected = self._rollback_round.setdefault(epoch, round_id)
        if round_id != expected:
            self._flag(
                "cut-consistent",
                node,
                event.time,
                f"rollback epoch {epoch} sent node {node} to round "
                f"{round_id} while others rolled back to round {expected}",
            )

    # ------------------------------------------------------------------
    # end of run
    # ------------------------------------------------------------------
    def finalize(self) -> None:
        """Promote pending findings that the run never resolved."""
        self._flush_stale_pending(float("inf"))
        for (node, rsn), finding in sorted(self._pending_orphans.items()):
            finding.detail += (
                f" (still orphaned at rsn {rsn} when the run ended)"
            )
            self.violations.append(finding)
        self._pending_orphans.clear()
        for (node, rsn), finding in sorted(self._pending_frontiers.items()):
            finding.detail += " (the process never rolled itself back)"
            self.violations.append(finding)
        self._pending_frontiers.clear()

    @property
    def clean(self) -> bool:
        """True while no invariant has been violated."""
        return not self.violations

    def report(self) -> Dict[str, Any]:
        """Picklable summary for ``RunResult.extra['sanitizer']``."""
        return {
            "clean": self.clean,
            "events_seen": self.events_seen,
            "checks": dict(self.checks),
            "violations": [v.as_dict() for v in self.violations],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Sanitizer(protocol={self.protocol!r}, "
            f"violations={len(self.violations)}, events={self.events_seen})"
        )
