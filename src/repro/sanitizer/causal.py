"""Shared causal bookkeeping for the oracle and the online sanitizer.

The happens-before structure both checkers need is the same: delivery
events ``(node, rsn)`` connected by program-order edges
``(x, k-1) -> (x, k)`` and, per message, an edge from the sender's
latest delivery before the send to the delivery of that message.
:class:`CausalGraph` owns that record; the
:class:`~repro.core.oracle.ConsistencyOracle` layers replay-determinism
checks on top of it at end of run, while
:class:`~repro.sanitizer.monitor.Sanitizer` consults it online, at the
event where an invariant can first be violated.

Rolled-back sends and deliveries are *archived* rather than dropped, so
orphan checks can still traverse the causal edges they induced.  The
archives are bounded by :meth:`CausalGraph.prune`, driven by the same GC
horizon the protocols use (a durable checkpoint covering ``covered``
deliveries): archived entries below the horizon are either shadowed by a
live replay re-record or causally below state that can never roll back,
so dropping them loses no detection power.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

#: a delivery slot: ``(receiver, rsn)``
DeliveryKey = Tuple[int, int]
#: a directed application send: ``(sender, ssn, dst)``
SendKey = Tuple[int, int, int]


class CausalGraph:
    """The causal record of one run: sends, deliveries, and rollbacks.

    Pure bookkeeping -- recording methods report what was already there
    (so callers can flag divergence) but never judge.  All state is plain
    dicts of tuples, picklable and cheap to copy.
    """

    def __init__(self) -> None:
        #: (sender, ssn, dst) -> deliveries the sender had made at send time
        self.send_context: Dict[SendKey, int] = {}
        #: (receiver, rsn) -> (sender, ssn)
        self.delivery: Dict[DeliveryKey, Tuple[int, int]] = {}
        #: archives of permanently rolled-back events (bounded by prune())
        self.rolled_back_delivery: Dict[DeliveryKey, Tuple[int, int]] = {}
        self.rolled_back_sends: Dict[SendKey, int] = {}

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def record_send(
        self, sender: int, ssn: int, dst: int, deliveries_so_far: int
    ) -> Optional[int]:
        """Record a send; returns the previously recorded live context if
        this (sender, ssn, dst) was already recorded, else ``None``."""
        key = (sender, ssn, dst)
        previous = self.send_context.get(key)
        if previous is None:
            self.send_context[key] = deliveries_so_far
        return previous

    def record_delivery(
        self, receiver: int, rsn: int, sender: int, ssn: int
    ) -> Optional[Tuple[int, int]]:
        """Record a delivery; returns the previously recorded live
        ``(sender, ssn)`` for this slot if any, else ``None``."""
        key = (receiver, rsn)
        previous = self.delivery.get(key)
        if previous is None:
            self.delivery[key] = (sender, ssn)
        return previous

    def roll_back(self, node: int, final_count: int) -> List[DeliveryKey]:
        """Archive ``node``'s deliveries at rsn >= ``final_count`` and the
        sends they caused; returns the archived delivery keys."""
        stale_deliveries = [
            key for key in self.delivery if key[0] == node and key[1] >= final_count
        ]
        for key in stale_deliveries:
            self.rolled_back_delivery[key] = self.delivery.pop(key)
        stale_sends = [
            key
            for key, context in self.send_context.items()
            if key[0] == node and context > final_count
        ]
        for key in stale_sends:
            self.rolled_back_sends[key] = self.send_context.pop(key)
        return stale_deliveries

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def delivery_at(self, receiver: int, rsn: int) -> Optional[Tuple[int, int]]:
        """The (sender, ssn) delivered at this slot, live or archived."""
        found = self.delivery.get((receiver, rsn))
        if found is None:
            found = self.rolled_back_delivery.get((receiver, rsn))
        return found

    def context_of(self, sender: int, ssn: int, dst: int) -> Optional[int]:
        """The causal context of a send, live or archived."""
        context = self.send_context.get((sender, ssn, dst))
        if context is None:
            context = self.rolled_back_sends.get((sender, ssn, dst))
        return context

    def send_is_rolled_back(self, sender: int, ssn: int, dst: int) -> bool:
        """Whether this send exists only in rolled-back (orphan) form."""
        key = (sender, ssn, dst)
        return key in self.rolled_back_sends and key not in self.send_context

    def antecedents(self, event: DeliveryKey) -> Set[DeliveryKey]:
        """Backward closure of one delivery event in the happens-before DAG."""
        seen: Set[DeliveryKey] = set()
        stack = [event]
        while stack:
            node, rsn = stack.pop()
            if (node, rsn) in seen or rsn < 0:
                continue
            seen.add((node, rsn))
            if rsn > 0:
                stack.append((node, rsn - 1))
            delivered = self.delivery_at(node, rsn)
            if delivered is not None:
                sender, ssn = delivered
                context = self.context_of(sender, ssn, node)
                if context is not None and context > 0:
                    stack.append((sender, context - 1))
        return seen

    # ------------------------------------------------------------------
    # garbage collection
    # ------------------------------------------------------------------
    def prune(self, node: int, covered: int) -> int:
        """Drop archived entries of ``node`` below the GC horizon.

        Called when a durable checkpoint covers ``covered`` deliveries.
        An archived rolled-back delivery at rsn < ``covered`` is shadowed
        by the live replay re-record of the same slot (lookups prefer the
        live entry), and an archived send with context <= ``covered``
        points at a delivery that is now below the checkpoint and can
        never become an orphan -- so neither can contribute to a future
        violation.  Returns the number of entries dropped.
        """
        stale_deliveries = [
            key
            for key in self.rolled_back_delivery
            if key[0] == node and key[1] < covered
        ]
        for key in stale_deliveries:
            del self.rolled_back_delivery[key]
        stale_sends = [
            key
            for key, context in self.rolled_back_sends.items()
            if key[0] == node and context <= covered
        ]
        for key in stale_sends:
            del self.rolled_back_sends[key]
        return len(stale_deliveries) + len(stale_sends)

    def archived_entries(self) -> int:
        """Total rolled-back entries still held (tests/assertions)."""
        return len(self.rolled_back_delivery) + len(self.rolled_back_sends)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CausalGraph(deliveries={len(self.delivery)}, "
            f"sends={len(self.send_context)}, archived={self.archived_entries()})"
        )
