"""Ready-made scenario builders for the paper's experiments.

The benchmark files print tables; this module exposes the same scenarios
as a library API, so a downstream user can write::

    from repro.experiments import single_failure, failure_during_recovery

    result = single_failure(recovery="nonblocking").run()

Each builder returns an un-started :class:`~repro.core.system.System`
configured with the paper's evaluation parameters (eight processes,
FBL f = 2, 1 MB state, 3 s failure detection) unless overridden.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.core.config import SystemConfig
from repro.core.system import System, build_system
from repro.procs.failure import CrashPlan, crash_at, crash_on

#: the evaluation's defaults (Section 5)
PAPER_DEFAULTS: Dict[str, Any] = {
    "n": 8,
    "protocol": "fbl",
    "protocol_params": {"f": 2},
    "workload": "uniform",
    "workload_params": {"hops": 40, "fanout": 2},
    "detection_delay": 3.0,
    "state_bytes": 1_000_000,
}


def paper_system(
    name: str,
    recovery: str = "nonblocking",
    crashes: Optional[List[CrashPlan]] = None,
    **overrides: Any,
) -> System:
    """A system with the paper's parameters plus overrides."""
    settings: Dict[str, Any] = dict(PAPER_DEFAULTS)
    settings.update(overrides)
    config = SystemConfig(
        name=name, recovery=recovery, crashes=list(crashes or []), **settings
    )
    return build_system(config)


# ----------------------------------------------------------------------
# the evaluation's two experiments
# ----------------------------------------------------------------------
def single_failure(
    recovery: str = "nonblocking",
    victim: int = 3,
    at: float = 0.05,
    **overrides: Any,
) -> System:
    """E1: one process crashes mid-workload."""
    return paper_system(
        f"single-failure-{recovery}",
        recovery=recovery,
        crashes=[crash_at(node=victim, time=at)],
        **overrides,
    )


def failure_during_recovery(
    recovery: str = "nonblocking",
    first_victim: int = 3,
    second_victim: int = 5,
    at: float = 0.05,
    **overrides: Any,
) -> System:
    """E2: a second process dies the instant the first recovery's
    request reaches it, before it can reply -- the paper's hard case."""
    trigger = (
        "depinfo_request"
        if recovery.startswith("nonblocking")
        else "recovery_request"
    )
    return paper_system(
        f"failure-during-recovery-{recovery}",
        recovery=recovery,
        crashes=[
            crash_at(node=first_victim, time=at),
            crash_on(
                second_victim, "net", "deliver",
                match_node=second_victim,
                match_details={"mtype": trigger},
                immediate=True,
            ),
        ],
        **overrides,
    )


def lossy_network(
    recovery: str = "nonblocking",
    loss: float = 0.05,
    dup: float = 0.0,
    reorder: float = 0.0,
    victim: int = 3,
    at: float = 0.05,
    transport_params: Optional[Dict[str, Any]] = None,
    **overrides: Any,
) -> System:
    """E11: the single-failure scenario on a faulty network.

    The reliable transport re-establishes the channel abstraction the
    protocols assume; the run's ledger then shows what that reliability
    costs (retransmissions, acks) on top of the paper's recovery traffic.
    """
    from repro.core.config import FaultConfig

    return paper_system(
        f"lossy-{recovery}-loss{loss:g}",
        recovery=recovery,
        crashes=[crash_at(node=victim, time=at)] if victim is not None else [],
        faults=FaultConfig(loss_prob=loss, dup_prob=dup, reorder_prob=reorder),
        transport="reliable",
        transport_params=dict(transport_params or {}),
        **overrides,
    )


def leader_failure(
    victim: int = 3,
    second_victim: int = 5,
    at: float = 0.05,
    **overrides: Any,
) -> System:
    """E8b: the recovery leader itself dies right after election; the
    next ordinal must take over."""
    return paper_system(
        "leader-failure",
        recovery="nonblocking",
        crashes=[
            crash_at(node=victim, time=at),
            crash_at(node=second_victim, time=at + 0.01),
            crash_on(victim, "recovery", "leader_elected",
                     match_node=victim, immediate=True),
        ],
        **overrides,
    )


def figure1(
    recovery: str = "nonblocking",
    crash_p: bool = False,
    crash_q: bool = False,
    **overrides: Any,
) -> System:
    """The Section-2.1 example: S sends m to P, P sends m' to Q, Q sends
    m'' to R, under FBL(f=2), with optional crashes of P and/or Q."""
    from repro.procs.process import Send
    from repro.workloads.generators import Workload

    S, P, Q, R = 0, 1, 2, 3

    class Figure1Workload(Workload):
        def initial_sends(self, node_id, n_nodes):
            if node_id == S:
                return [Send(dst=P, payload={"name": "m"}, body_bytes=64)]
            return []

        def on_deliver(self, node_id, n_nodes, rsn, sender, payload):
            if node_id == P and payload.get("name") == "m":
                return [Send(dst=Q, payload={"name": "m_prime"}, body_bytes=64)]
            if node_id == Q and payload.get("name") == "m_prime":
                return [Send(dst=R, payload={"name": "m_dprime"}, body_bytes=64)]
            return []

    crashes = []
    if crash_p:
        crashes.append(crash_at(node=P, time=0.01))
    if crash_q:
        crashes.append(crash_at(node=Q, time=0.01))
    system = paper_system(
        f"figure1-{recovery}", recovery=recovery, crashes=crashes,
        n=4, **overrides,
    )
    for node in system.nodes:
        node.app.workload = Figure1Workload()
    return system


def output_commit_scenario(
    protocol: str = "fbl",
    recovery: str = "nonblocking",
    output_every: int = 4,
    crashes: Optional[List[CrashPlan]] = None,
    **overrides: Any,
) -> System:
    """E9: the workload externalises an output every k deliveries."""
    params = overrides.pop("protocol_params", None)
    if params is None:
        params = {"f": 2} if protocol == "fbl" else {}
        if protocol == "coordinated":
            params = {"snapshot_every": 12}
    return paper_system(
        f"output-{protocol}-{recovery}",
        recovery=recovery,
        crashes=crashes,
        protocol=protocol,
        protocol_params=params,
        workload_params={"hops": 40, "fanout": 2, "output_every": output_every},
        **overrides,
    )
