"""Pessimistic (receiver-based, synchronous) message logging.

The classic high-overhead/low-complexity point in the design space
(e.g. Borg et al.'s "fault tolerance under UNIX", Powell & Presotto's
Publishing): the receiver *synchronously* logs every message -- data and
receipt order -- to stable storage **before delivering it**.  Nothing
that influenced the application state can ever be lost, so:

* recovery is purely local (restore checkpoint, replay own stable log);
* no live process participates in recovery at all;
* but every delivery pays a stable-storage write on its critical path,
  the failure-free cost the paper's Section 6 attributes to pessimistic
  protocols.

Senders keep unacknowledged messages in a volatile send log and
retransmit them when the receiver announces its recovery, covering
messages that were in flight (received but not yet durably logged) at
the crash.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from repro.causality.determinant import Determinant
from repro.net.network import Message, MessageKind
from repro.protocols.base import LogBasedProtocol

#: Modelled on-disk size of a log record beyond the message body.
LOG_RECORD_OVERHEAD = 48


class PessimisticLogging(LogBasedProtocol):
    """Synchronous receiver-based logging with local recovery."""

    name = "pessimistic"
    supported_recovery = ("local",)
    requests_retransmissions = False

    def __init__(self) -> None:
        super().__init__()
        self._next_log_rsn = 0
        self._acked: Set[Tuple[int, int]] = set()
        self._pending_log: Set[Tuple[int, int]] = set()
        self.sync_log_writes = 0

    def _log_name(self) -> str:
        return f"msglog:{self.node.node_id}"

    # ------------------------------------------------------------------
    # receive path: log synchronously, deliver on completion
    # ------------------------------------------------------------------
    def on_app_message(self, msg: Message) -> None:
        key = (msg.src, msg.ssn)
        if key in self.node.delivered_ids or key in self._pending_log:
            return  # duplicate or already being logged
        self._log_then_deliver(msg.src, msg.ssn, msg.payload["data"], msg.body_bytes)

    def _log_then_deliver(
        self, sender: int, ssn: int, data: Dict[str, Any], body_bytes: int
    ) -> None:
        node = self.node
        rsn = self._next_log_rsn
        self._next_log_rsn += 1
        det = Determinant(sender=sender, ssn=ssn, receiver=node.node_id, rsn=rsn)
        self._pending_log.add((sender, ssn))
        self.sync_log_writes += 1
        epoch = node.crash_count

        def logged() -> None:
            if node.crash_count != epoch or not node.is_live:
                return  # crashed while the write was in flight
            # the record is durable; only now may the delivery happen
            node.trace.record(
                node.sim.now, "protocol", node.node_id, "log_commit",
                sender=sender, ssn=ssn, rsn=det.rsn,
            )
            self._pending_log.discard((sender, ssn))
            self._send_msg_ack(sender, ssn)
            self._deliver(sender, ssn, data, None)

        # The synchronous write: the delivery waits for stable storage.
        node.storage.log_append(
            self._log_name(),
            (det.to_tuple(), data, body_bytes),
            body_bytes + LOG_RECORD_OVERHEAD,
            on_done=logged,
            stall_node=node.node_id,
        )

    def _send_msg_ack(self, sender: int, ssn: int) -> None:
        node = self.node
        node.network.send(
            Message(
                src=node.node_id,
                dst=sender,
                kind=MessageKind.PROTOCOL,
                mtype="msg_ack",
                payload={"ssn": ssn},
                body_bytes=8,
                incarnation=node.incarnation,
            )
        )

    def on_app_message_during_recovery(self, msg: Message) -> None:
        # All replay data is local; incoming traffic is new and must wait
        # until the local replay rebuilds the pre-crash state.
        self._buffer_message(msg.src, msg.ssn, msg.payload["data"])

    def on_protocol_message(self, msg: Message) -> None:
        if msg.mtype == "msg_ack":
            self._acked.add((msg.src, msg.payload["ssn"]))
            return
        if msg.mtype == "retransmit_data":
            # treat like a fresh app message: it must be logged first
            key = (msg.src, msg.payload["ssn"])
            if self.node.is_recovering:
                self._buffer_message(msg.src, msg.payload["ssn"], msg.payload["data"])
                return
            if key in self.node.delivered_ids or key in self._pending_log:
                return
            self._log_then_deliver(
                msg.src, msg.payload["ssn"], msg.payload["data"], msg.body_bytes
            )
            return
        super().on_protocol_message(msg)

    # ------------------------------------------------------------------
    # crash / restore
    # ------------------------------------------------------------------
    def on_crash(self) -> None:
        super().on_crash()
        self._next_log_rsn = 0
        self._acked.clear()
        self._pending_log.clear()

    def on_checkpoint(self, checkpoint: "Checkpoint") -> None:
        """Compact the message log: entries the checkpoint covers are
        never replayed again, so the restore read shrinks."""
        count = checkpoint.delivered_count
        if count == 0:
            return
        dropped = self.node.storage.log_truncate_head(
            self._log_name(),
            lambda entry: entry[0][3] >= count,
            size_of=lambda entry: entry[2] + LOG_RECORD_OVERHEAD,
        )
        if dropped:
            self.node.trace.record(
                self.node.sim.now, "gc", self.node.node_id, "log_compacted",
                dropped=dropped, covered=count,
            )

    def checkpoint_extra(self) -> Dict[str, Any]:
        return {
            "send_log": self.send_log.to_state(),
            "acked": sorted(self._acked),
        }

    def on_restore(self, checkpoint: "Checkpoint") -> None:
        protocol_state = checkpoint.extra.get("protocol", {})
        self.send_log.load_state(protocol_state.get("send_log", []))
        self._acked = {tuple(item) for item in protocol_state.get("acked", [])}

    def restore_stable(self, on_done) -> None:
        """Read the whole message log back; it contains the full replay."""

        def loaded(entries: list) -> None:
            for det_tuple, data, _body in entries:
                det = Determinant.from_tuple(tuple(det_tuple))
                if det.rsn >= self.node.app.delivered_count:
                    self.det_log.add(det, logged_at=(self.node.node_id,))
                    self._buffer_message(det.sender, det.ssn, data)
            if entries:
                self._next_log_rsn = max(e[0][3] for e in entries) + 1
            else:
                self._next_log_rsn = self.node.app.delivered_count
            on_done()

        self.node.storage.log_read(
            self._log_name(), LOG_RECORD_OVERHEAD + 128, loaded
        )

    # ------------------------------------------------------------------
    # peer-recovery hook: retransmit what might have been in flight
    # ------------------------------------------------------------------
    def on_peer_recovered(self, peer: int) -> None:
        node = self.node
        for ssn, record in self.send_log.messages_for(peer):
            if (peer, ssn) in self._acked:
                continue
            node.network.send(
                Message(
                    src=node.node_id,
                    dst=peer,
                    kind=MessageKind.PROTOCOL,
                    mtype="retransmit_data",
                    payload={"ssn": ssn, "data": record["payload"]},
                    body_bytes=record["size"],
                    incarnation=node.incarnation,
                    ssn=ssn,
                )
            )

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        data = super().stats()
        data.update(
            sync_log_writes=self.sync_log_writes,
            stable_log_entries=self.node.storage.log_len(self._log_name())
            if self.node is not None
            else 0,
        )
        return data

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "PessimisticLogging()"
