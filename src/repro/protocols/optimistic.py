"""Optimistic message logging (Strom & Yemini style).

The receiver logs each delivery (determinant + data) to stable storage
*asynchronously*: the application never waits, so failure-free overhead
is low -- but a crash loses the un-flushed suffix of deliveries, and any
other process whose state depends on that lost suffix becomes an
**orphan** and must roll back too, possibly in a cascade.  This is
exactly the recovery-time complexity (and the intrusion on live
processes) that the paper's Section 6 contrasts with FBL/Manetho.

Dependency tracking uses per-message dependency vectors: every
application message carries ``{node: deliveries-at-send}``, receivers
fold it into their own vector, and a rollback announcement
``(p, recovered_count)`` makes every process with ``dep[p] >
recovered_count`` kill itself via a voluntary rollback.

Durable truncation: before rolling back, an orphan appends a truncate
marker to its stable log so that a later replay stops before the
invalidated suffix even if the in-memory constraint is lost.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from repro.causality.determinant import Determinant
from repro.net.network import Message, MessageKind
from repro.protocols.base import LogBasedProtocol

#: Modelled on-disk size of a log record beyond the message body.
LOG_RECORD_OVERHEAD = 48


class OptimisticLogging(LogBasedProtocol):
    """Asynchronous receiver logging with orphan rollbacks."""

    name = "optimistic"
    supported_recovery = ("optimistic",)
    requests_retransmissions = False
    #: keep every durable checkpoint: the newest one may be orphaned by
    #: a peer's rollback, and the restart then falls back to an earlier
    #: line (see restore_stable)
    retain_checkpoint_history = True

    def __init__(self) -> None:
        super().__init__()
        #: transitive dependency vector: node -> (incarnation, index) of
        #: the highest state interval of that node this process's state
        #: depends on.  Incarnations disambiguate pre- and post-rollback
        #: intervals (Strom & Yemini's state-interval indices).
        self.dep: Dict[int, Tuple[int, int]] = {}
        #: per-delivery dependency snapshots (volatile mirror of the log)
        self._dep_history: List[Dict[int, int]] = []
        self._acked: Set[Tuple[int, int]] = set()
        self.async_log_writes = 0
        self.orphan_rollbacks = 0
        self.orphan_messages_discarded = 0
        #: constraints learned from announcements while recovering
        self._replay_constraints: Dict[int, int] = {}
        #: known rollback announcements: peer -> (incarnation, bound);
        #: used to discard in-flight *orphan messages* whose dependency
        #: vectors reach into rolled-back state intervals
        self._recovery_bounds: Dict[int, Tuple[int, int]] = {}
        #: dep vectors of messages buffered during recovery
        self._buffered_deps: Dict[Tuple[int, int], Dict[int, Tuple[int, int]]] = {}
        #: True between deciding to roll back and the voluntary crash
        #: (waiting for the truncate marker to reach stable storage)
        self._rolling_back = False
        #: deliveries of ours durably logged so far (prefix property:
        #: the device completes writes in issue order)
        self._logged_upto = 0
        #: peer -> (incarnation, logged_upto) as last gossiped
        self._peer_stable: Dict[int, Tuple[int, int]] = {}
        #: peers waiting to hear that our durable prefix reached an index:
        #: querier -> highest index it needs
        self._stable_watchers: Dict[int, int] = {}
        #: Strom-Yemini incarnation end table: peer -> {new_inc: bound},
        #: meaning peer's recovery into new_inc kept exactly the prefix
        #: [0, bound) of all earlier incarnations
        self._incarnation_ends: Dict[int, Dict[int, int]] = {}
        #: our own end table {inc: recovered_count}, persisted in the
        #: stable log so it survives our crashes and can be served to
        #: peers whose knowledge has gaps
        self._own_ends: Dict[int, int] = {}

    def _log_name(self) -> str:
        return f"optlog:{self.node.node_id}"

    # ------------------------------------------------------------------
    # failure-free path
    # ------------------------------------------------------------------
    def send_app(self, dst: int, payload: Dict[str, Any], body_bytes: int) -> None:
        node = self.node
        ssn = node.next_ssn(dst)
        self.send_log.log(dst, ssn, payload, body_bytes)
        node.oracle.on_send(node.node_id, ssn, dst, node.app.delivered_count)
        node.trace.record(
            node.sim.now, "app", node.node_id, "send",
            dst=dst, ssn=ssn, deliveries=node.app.delivered_count,
        )
        dep = dict(self.dep)
        dep[node.node_id] = (node.incarnation, node.app.delivered_count)
        node.network.send(
            Message(
                src=node.node_id,
                dst=dst,
                kind=MessageKind.APPLICATION,
                mtype="app",
                payload={
                    "data": payload,
                    "dep": dep,
                    # gossip how much of our log is durable, for peers'
                    # output-commit decisions (Strom-Yemini commitability)
                    "stable": (node.incarnation, self._logged_upto),
                },
                body_bytes=body_bytes + 8 * len(dep) + 8,
                incarnation=node.incarnation,
                ssn=ssn,
            )
        )

    def _note_peer_stable(self, peer: int, stable) -> None:
        if stable is None:
            return
        stable = tuple(stable)
        if stable > self._peer_stable.get(peer, (-1, -1)):
            self._peer_stable[peer] = stable
            self._check_pending_outputs()

    def on_app_message(self, msg: Message) -> None:
        self._note_peer_stable(msg.src, msg.payload.get("stable"))
        if self._rolling_back:
            # doomed state: deliveries here would land in the log after
            # the truncate marker and pollute the replay
            return
        key = (msg.src, msg.ssn)
        if key in self.node.delivered_ids:
            return
        self._deliver_optimistic(
            msg.src, msg.ssn, msg.payload["data"], msg.payload.get("dep", {}),
            msg.body_bytes,
        )

    def _message_is_orphan(self, dep: Dict[int, int]) -> bool:
        """Does the message's dependency vector reach rolled-back state?

        Such a message was sent by (or causally descends from) a state
        interval that no longer exists; delivering it would re-orphan
        this process, so it is discarded.  Its content, if still
        meaningful, is regenerated by the sender's own rollback.
        """
        for peer, interval in dep.items():
            bound = self._recovery_bounds.get(int(peer))
            if bound is not None and self._violates(tuple(interval), *bound):
                return True
        return False

    def note_recovery_bound(self, peer: int, peer_inc: int, bound: int) -> None:
        """Record a rollback announcement for orphan-message filtering
        and for the output-commit end table."""
        current = self._recovery_bounds.get(peer)
        if current is None or peer_inc > current[0]:
            self._recovery_bounds[peer] = (peer_inc, bound)
        self._incarnation_ends.setdefault(peer, {})[peer_inc] = bound
        self._check_pending_outputs()

    def _deliver_optimistic(
        self,
        sender: int,
        ssn: int,
        data: Dict[str, Any],
        dep: Dict[int, int],
        body_bytes: int,
        relog: bool = True,
    ) -> None:
        node = self.node
        if self._message_is_orphan(dep):
            self.orphan_messages_discarded += 1
            node.trace.record(
                node.sim.now, "recovery", node.node_id, "orphan_message_discarded",
                sender=sender, ssn=ssn,
            )
            return
        # fold the sender's dependency vector into ours *before* delivery
        # (lexicographic max: a newer incarnation dominates any index)
        for peer, interval in dep.items():
            peer = int(peer)
            interval = tuple(interval)
            if interval > self.dep.get(peer, (-1, -1)):
                self.dep[peer] = interval
        rsn = node.app.delivered_count
        det = Determinant(sender=sender, ssn=ssn, receiver=node.node_id, rsn=rsn)
        self.det_log.add(det, logged_at=(node.node_id,))
        self._dep_history.append(dict(self.dep))
        sends = node.deliver_app(sender, ssn, data)
        if relog:
            # asynchronous log write: the application does NOT wait
            self.async_log_writes += 1
            node.storage.log_append(
                self._log_name(),
                ("entry", det.to_tuple(), data, dict(self.dep), body_bytes),
                body_bytes + LOG_RECORD_OVERHEAD,
                on_done=lambda: self._entry_logged(sender, ssn),
            )
        for send in sends:
            self.send_app(send.dst, send.payload, send.body_bytes)
        node.maybe_checkpoint()

    def _entry_logged(self, sender: int, ssn: int) -> None:
        self._logged_upto += 1
        self.node.trace.record(
            self.node.sim.now, "protocol", self.node.node_id, "log_commit",
            index=self._logged_upto,
        )
        self._check_pending_outputs()
        satisfied = [
            peer for peer, need in self._stable_watchers.items()
            if self._logged_upto >= need
        ]
        for peer in satisfied:
            del self._stable_watchers[peer]
            self._send_stable_info(peer)
        self._send_msg_ack(sender, ssn)

    def _send_stable_info(self, dst: int) -> None:
        node = self.node
        if not node.network.is_registered(node.node_id):
            return
        node.network.send(
            Message(
                src=node.node_id,
                dst=dst,
                kind=MessageKind.PROTOCOL,
                mtype="stable_info",
                payload={
                    "stable": (node.incarnation, self._logged_upto),
                    "ends": dict(self._own_ends),
                },
                body_bytes=16 + 8 * len(self._own_ends),
                incarnation=node.incarnation,
            )
        )

    def _send_msg_ack(self, sender: int, ssn: int) -> None:
        node = self.node
        if not node.network.is_registered(node.node_id):
            return  # crashed while the async write was in flight
        node.network.send(
            Message(
                src=node.node_id,
                dst=sender,
                kind=MessageKind.PROTOCOL,
                mtype="msg_ack",
                payload={"ssn": ssn},
                body_bytes=8,
                incarnation=node.incarnation,
            )
        )

    def on_checkpoint(self, checkpoint: "Checkpoint") -> None:
        """Compact checkpoint-covered log entries (opt-in).

        Unlike the pessimistic/Manetho truncation this is gated behind
        :class:`~repro.core.config.StorageRealismConfig.log_compaction`,
        because dropping entries shrinks the restart's log read and
        therefore changes run timing.  Recovery-control markers ("end",
        "truncate") are never dropped -- a replay still needs them to
        reject resurrected suffixes.
        """
        realism = self.node.config.storage_realism
        if realism is None or not realism.log_compaction:
            return
        count = checkpoint.delivered_count
        if count == 0:
            return
        dropped = self.node.storage.log_truncate_head(
            self._log_name(),
            lambda entry: entry[0] != "entry" or entry[1][3] >= count,
            size_of=lambda entry: entry[4] + LOG_RECORD_OVERHEAD,
        )
        if dropped:
            self.node.trace.record(
                self.node.sim.now, "gc", self.node.node_id, "log_compacted",
                dropped=dropped, covered=count,
            )

    def on_app_message_during_recovery(self, msg: Message) -> None:
        self._buffer_message(msg.src, msg.ssn, msg.payload["data"])
        self._buffered_deps[(msg.src, msg.ssn)] = msg.payload.get("dep", {})

    def on_protocol_message(self, msg: Message) -> None:
        if msg.mtype == "msg_ack":
            self._acked.add((msg.src, msg.payload["ssn"]))
            return
        if msg.mtype == "stable_query":
            need = msg.payload.get("need", 0)
            if self._logged_upto < need:
                # remember the querier; notify once the log catches up
                current = self._stable_watchers.get(msg.src, -1)
                self._stable_watchers[msg.src] = max(current, need)
            self._send_stable_info(msg.src)
            return
        if msg.mtype == "stable_info":
            for inc, bound in msg.payload.get("ends", {}).items():
                self._incarnation_ends.setdefault(msg.src, {})[int(inc)] = bound
            self._note_peer_stable(msg.src, msg.payload["stable"])
            self._check_pending_outputs()
            return
        if msg.mtype == "retransmit_data":
            key = (msg.src, msg.payload["ssn"])
            if self.node.is_recovering:
                self._buffer_message(msg.src, msg.payload["ssn"], msg.payload["data"])
                self._buffered_deps[key] = msg.payload.get("dep", {})
                return
            if key in self.node.delivered_ids:
                return
            self._deliver_optimistic(
                msg.src,
                msg.payload["ssn"],
                msg.payload["data"],
                msg.payload.get("dep", {}),
                msg.body_bytes,
            )
            return
        super().on_protocol_message(msg)

    # ------------------------------------------------------------------
    # crash / restore
    # ------------------------------------------------------------------
    def on_crash(self) -> None:
        super().on_crash()
        self.dep = {}
        self._dep_history = []
        self._acked.clear()
        self._replay_constraints = {}
        self._recovery_bounds = {}
        self._buffered_deps = {}
        self._rolling_back = False
        self._logged_upto = 0
        self._peer_stable = {}
        self._stable_watchers = {}
        self._incarnation_ends = {}
        self._own_ends = {}

    def checkpoint_extra(self) -> Dict[str, Any]:
        return {
            "send_log": self.send_log.to_state(),
            "acked": sorted(self._acked),
            "dep": dict(self.dep),
            "dep_history": [dict(d) for d in self._dep_history],
        }

    def on_restore(self, checkpoint: "Checkpoint") -> None:
        protocol_state = checkpoint.extra.get("protocol", {})
        self.send_log.load_state(protocol_state.get("send_log", []))
        self._acked = {tuple(item) for item in protocol_state.get("acked", [])}
        self.dep = {
            int(k): tuple(v) for k, v in protocol_state.get("dep", {}).items()
        }
        self._dep_history = [
            {int(k): tuple(v) for k, v in d.items()}
            for d in protocol_state.get("dep_history", [])
        ]

    def restore_stable(self, on_done) -> None:
        """Read the log, apply truncate markers, stage the valid prefix.

        The staged log also reveals whether the checkpoint the node just
        restored is itself an **orphan**: a checkpoint taken after a
        delivery that a peer's later rollback invalidated freezes the
        orphaned state, and restarting from it would only send this
        process through another voluntary rollback -- forever, since the
        same checkpoint is restored every time (the livelock this method
        breaks).  When the restored dependency history violates a replay
        constraint learned from the durable truncate markers, the newest
        retained checkpoint whose history satisfies every constraint is
        read back instead (the bootstrap checkpoint, with no
        dependencies, always qualifies)."""

        def loaded(entries: list) -> None:
            staged: Dict[int, Tuple[Determinant, Dict[str, Any], Dict[int, int]]] = {}
            for entry in entries:
                if entry[0] == "end":
                    _tag, inc, count = entry
                    self._own_ends[int(inc)] = count
                    continue
                if entry[0] == "truncate":
                    _tag, at_rsn, incvector, bounds = entry
                    staged = {rsn: v for rsn, v in staged.items() if rsn < at_rsn}
                    for peer, inc in incvector.items():
                        current = self.node.incvector.get(int(peer), 0)
                        self.node.incvector[int(peer)] = max(current, inc)
                    for peer, (peer_inc, bound) in bounds.items():
                        self.note_recovery_bound(int(peer), peer_inc, bound)
                        self.note_constraint(int(peer), peer_inc, bound)
                else:
                    _tag, det_tuple, data, dep, _body = entry
                    det = Determinant.from_tuple(tuple(det_tuple))
                    staged[det.rsn] = (det, data, dep)
            self._staged_log = staged
            if self._replay_constraints and self._history_violates(
                self._dep_history
            ):
                self._fall_back_to_clean_checkpoint(on_done)
                return
            on_done()

        self._staged_log: Dict[int, Tuple[Determinant, Dict[str, Any], Dict[int, int]]] = {}
        self.node.storage.log_read(self._log_name(), LOG_RECORD_OVERHEAD + 128, loaded)

    def _history_violates(self, dep_history) -> bool:
        """Does any retained delivery depend on a rolled-back interval?"""
        return any(
            self._violates(dep.get(peer), peer_inc, bound)
            for peer, (peer_inc, bound) in self._replay_constraints.items()
            for dep in dep_history
        )

    def _fall_back_to_clean_checkpoint(self, on_done) -> None:
        """Swap the orphaned restored line for the newest clean one."""
        node = self.node
        orphaned = node._restored_checkpoint
        candidate = None
        for checkpoint in reversed(node.checkpoints.durable_history):
            if checkpoint.checkpoint_id >= orphaned.checkpoint_id:
                continue
            history = [
                {int(k): tuple(v) for k, v in d.items()}
                for d in checkpoint.extra.get("protocol", {}).get(
                    "dep_history", []
                )
            ]
            if not self._history_violates(history):
                candidate = checkpoint
                break
        if candidate is None:
            # bootstrap images carry no dependencies, so this means the
            # history was not retained (store built without it) -- keep
            # the restored line rather than crash the restart
            on_done()
            return
        node.trace.record(
            node.sim.now, "recovery", node.node_id, "orphan_checkpoint_skipped",
            from_id=orphaned.checkpoint_id, to_id=candidate.checkpoint_id,
            delivered=candidate.delivered_count,
        )
        def reapplied(checkpoint) -> None:
            node.apply_checkpoint(checkpoint)
            on_done()

        node.checkpoints.restore_line(candidate, reapplied)

    # ------------------------------------------------------------------
    # replay: the contiguous, constraint-respecting logged prefix
    # ------------------------------------------------------------------
    def begin_replay(self, depinfo_wire: List[Any]) -> None:
        node = self.node
        start = node.app.delivered_count
        rsn = start
        while rsn in self._staged_log:
            det, data, dep = self._staged_log[rsn]
            if any(
                self._violates(dep.get(peer), peer_inc, bound)
                for peer, (peer_inc, bound) in self._replay_constraints.items()
            ):
                break  # the rest of the log depends on a rolled-back state
            rsn += 1
        target = rsn - 1
        node.trace.record(
            node.sim.now, "replay", node.node_id, "start",
            target_rsn=target, from_rsn=start,
        )
        for r in range(start, target + 1):
            det, data, dep = self._staged_log[r]
            # already durable: this is a replay of the log, not new data
            self._deliver_optimistic(det.sender, det.ssn, data, dep, 0, relog=False)
        self._staged_log = {}
        node.trace.record(
            node.sim.now, "replay", node.node_id, "done",
            delivered=node.app.delivered_count,
        )
        # everything replayed came from the durable log
        self._logged_upto = node.app.delivered_count
        # persist this recovery's end: peers with end-table gaps (they
        # were down during our announcement) can ask for it later
        self._own_ends[node.incarnation] = node.app.delivered_count
        node.storage.log_append(
            self._log_name(),
            ("end", node.incarnation, node.app.delivered_count),
            16,
        )
        node.recovery.on_replay_complete()
        # leftover buffered in-flight traffic
        leftovers = [k for k in self._replay_buffer_order if k in self._replay_buffer]
        self._replay_buffer_order = []
        for src, ssn in leftovers:
            data = self._replay_buffer.pop((src, ssn))
            dep = self._buffered_deps.pop((src, ssn), {})
            if (src, ssn) not in node.delivered_ids:
                self._deliver_optimistic(src, ssn, data, dep, 0)
        if self._pending_outputs:
            for output_id, _payload, _requested in self._pending_outputs:
                self._flush_for_output(output_id[1])
            self._check_pending_outputs()

    # ------------------------------------------------------------------
    # output commit: Strom-Yemini commitability
    # ------------------------------------------------------------------
    def _deps_at(self, rsn: int) -> Dict[int, Tuple[int, int]]:
        """The dependency vector as of delivery ``rsn`` -- an output's
        commitability depends on its causal past at emission, not on
        whatever the process went on to do afterwards."""
        if 0 <= rsn < len(self._dep_history):
            return self._dep_history[rsn]
        return self.dep

    def _dep_interval_stable(self, peer: int, inc: int, idx: int) -> bool:
        """Is interval ``(inc, idx)`` of ``peer`` durably logged *and*
        guaranteed to survive every recovery of ``peer`` we know of?

        * same incarnation as the peer's last gossip: the durable prefix
          must cover it;
        * older incarnation: it survives iff it lies below the bound of
          **every** later recovery (the Strom-Yemini incarnation end
          table), and the surviving prefix is durable by construction
          (it was replayed from the log).  We must know the bound of
          every intervening incarnation to say yes.
        """
        known_inc, known_upto = self._peer_stable.get(peer, (-1, -1))
        if inc == known_inc:
            # interval ``idx`` is the state after idx deliveries, i.e.
            # log entries 0..idx-1: durable once logged_upto >= idx
            return idx <= known_upto
        if inc > known_inc:
            return False  # our knowledge of the peer's log is behind
        ends = self._incarnation_ends.get(peer, {})
        later_bounds = [b for inc2, b in ends.items() if inc < inc2 <= known_inc]
        if len(later_bounds) < known_inc - inc:
            return False  # an intervening recovery's bound is unknown
        # interval ``idx`` is the state after idx deliveries; a recovery
        # to ``bound`` deliveries preserves exactly the intervals <= bound
        # (mirror of the orphan condition ``idx > bound``)
        return idx <= min(later_bounds)

    def _output_ready_for(self, rsn: int) -> bool:
        """Our causal past up to delivery ``rsn`` must be durably logged
        and survive any recovery: our own deliveries flushed through
        ``rsn``, and every dependency interval stable per
        :meth:`_dep_interval_stable`.  Because dependency vectors are
        transitive and logs have the prefix property, this covers the
        *entire* causal past (Strom & Yemini's committability)."""
        node = self.node
        if self._logged_upto < rsn + 1:
            return False
        for peer, (inc, idx) in self._deps_at(rsn).items():
            if peer == node.node_id:
                continue
            if not self._dep_interval_stable(peer, inc, idx):
                return False
        return True

    def _flush_for_output(self, rsn: int) -> None:
        """Ask dependency peers where their durable prefix stands; they
        reply now and again once their log reaches what we need."""
        node = self.node
        for peer, (_inc, idx) in sorted(self._deps_at(rsn).items()):
            if peer == node.node_id:
                continue
            node.network.send(
                Message(
                    src=node.node_id,
                    dst=peer,
                    kind=MessageKind.PROTOCOL,
                    mtype="stable_query",
                    payload={"need": idx},
                    body_bytes=8,
                    incarnation=node.incarnation,
                )
            )

    # ------------------------------------------------------------------
    # orphan handling
    # ------------------------------------------------------------------
    @staticmethod
    def _violates(interval, peer_inc: int, bound: int) -> bool:
        """Does a dependency on ``interval`` of a peer conflict with the
        peer having recovered to ``bound`` in incarnation ``peer_inc``?

        Only dependencies on *earlier* incarnations beyond the recovered
        prefix are orphaned; dependencies on the new incarnation are on
        post-recovery state and perfectly valid.
        """
        if interval is None:
            return False
        inc, idx = interval
        return inc < peer_inc and idx > bound

    def note_constraint(self, peer: int, peer_inc: int, bound: int) -> None:
        """A rollback announcement arrived while we were recovering."""
        current = self._replay_constraints.get(peer)
        if current is None or (peer_inc, bound) > current:
            self._replay_constraints[peer] = (peer_inc, bound)
        self.note_recovery_bound(peer, peer_inc, bound)

    def is_orphan_of(self, peer: int, peer_inc: int, bound: int) -> bool:
        """Does this process's state depend on a rolled-back interval?

        The current vector alone is not enough: the fold is a
        lexicographic max, so a message carrying the peer's *new*
        incarnation that outraces the rollback announcement overwrites
        the old-incarnation entry, and the announcement would find a
        clean vector on a process whose retained deliveries still
        depend on the rolled-back interval.  The per-delivery history
        keeps the evidence, so scan it too.
        """
        if self._violates(self.dep.get(peer), peer_inc, bound):
            return True
        return any(
            self._violates(dep.get(peer), peer_inc, bound)
            for dep in self._dep_history
        )

    def rollback_as_orphan(self, peer: int, peer_inc: int, bound: int) -> None:
        """Durably truncate the invalid suffix, then kill ourselves.

        The truncate marker (with the current incvector and the known
        recovery bounds) must be on stable storage *before* the voluntary
        crash -- a crash aborts in-flight writes, and losing the marker
        would let a later replay resurrect the invalidated suffix.  While
        the marker write is in flight, application deliveries are
        suppressed so nothing lands in the log after it.
        """
        if self._rolling_back:
            return  # already on the way down; bounds were recorded
        node = self.node
        self.orphan_rollbacks += 1
        node.metrics.orphan_rollbacks += 1
        stop_rsn = 0
        for rsn, dep in enumerate(self._dep_history):
            if self._violates(dep.get(peer), peer_inc, bound):
                stop_rsn = rsn
                break
        else:
            stop_rsn = len(self._dep_history)
        node.trace.record(
            node.sim.now, "recovery", node.node_id, "orphan_rollback",
            of=peer, bound=bound, stop_rsn=stop_rsn,
        )
        self._rolling_back = True
        bounds = {p: list(b) for p, b in self._recovery_bounds.items()}
        node.storage.log_append(
            self._log_name(),
            ("truncate", stop_rsn, dict(node.incvector), bounds),
            64,
            on_done=node.voluntary_rollback,
        )

    def on_peer_recovered(self, peer: int) -> None:
        node = self.node
        if self._pending_outputs:
            for output_id, _payload, _requested in self._pending_outputs:
                self._flush_for_output(output_id[1])
            self._check_pending_outputs()
        for ssn, record in self.send_log.messages_for(peer):
            if (peer, ssn) in self._acked:
                continue
            dep = dict(self.dep)
            dep[node.node_id] = (node.incarnation, node.app.delivered_count)
            node.network.send(
                Message(
                    src=node.node_id,
                    dst=peer,
                    kind=MessageKind.PROTOCOL,
                    mtype="retransmit_data",
                    payload={"ssn": ssn, "data": record["payload"], "dep": dep},
                    body_bytes=record["size"],
                    incarnation=node.incarnation,
                    ssn=ssn,
                )
            )

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        data = super().stats()
        data.update(
            async_log_writes=self.async_log_writes,
            orphan_rollbacks=self.orphan_rollbacks,
            orphan_messages_discarded=self.orphan_messages_discarded,
        )
        return data

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "OptimisticLogging()"
