"""The Family-Based Logging protocols, parameterised by ``f``.

From Section 2 of the paper:

    To tolerate f process failures in a rollback-recovery system, it is
    sufficient to log each message in the volatile store of its sender
    and to log its receipt order in the volatile store of f + 1
    different hosts.

Concretely:

* every outgoing message's data goes in the sender's volatile
  :class:`~repro.storage.volatile.SendLog` (captured by checkpoints so
  pre-checkpoint messages remain replayable across the sender's crash);
* every delivery creates a determinant, and each process piggybacks on
  each application message the determinants it knows that are not yet
  replicated at ``f + 1`` hosts ("propagation of the receipt order of a
  certain message stops as soon as it has been recorded in f + 1
  hosts");
* no stable-storage logging happens at all, except for the ``f = n``
  instance (see :mod:`repro.protocols.manetho`), which models stable
  storage as an additional process that never fails, exactly as the
  paper does.

Replication accounting is optimistic over reliable FIFO channels: when a
determinant is piggybacked to a host, that host is counted as storing it.
The FBL guarantee (some live host knows every needed receipt order)
therefore holds for up to ``f`` failures per run, which is the regime the
paper and all experiments operate in.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.causality.determinant import Determinant
from repro.net.network import Message, MessageKind
from repro.protocols.base import LogBasedProtocol

#: Virtual host id representing the never-failing stable-storage process
#: the paper introduces for the ``f = n`` case.
STABLE_HOST = -1


class FamilyBasedLogging(LogBasedProtocol):
    """FBL(f): sender-based data logging + f+1-replicated receipt orders.

    Parameters
    ----------
    f:
        Number of simultaneous failures to tolerate.  ``f = 1`` behaves
    like sender-based message logging; ``f = n`` (with stable-storage
    determinant logging) behaves like Manetho.
    ack_to_sender:
        If True, the receiver returns each new determinant to the
        message's sender in a small ack (classic SBML behaviour).  Off by
        default: plain FBL spreads determinants by piggybacking only.
    """

    name = "fbl"
    supported_recovery = ("blocking", "nonblocking", "nonblocking-restart")

    def __init__(self, f: int = 2, ack_to_sender: bool = False) -> None:
        super().__init__()
        if f < 1:
            raise ValueError(f"f must be >= 1, got {f!r}")
        self.f = f
        self.ack_to_sender = ack_to_sender
        # cache of determinants not yet replicated at f + 1 hosts, so a
        # send only scans piggyback *candidates*, not the whole log
        self._unstable: Dict[Tuple[int, int], Determinant] = {}
        self._next_flush_id = 0
        self.output_flushes = 0
        # open protocol.det_flush spans, keyed by (target, pushed dets)
        self._flush_spans: Dict[Tuple[int, Tuple], int] = {}

    @property
    def replication_target(self) -> int:
        """Hosts that must store a determinant before piggybacking stops."""
        return self.f + 1

    # ------------------------------------------------------------------
    # piggybacking
    # ------------------------------------------------------------------
    def _det_stable(self, det: Determinant) -> bool:
        hosts = self.det_log.logged_at(det)
        return STABLE_HOST in hosts or len(hosts) >= self.replication_target

    def _track(self, det: Determinant) -> None:
        """Refresh the unstable cache for one determinant."""
        key = det.delivery_id
        if self._det_stable(det):
            was = self._unstable.pop(key, None)
            if was is not None and det.receiver == self.node.node_id:
                # one of our own deliveries just crossed the f+1 (or
                # stable-host) threshold: outputs at this rsn are safe
                self.node.trace.record(
                    self.node.sim.now, "protocol", self.node.node_id,
                    "det_stable", rsn=det.rsn, sender=det.sender, ssn=det.ssn,
                )
            if self._pending_outputs and det.receiver == self.node.node_id:
                self._check_pending_outputs()
        else:
            self._unstable[key] = det

    def _rebuild_unstable(self) -> None:
        me = self.node.node_id
        self._unstable = {}
        for det in self.det_log.determinants():
            if not self._det_stable(det):
                self._unstable[det.delivery_id] = det
            elif det.receiver == me:
                # a determinant can arrive already stable (restored from
                # a checkpoint, or loaded from gathered depinfo) and so
                # never transit the unstable cache; re-announce it so the
                # stability record covers the whole log
                self.node.trace.record(
                    self.node.sim.now, "protocol", me, "det_stable",
                    rsn=det.rsn, sender=det.sender, ssn=det.ssn,
                )

    def _piggyback_for(self, dst: int) -> List[Tuple[Tuple[int, int, int, int], Tuple[int, ...]]]:
        items = []
        for key in sorted(self._unstable):
            det = self._unstable[key]
            hosts = self.det_log.logged_at(det)
            if dst in hosts:
                continue  # dst already stores it; no point re-sending
            items.append((det.to_tuple(), tuple(sorted(hosts))))
            # Reliable FIFO channel: dst will store it on receipt.
            self.det_log.note_logged_at(det, dst)
            self._track(det)
        return items

    def _absorb_piggyback(self, msg: Message) -> None:
        for det_tuple, hosts in msg.piggyback:
            det = Determinant.from_tuple(tuple(det_tuple))
            merged_hosts = set(hosts) | {msg.src, self.node.node_id}
            self.det_log.add(det, logged_at=merged_hosts)
            self._track(det)

    def _record_own_determinant(self, det: Determinant, msg: Optional[Message]) -> None:
        self._track(det)
        if self.ack_to_sender and msg is not None:
            self._send_det_ack(det)

    def _send_det_ack(self, det: Determinant) -> None:
        node = self.node
        node.network.send(
            Message(
                src=node.node_id,
                dst=det.sender,
                kind=MessageKind.PROTOCOL,
                mtype="det_ack",
                payload={"det": det.to_tuple()},
                body_bytes=16,
                incarnation=node.incarnation,
            )
        )

    def on_protocol_message(self, msg: Message) -> None:
        if msg.mtype == "det_ack":
            det = Determinant.from_tuple(tuple(msg.payload["det"]))
            self.det_log.add(det, logged_at=(msg.src, self.node.node_id))
            self._track(det)
            return
        if msg.mtype == "det_push":
            self._on_det_push(msg)
            return
        if msg.mtype == "det_push_ack":
            self._on_det_push_ack(msg)
            return
        if msg.mtype == "gc_notice":
            self._on_gc_notice(msg)
            return
        super().on_protocol_message(msg)

    # ------------------------------------------------------------------
    # output commit: FBL is ready when every determinant of its own
    # deliveries is replicated at f + 1 hosts; an explicit, acknowledged
    # push closes the gap when piggybacking has not yet done the job
    # ------------------------------------------------------------------
    def _output_ready_for(self, rsn: int) -> bool:
        me = self.node.node_id
        return not any(
            key[0] == me and key[1] <= rsn for key in self._unstable
        )

    def _flush_for_output(self, rsn: int) -> None:
        """Push this process's unstable determinants (up to the output's
        delivery) to enough hosts.

        Unlike piggybacking, the push is *acknowledged*: a determinant
        only counts as replicated once the target confirms storing it,
        so output-commit latency honestly includes the round trip.
        """
        node = self.node
        me = node.node_id
        own_unstable = [
            self._unstable[key]
            for key in sorted(self._unstable)
            if key[0] == me and key[1] <= rsn
        ]
        if not own_unstable:
            return
        per_target: Dict[int, List[Determinant]] = {}
        for det in own_unstable:
            hosts = self.det_log.logged_at(det)
            missing = self.replication_target - len(hosts)
            candidates = [
                p for p in range(node.config.n)
                if p != me and p not in hosts
                and not node.detector.is_suspected(p)
            ]
            for target in candidates[:missing]:
                per_target.setdefault(target, []).append(det)
        for target, dets in sorted(per_target.items()):
            self.output_flushes += 1
            if node.trace.spans.enabled:
                key = (target, tuple(d.to_tuple() for d in dets))
                span = node.trace.spans.begin(
                    "protocol.det_flush",
                    me,
                    node.sim.now,
                    target=target,
                    determinants=len(dets),
                )
                if span is not None and key not in self._flush_spans:
                    self._flush_spans[key] = span
            node.network.send(
                Message(
                    src=me,
                    dst=target,
                    kind=MessageKind.PROTOCOL,
                    mtype="det_push",
                    payload={"dets": [d.to_tuple() for d in dets]},
                    body_bytes=8 + 32 * len(dets),
                    incarnation=node.incarnation,
                )
            )

    def _on_det_push(self, msg: Message) -> None:
        stored = []
        for det_tuple in msg.payload["dets"]:
            det = Determinant.from_tuple(tuple(det_tuple))
            self.det_log.add(det, logged_at=(msg.src, self.node.node_id))
            self._track(det)
            stored.append(det.to_tuple())
        self.node.trace.record(
            self.node.sim.now, "protocol", self.node.node_id, "det_store",
            src=msg.src, dets=stored,
        )
        self.node.network.send(
            Message(
                src=self.node.node_id,
                dst=msg.src,
                kind=MessageKind.PROTOCOL,
                mtype="det_push_ack",
                payload={"dets": stored},
                body_bytes=8,
                incarnation=self.node.incarnation,
            )
        )

    def _on_det_push_ack(self, msg: Message) -> None:
        key = (msg.src, tuple(tuple(d) for d in msg.payload["dets"]))
        span = self._flush_spans.pop(key, None)
        if span is not None:
            self.node.trace.spans.end(span, self.node.sim.now)
        self.node.trace.record(
            self.node.sim.now, "protocol", self.node.node_id, "det_ack",
            src=msg.src, dets=[tuple(d) for d in msg.payload["dets"]],
        )
        for det_tuple in msg.payload["dets"]:
            det = Determinant.from_tuple(tuple(det_tuple))
            self.det_log.note_logged_at(det, msg.src)
            self._track(det)

    # ------------------------------------------------------------------
    # checkpoint integration
    # ------------------------------------------------------------------
    def checkpoint_extra(self) -> Dict[str, Any]:
        """Capture both volatile logs.

        The send log must survive the sender's crash for messages sent
        *before* the checkpoint (they are not regenerated by replay); the
        determinant log keeps this host's contribution to the ``f + 1``
        replication valid across its own crash-and-recover.
        """
        return {
            "send_log": self.send_log.to_state(),
            "det_log": self.det_log.to_state(),
        }

    def on_checkpoint(self, checkpoint: "Checkpoint") -> None:
        """A checkpoint became durable: garbage-collect.

        * locally, our own determinants for deliveries the checkpoint
          covers are never replayed again;
        * peers can prune their send logs up to our contiguous delivered
          prefix and drop their copies of our covered determinants.
        """
        node = self.node
        count = checkpoint.delivered_count
        if count == 0:
            return
        dropped = self.det_log.drop_receiver_prefix(node.node_id, count)
        for key in [k for k in self._unstable if k[0] == node.node_id and k[1] < count]:
            del self._unstable[key]
        # prune strictly from the snapshot's own delivered set: messages
        # delivered while the checkpoint write was in flight are NOT
        # covered by it, and a crash before the next checkpoint would
        # need their data from the senders again
        prefixes = self._contiguous_delivered_prefixes(
            checkpoint.extra.get("delivered_ids")
        )
        node.trace.record(
            node.sim.now, "gc", node.node_id, "notice",
            covered=count, local_dets_dropped=dropped,
        )
        # a durable checkpoint makes the covered prefix recoverable by
        # itself: outputs gated on those determinants may commit now
        self._check_pending_outputs()
        for peer in range(node.config.n):
            if peer == node.node_id:
                continue
            node.network.send(
                Message(
                    src=node.node_id,
                    dst=peer,
                    kind=MessageKind.PROTOCOL,
                    mtype="gc_notice",
                    payload={
                        "covered": count,
                        "ssn_prefix": prefixes.get(peer, -1),
                    },
                    body_bytes=16,
                    incarnation=node.incarnation,
                )
            )

    def _contiguous_delivered_prefixes(
        self, delivered_ids: Optional[Iterable[Tuple[int, int]]] = None
    ) -> Dict[int, int]:
        """Per sender: highest k such that ssns 0..k are all delivered.

        Only a contiguous prefix is safe to prune at the sender -- a gap
        may be a message still in flight.  ``delivered_ids`` defaults to
        the live set; garbage collection passes a durable checkpoint's
        set instead, since only those deliveries can never replay again.
        """
        if delivered_ids is None:
            delivered_ids = self.node.delivered_ids
        by_sender: Dict[int, set] = {}
        for sender, ssn in delivered_ids:
            by_sender.setdefault(sender, set()).add(ssn)
        prefixes: Dict[int, int] = {}
        for sender, ssns in by_sender.items():
            k = -1
            while k + 1 in ssns:
                k += 1
            prefixes[sender] = k
        return prefixes

    def _on_gc_notice(self, msg: Message) -> None:
        pruned = self.send_log.prune_upto(msg.src, msg.payload["ssn_prefix"])
        dropped = self.det_log.drop_receiver_prefix(msg.src, msg.payload["covered"])
        for key in [
            k for k in self._unstable
            if k[0] == msg.src and k[1] < msg.payload["covered"]
        ]:
            del self._unstable[key]
        if pruned or dropped:
            self.node.trace.record(
                self.node.sim.now, "gc", self.node.node_id, "pruned",
                peer=msg.src, send_log=pruned, determinants=dropped,
            )

    def on_restore(self, checkpoint: "Checkpoint") -> None:
        protocol_state = checkpoint.extra.get("protocol", {})
        self.send_log.load_state(protocol_state.get("send_log", []))
        self.det_log.load_state(protocol_state.get("det_log", []))
        self._rebuild_unstable()

    def on_crash(self) -> None:
        super().on_crash()
        self._unstable.clear()
        for span in self._flush_spans.values():
            self.node.trace.spans.end(span, self.node.sim.now, aborted=True)
        self._flush_spans.clear()

    def _on_depinfo_loaded(self) -> None:
        self._rebuild_unstable()

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        data = super().stats()
        data.update(
            f=self.f,
            output_flushes=self.output_flushes,
            unstable_determinants=sum(
                1 for det in self.det_log.determinants() if not self._det_stable(det)
            ),
            # volatile-log GC effectiveness (checkpoint-driven pruning)
            send_log_bytes_pruned=self.send_log.bytes_pruned,
            send_log_entries_pruned=self.send_log.entries_pruned,
            determinants_pruned=self.det_log.entries_pruned,
        )
        return data

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FamilyBasedLogging(f={self.f})"
