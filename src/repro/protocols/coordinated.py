"""Coordinated checkpointing (no logging at all).

The other classical alternative to message logging: processes take
*consistent global snapshots* and, on any failure, everyone rolls back
to the last committed snapshot line.  Failure-free cost is periodic
(here: a send-hold while channels drain, plus a checkpoint write);
recovery cost is massive intrusion -- every process loses all work since
the last snapshot and stalls through a stable-storage restore.  This is
the contrast class for experiment E7.

The snapshot algorithm is counter-based coordinated checkpointing (a
blocking variant of Chandy-Lamport / Mattern):

1. the initiator broadcasts ``cl_prepare``; every process *holds* its
   outgoing application sends (deliveries continue, draining channels);
2. processes report per-channel sent/received counters; the initiator
   re-polls until, for every channel, sent == received -- at which point
   no application message is in flight anywhere;
3. the initiator broadcasts ``cl_snap``: everyone snapshots its state
   (channels are empty, so process states alone form a consistent cut);
4. when every snapshot write is durable the initiator broadcasts
   ``cl_commit``; the round becomes the system-wide rollback target and
   everyone releases its held sends.

Holds are released at *commit*, not right after the local snapshot:
a process that released early could have its first post-snapshot
message overtake another process's still-in-flight ``cl_snap`` (easy
once the network delays or retransmits messages), and the late
snapshotter would record receipts the early releaser's snapshot says
were never sent -- an inconsistent cut that, once rolled back to, leaves
``received > sent`` on some channel and a drain check that can never
balance again.  Deferring the release until every snapshot is known to
be captured closes the race.

All round-machinery messages carry the sender's rollback epoch and
receivers discard mismatches, so control traffic from a rolled-back
execution (a stale ``cl_prepare`` would start a hold nothing ever
releases) cannot re-engage the round state machine.

Rollback uses epochs: every message carries its sender's epoch; a
rollback bumps the system epoch, so messages from the rolled-back
execution are discarded, and messages from a process that already
rolled back are buffered by processes that have not yet caught up.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.net.network import Message, MessageKind
from repro.protocols.base import LoggingProtocol

#: Delay between counter polls while waiting for channels to drain.
POLL_INTERVAL = 0.005


class CoordinatedCheckpointing(LoggingProtocol):
    """Consistent snapshots + global rollback; no message logging."""

    name = "coordinated"
    supported_recovery = ("coordinated",)
    #: re-execution after rollback may take a different interleaving, so
    #: the replay-determinism oracle does not apply
    oracle_compatible = False

    def __init__(self, snapshot_every: int = 10, initiator: int = 0) -> None:
        super().__init__()
        if snapshot_every < 1:
            raise ValueError(f"snapshot_every must be >= 1, got {snapshot_every!r}")
        self.snapshot_every = snapshot_every
        self.initiator = initiator
        self.epoch = 0
        self.committed_round = 0
        self.sent_count: Dict[int, int] = {}
        self.recv_count: Dict[int, int] = {}
        self._holding = False
        self._held_sends: List[Tuple[int, Dict[str, Any], int]] = []
        self._hold_started_at: Optional[float] = None
        #: the newest round this hold serves; a commit releases the hold
        #: only if it covers this round (a stale commit must not)
        self._hold_round = 0
        self.hold_time_total = 0.0
        #: round-machinery messages dropped for carrying a stale epoch
        self.stale_ctl_dropped = 0
        self._future_epoch: List[Message] = []
        # initiator state
        self._round_in_progress: Optional[int] = None
        self._next_round = 1
        self._counts: Dict[int, Tuple[Dict, Dict]] = {}
        self._done: set = set()
        self.rounds_committed = 0
        self.rounds_aborted = 0
        #: outputs waiting for a committed snapshot covering them:
        #: (output_id, payload, requested_at, rsn)
        self._pending_outputs: List[Tuple[tuple, Dict[str, Any], float, int]] = []
        #: round -> our delivered_count captured in that round's snapshot
        self._round_counts: Dict[int, int] = {0: 0}
        #: delivered_count covered by the latest *committed* round
        self._committed_count = 0
        # -- snapshot GC (gated by StorageRealismConfig.log_compaction) --
        #: peer -> highest committed round known *durable* at that peer
        #: (learned from cl_gc broadcasts; lower-bounds the peer's
        #: durable committed marker forever, because the marker writes
        #: are FIFO and the marker never decreases)
        self._durable_marks: Dict[int, int] = {}
        #: round ids with a snapshot on our stable storage
        self._written_rounds: set = set()
        self.rounds_reclaimed = 0

    # ------------------------------------------------------------------
    # sending / receiving
    # ------------------------------------------------------------------
    def send_app(self, dst: int, payload: Dict[str, Any], body_bytes: int) -> None:
        if self._holding:
            self._held_sends.append((dst, dict(payload), body_bytes))
            return
        self._send_now(dst, payload, body_bytes)

    def _send_now(self, dst: int, payload: Dict[str, Any], body_bytes: int) -> None:
        node = self.node
        ssn = node.next_ssn(dst)
        self.sent_count[dst] = self.sent_count.get(dst, 0) + 1
        node.network.send(
            Message(
                src=node.node_id,
                dst=dst,
                kind=MessageKind.APPLICATION,
                mtype="app",
                payload={"data": payload, "epoch": self.epoch},
                body_bytes=body_bytes + 8,
                incarnation=node.incarnation,
                ssn=ssn,
            )
        )

    def on_app_message(self, msg: Message) -> None:
        msg_epoch = msg.payload.get("epoch", 0)
        if msg_epoch < self.epoch:
            return  # from a rolled-back execution
        if msg_epoch > self.epoch:
            self._future_epoch.append(msg)  # sender already rolled forward
            return
        self.recv_count[msg.src] = self.recv_count.get(msg.src, 0) + 1
        node = self.node
        sends = node.deliver_app(msg.src, msg.ssn, msg.payload["data"])
        for send in sends:
            self.send_app(send.dst, send.payload, send.body_bytes)
        self._maybe_initiate_round()

    def on_app_message_during_recovery(self, msg: Message) -> None:
        # The recovering node is about to roll everyone back; queue until
        # the epoch question is settled.
        self._future_epoch.append(msg)

    # ------------------------------------------------------------------
    # output commit: an output is safe only once a snapshot line that
    # includes its delivery has been committed system-wide -- coordinated
    # checkpointing's notoriously slow output commit
    # ------------------------------------------------------------------
    def request_output_commit(self, output_id: tuple, payload: Dict[str, Any]) -> None:
        node = self.node
        rsn = output_id[1]
        if rsn < self._committed_count:
            node.commit_output(output_id, payload, node.sim.now)
            return
        self._pending_outputs.append((output_id, dict(payload), node.sim.now, rsn))
        self._solicit_round()

    def _solicit_round(self) -> None:
        """Ask the initiator for a snapshot round so pending outputs can
        commit even after application traffic quiesces."""
        node = self.node
        if node.node_id == self.initiator:
            self._start_round()
        else:
            self._send_ctl(self.initiator, "cl_round_request", {}, body=8)

    def _on_cl_round_request(self, msg: Message) -> None:
        if self.node.node_id == self.initiator:
            self._start_round()

    def _release_committed_outputs(self) -> None:
        still_pending = []
        for output_id, payload, requested_at, rsn in self._pending_outputs:
            if rsn < self._committed_count:
                self.node.commit_output(output_id, payload, requested_at)
            else:
                still_pending.append((output_id, payload, requested_at, rsn))
        self._pending_outputs = still_pending

    def _drain_future_epoch(self) -> None:
        pending, self._future_epoch = self._future_epoch, []
        for msg in pending:
            self.node.receive(msg)

    # ------------------------------------------------------------------
    # snapshot rounds
    # ------------------------------------------------------------------
    def _peers(self) -> List[int]:
        return [p for p in range(self.node.config.n) if p != self.node.node_id]

    def _send_ctl(self, dst: int, mtype: str, payload: Dict[str, Any], body: int = 24) -> None:
        node = self.node
        payload = dict(payload)
        payload.setdefault("epoch", self.epoch)
        node.network.send(
            Message(
                src=node.node_id,
                dst=dst,
                kind=MessageKind.PROTOCOL,
                mtype=mtype,
                payload=payload,
                body_bytes=body,
                incarnation=node.incarnation,
            )
        )

    def _maybe_initiate_round(self) -> None:
        node = self.node
        if node.node_id != self.initiator:
            return
        if node.app.delivered_count % self.snapshot_every != 0:
            return
        self._start_round()

    def _start_round(self) -> None:
        node = self.node
        if self._round_in_progress is not None or not node.is_live:
            return
        round_id = self._next_round
        self._next_round += 1
        self._round_in_progress = round_id
        self._counts = {}
        self._done = set()
        node.trace.record(node.sim.now, "snapshot", node.node_id, "round_start", round=round_id)
        self._begin_hold(round_id)
        for peer in self._peers():
            self._send_ctl(peer, "cl_prepare", {"round": round_id})
        self._counts[node.node_id] = (dict(self.sent_count), dict(self.recv_count))
        self._check_balance()

    def _begin_hold(self, round_id: int) -> None:
        self._hold_round = max(self._hold_round, round_id)
        if not self._holding:
            self._holding = True
            self._hold_started_at = self.node.sim.now

    def _release_hold(self) -> None:
        if self._holding:
            self._holding = False
            if self._hold_started_at is not None:
                self.hold_time_total += self.node.sim.now - self._hold_started_at
                self._hold_started_at = None
            held, self._held_sends = self._held_sends, []
            for dst, payload, body in held:
                self._send_now(dst, payload, body)

    def on_protocol_message(self, msg: Message) -> None:
        if msg.payload.get("epoch", self.epoch) != self.epoch:
            self.stale_ctl_dropped += 1
            return  # round traffic from a rolled-back execution
        handler = getattr(self, f"_on_{msg.mtype}", None)
        if handler is not None:
            handler(msg)

    def _on_cl_prepare(self, msg: Message) -> None:
        self._begin_hold(msg.payload["round"])
        self._send_counts(msg.src, msg.payload["round"])

    def _on_cl_counts_request(self, msg: Message) -> None:
        self._send_counts(msg.src, msg.payload["round"])

    def _send_counts(self, dst: int, round_id: int) -> None:
        self._send_ctl(
            dst,
            "cl_counts",
            {
                "round": round_id,
                "sent": dict(self.sent_count),
                "recv": dict(self.recv_count),
            },
            body=16 + 16 * self.node.config.n,
        )

    def _on_cl_counts(self, msg: Message) -> None:
        if msg.payload["round"] != self._round_in_progress:
            return
        self._counts[msg.src] = (msg.payload["sent"], msg.payload["recv"])
        self._check_balance()

    def _check_balance(self) -> None:
        node = self.node
        round_id = self._round_in_progress
        if round_id is None:
            return
        everyone = set(range(node.config.n))
        if set(self._counts) != everyone:
            return
        self._counts[node.node_id] = (dict(self.sent_count), dict(self.recv_count))
        balanced = True
        for a in everyone:
            sent_a = self._counts[a][0]
            for b in everyone:
                if a == b:
                    continue
                if sent_a.get(b, sent_a.get(str(b), 0)) != self._counts[b][1].get(
                    a, self._counts[b][1].get(str(a), 0)
                ):
                    balanced = False
                    break
            if not balanced:
                break
        if balanced:
            node.trace.record(node.sim.now, "snapshot", node.node_id, "drained", round=round_id)
            for peer in self._peers():
                self._send_ctl(peer, "cl_snap", {"round": round_id})
            self._take_round_snapshot(round_id, report_to=None)
        else:
            # channels still draining; poll again shortly
            node.sim.schedule(POLL_INTERVAL, self._poll_counts, round_id, label="cl_poll")

    def _poll_counts(self, round_id: int) -> None:
        if round_id != self._round_in_progress or not self.node.is_live:
            return
        self._counts = {self.node.node_id: (dict(self.sent_count), dict(self.recv_count))}
        for peer in self._peers():
            self._send_ctl(peer, "cl_counts_request", {"round": round_id})
        self._check_balance()

    def _on_cl_snap(self, msg: Message) -> None:
        self._take_round_snapshot(msg.payload["round"], report_to=msg.src)

    def _take_round_snapshot(self, round_id: int, report_to: Optional[int]) -> None:
        """Capture state in memory now and write it durably.  The hold
        stays up until the round commits (or aborts): releasing here
        would let our first post-snapshot message race a peer's
        still-in-flight ``cl_snap`` and corrupt the cut."""
        node = self.node
        record = {
            "round": round_id,
            "app_state": node.app.snapshot(),
            "send_seqnos": dict(node.send_seqnos),
            "delivered_ids": sorted(node.delivered_ids),
            "sent_count": dict(self.sent_count),
            "recv_count": dict(self.recv_count),
            "epoch": self.epoch,
            # pending output is part of the cut: with channels drained,
            # the system's entire "future" lives in these held sends
            "held_sends": [
                (dst, dict(payload), body) for dst, payload, body in self._held_sends
            ],
        }
        node.trace.record(
            node.sim.now, "snapshot", node.node_id, "snap", round=round_id,
            delivered=node.app.delivered_count,
            sent=dict(self.sent_count), recv=dict(self.recv_count),
        )
        self._round_counts[round_id] = node.app.delivered_count
        self._written_rounds.add(round_id)

        def durable() -> None:
            if report_to is None:
                self._on_cl_done_local(round_id)
            else:
                self._send_ctl(report_to, "cl_done", {"round": round_id}, body=8)

        node.storage.write(
            f"round:{round_id}", record, node.config.state_bytes, on_done=durable
        )

    def _on_cl_done(self, msg: Message) -> None:
        if msg.payload["round"] != self._round_in_progress:
            return
        self._done.add(msg.src)
        self._check_round_committed()

    def _on_cl_done_local(self, round_id: int) -> None:
        if round_id != self._round_in_progress:
            return
        self._done.add(self.node.node_id)
        self._check_round_committed()

    def _check_round_committed(self) -> None:
        node = self.node
        if self._round_in_progress is None:
            return
        if self._done != set(range(node.config.n)):
            return
        round_id = self._round_in_progress
        self._round_in_progress = None
        self.rounds_committed += 1
        node.trace.record(node.sim.now, "snapshot", node.node_id, "commit", round=round_id)
        for peer in self._peers():
            self._send_ctl(peer, "cl_commit", {"round": round_id}, body=8)
        self._apply_commit(round_id)

    def _on_cl_commit(self, msg: Message) -> None:
        self._apply_commit(msg.payload["round"])

    def _apply_commit(self, round_id: int) -> None:
        if self._holding and round_id >= self._hold_round:
            self._release_hold()
        if round_id > self.committed_round:
            self.committed_round = round_id
            self._committed_count = self._round_counts.get(
                round_id, self._committed_count
            )
            # per-node commit point: outputs up to ``covered`` deliveries
            # are recoverable from the committed cut from here on
            self.node.trace.record(
                self.node.sim.now, "snapshot", self.node.node_id, "committed",
                round=round_id, covered=self._committed_count,
            )
            self._write_committed_marker(round_id)
            self._release_committed_outputs()
            if self._pending_outputs:
                # an output requested after this round's snapshot: ask for
                # one more round to cover it
                self._solicit_round()

    # ------------------------------------------------------------------
    # snapshot GC: reclaim rounds below the global durable-commit horizon
    # ------------------------------------------------------------------
    def _gc_enabled(self) -> bool:
        realism = self.node.config.storage_realism
        return realism is not None and realism.log_compaction

    def _write_committed_marker(self, round_id: int) -> None:
        """Persist the committed-round marker; with GC enabled, announce
        the mark once it is *durable* (the announcement is a promise the
        marker can never again read below ``round_id``)."""
        if not self._gc_enabled():
            self.node.storage.write(f"committed:{self.node.node_id}", round_id, 8)
            return
        node = self.node
        epoch = node.crash_count

        def durable() -> None:
            if node.crash_count != epoch or not node.is_live:
                return  # the mark died with the crash; never announce it
            self._note_durable_mark(node.node_id, round_id)
            for peer in self._peers():
                self._send_ctl(peer, "cl_gc", {"round": round_id}, body=8)

        node.storage.write(
            f"committed:{node.node_id}", round_id, 8, on_done=durable
        )

    def _on_cl_gc(self, msg: Message) -> None:
        if self._gc_enabled():
            self._note_durable_mark(msg.src, msg.payload["round"])

    def _note_durable_mark(self, peer: int, round_id: int) -> None:
        if round_id > self._durable_marks.get(peer, -1):
            self._durable_marks[peer] = round_id
            self._reclaim_below_horizon()

    def _reclaim_below_horizon(self) -> None:
        """Drop snapshots no rollback can ever target again.

        Any future rollback round is the minimum of per-node *durable*
        committed markers, each of which is lower-bounded by that node's
        announced mark (marker writes are FIFO and monotone).  Rounds
        strictly below the minimum announced mark are therefore dead,
        whatever fails next.  Requires a mark from every node -- a
        silent (crashed) peer conservatively freezes the horizon.
        """
        node = self.node
        if set(self._durable_marks) != set(range(node.config.n)):
            return
        horizon = min(self._durable_marks.values())
        dead = sorted(r for r in self._written_rounds if r < horizon)
        for round_id in dead:
            node.storage.reclaim(f"round:{round_id}", node.config.state_bytes)
            self._written_rounds.discard(round_id)
            self._round_counts.pop(round_id, None)
            self.rounds_reclaimed += 1
        if dead:
            node.trace.record(
                node.sim.now, "gc", node.node_id, "rounds_reclaimed",
                rounds=dead, horizon=horizon,
            )

    def abort_round(self) -> None:
        """A failure interrupted the round; drop it and release holds."""
        if self._round_in_progress is not None:
            self.rounds_aborted += 1
            self.node.trace.record(
                self.node.sim.now, "snapshot", self.node.node_id, "abort",
                round=self._round_in_progress,
            )
            self._round_in_progress = None
        self._release_hold()

    # ------------------------------------------------------------------
    # rollback support (driven by CoordinatedRecovery)
    # ------------------------------------------------------------------
    def rollback_to_round(
        self, round_id: int, new_epoch: int, on_done: Callable[[], None]
    ) -> None:
        """Stall, reload round ``round_id`` from stable storage, restart.

        The stall (stable read of the full process image) is charged as
        blocked time: this is coordinated checkpointing's intrusion on
        processes that did not fail.
        """
        node = self.node
        was_live = node.is_live
        if was_live:
            node.block()
        self.abort_round()

        def loaded(record: Any) -> None:
            if record is None:
                raise RuntimeError(
                    f"node {node.node_id} has no snapshot for round {round_id}"
                )
            node.apply_snapshot(
                record["app_state"], record["send_seqnos"], record["delivered_ids"]
            )
            self.sent_count = dict(record["sent_count"])
            self.recv_count = dict(record["recv_count"])
            self.epoch = new_epoch
            self.committed_round = round_id
            # never reuse a round id that a snapshot already exists for
            self._next_round = max(self._next_round, round_id + 1)
            self._committed_count = record["app_state"]["delivered_count"]
            # outputs from the rolled-back execution are void; they were
            # never released (that is the whole point)
            self._pending_outputs = [
                p for p in self._pending_outputs if p[3] < self._committed_count
            ]
            self._held_sends = []
            node.trace.record(
                node.sim.now, "snapshot", node.node_id, "rolled_back",
                round=round_id, epoch=new_epoch, covered=self._committed_count,
            )
            if was_live:
                node.unblock()
            # resume the cut's pending output under the new epoch
            for dst, payload, body in record.get("held_sends", []):
                self._send_now(dst, dict(payload), body)
            # finish the recovery hand-off *before* draining: a
            # recovering node must be live again or the drained messages
            # would just be re-buffered
            on_done()
            self._drain_future_epoch()

        node.storage.read(f"round:{round_id}", node.config.state_bytes, loaded)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def on_start(self) -> None:
        # round 0: the initial states form a trivially consistent cut,
        # whose pending output is exactly the workload's initial sends
        record = {
            "round": 0,
            "app_state": self.node.app.snapshot(),
            "send_seqnos": {},
            "delivered_ids": [],
            "sent_count": {},
            "recv_count": {},
            "epoch": 0,
            "held_sends": [
                (send.dst, dict(send.payload), send.body_bytes)
                for send in self.node.app.initial_sends()
            ],
        }
        # the round-0 image is on disk before the process launches
        self.node.storage.write_bootstrap("round:0", record)
        self.node.storage.write_bootstrap(f"committed:{self.node.node_id}", 0)
        self._written_rounds.add(0)
        if self._gc_enabled():
            # every node's committed marker is durably 0 at time zero
            self._durable_marks = {p: 0 for p in range(self.node.config.n)}
        super().on_start()

    def on_crash(self) -> None:
        self._pending_outputs = []
        self._round_counts = {0: 0}
        self._committed_count = 0
        self.sent_count = {}
        self.recv_count = {}
        self._holding = False
        self._held_sends = []
        self._hold_started_at = None
        self._hold_round = 0
        self._future_epoch = []
        self._round_in_progress = None
        self._counts = {}
        self._done = set()
        self.epoch = 0
        self.committed_round = 0
        # durable-mark knowledge is volatile (re-learned from cl_gc);
        # _written_rounds mirrors stable contents, which survive
        self._durable_marks = {}

    def restore_stable(self, on_done: Callable[[], None]) -> None:
        """Recover the committed-round marker (epoch comes from peers)."""

        def loaded(value: Any) -> None:
            self.committed_round = value or 0
            self._next_round = max(self._next_round, self.committed_round + 1)
            on_done()

        self.node.storage.read(f"committed:{self.node.node_id}", 8, loaded)

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        data = super().stats()
        data.update(
            pending_outputs=len(self._pending_outputs),
            rounds_committed=self.rounds_committed,
            rounds_aborted=self.rounds_aborted,
            hold_time_total=self.hold_time_total,
            stale_ctl_dropped=self.stale_ctl_dropped,
            epoch=self.epoch,
            committed_round=self.committed_round,
            rounds_reclaimed=self.rounds_reclaimed,
        )
        return data

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CoordinatedCheckpointing(every={self.snapshot_every})"
