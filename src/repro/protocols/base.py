"""Protocol base classes.

:class:`LoggingProtocol` is the interface every protocol implements;
:class:`LogBasedProtocol` adds the machinery shared by the message-logging
family (FBL and its instances): sender-side volatile message logging,
retransmission service, and the deterministic *replay engine* that a
recovering process runs once the recovery algorithm has handed it the
receipt orders of its pre-crash deliveries.

The replay engine is recovery-algorithm-agnostic: both the blocking
baseline and the paper's new non-blocking algorithm end by calling
:meth:`LogBasedProtocol.begin_replay` with the gathered ``depinfo``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.net.network import Message, MessageKind


class LoggingProtocol(ABC):
    """Interface between a :class:`~repro.core.node.Node` and its protocol."""

    #: human-readable protocol name
    name: str = "abstract"
    #: recovery manager names this protocol can be paired with
    supported_recovery: Tuple[str, ...] = ()
    #: whether begin_replay should ask senders to retransmit logged data
    requests_retransmissions: bool = True
    #: whether the run is deterministic enough for the replay oracle
    oracle_compatible: bool = True

    def __init__(self) -> None:
        self.node = None  # set by attach()
        self.piggyback_determinants_sent = 0

    # -- wiring ----------------------------------------------------------
    def attach(self, node: "Node") -> None:
        """Bind the protocol to its node.  Called once at system build."""
        self.node = node

    # -- failure-free operation -------------------------------------------
    def on_start(self) -> None:
        """Emit the application's initial sends."""
        for send in self.node.app.initial_sends():
            self.send_app(send.dst, send.payload, send.body_bytes)

    @abstractmethod
    def send_app(self, dst: int, payload: Dict[str, Any], body_bytes: int) -> None:
        """Application-level send, with whatever logging the protocol does."""

    @abstractmethod
    def on_app_message(self, msg: Message) -> None:
        """An application message arrived while the node is live."""

    def on_protocol_message(self, msg: Message) -> None:
        """A protocol control message arrived (acks, retransmissions...)."""

    def on_app_message_during_recovery(self, msg: Message) -> None:
        """An application message arrived while the node is recovering."""

    def on_peer_recovered(self, peer: int) -> None:
        """A peer completed recovery (hook for retransmitting in-flight
        messages it may have lost)."""

    # -- crash / checkpoint lifecycle --------------------------------------
    @abstractmethod
    def on_crash(self) -> None:
        """The node crashed: every volatile structure is wiped."""

    def on_restore(self, checkpoint: "Checkpoint") -> None:
        """A checkpoint was reloaded; rebuild protocol state from it."""

    def restore_stable(self, on_done: "Callable[[], None]") -> None:
        """Read any protocol state kept on stable storage after a restart.

        Called after :meth:`on_restore`; recovery begins only once
        ``on_done`` fires.  The default has nothing on stable storage.
        """
        on_done()

    def checkpoint_extra(self) -> Dict[str, Any]:
        """Protocol state to include in a checkpoint."""
        return {}

    def on_checkpoint(self, checkpoint: "Checkpoint") -> None:
        """A checkpoint became durable (garbage-collection hook)."""

    # -- output commit -------------------------------------------------------
    def request_output_commit(self, output_id: tuple, payload: Dict[str, Any]) -> None:
        """The application wants ``payload`` released to the outside world.

        Default: commit immediately.  This is correct exactly when every
        delivery is already stable before the application sees it --
        pessimistic logging's defining property.  Protocols with weaker
        logging override this to defer until the state is recoverable.
        """
        self.node.commit_output(output_id, payload, self.node.sim.now)

    # -- recovery support ---------------------------------------------------
    def local_depinfo_wire(self) -> List[Any]:
        """This node's receipt-order knowledge, serialized for a reply."""
        return []

    def absorb_piggybacks(self, messages: List[Message]) -> None:
        """Merge piggybacked metadata from messages not yet *delivered*.

        Recovery calls this before composing a depinfo reply on a node
        whose delivery is suspended (the blocking baseline): the queued
        messages have physically arrived at this host — and their
        senders counted this host toward replication when they attached
        the piggyback — so the reply must reflect them even though the
        application has not seen them yet.  Absorption is idempotent;
        the normal delivery path re-absorbs when the queue drains.
        """

    def begin_replay(self, depinfo_wire: List[Any]) -> None:
        """Recovering node got its depinfo; replay to the pre-crash state."""
        raise NotImplementedError(f"{self.name} does not support replay")

    # -- accounting -----------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """Protocol-specific counters for the run summary."""
        return {"piggyback_determinants": self.piggyback_determinants_sent}


class LogBasedProtocol(LoggingProtocol):
    """Shared machinery for the sender-logging (FBL) family.

    Subclass responsibilities:

    * :meth:`_piggyback_for` -- which determinants to attach to an
      outgoing message,
    * :meth:`_absorb_piggyback` -- how to merge an incoming piggyback,
    * :meth:`_record_own_determinant` -- bookkeeping when this node
      assigns a receipt order (e.g. SBML's ack, Manetho's stable write).
    """

    def __init__(self) -> None:
        super().__init__()
        from repro.storage.volatile import DeterminantLog, SendLog

        self.send_log = SendLog()
        self.det_log = DeterminantLog()
        #: (src, ssn) -> payload buffered while recovering
        self._replay_buffer: Dict[Tuple[int, int], Dict[str, Any]] = {}
        self._replay_buffer_order: List[Tuple[int, int]] = []
        #: rsn -> determinant, set by begin_replay
        self._replay_orders: Dict[int, Any] = {}
        self._replay_target: int = -1
        self._replaying = False
        #: outputs awaiting recoverability: (output_id, payload, requested_at)
        self._pending_outputs: List[Tuple[tuple, Dict[str, Any], float]] = []
        self._output_retry_timer = None

    # ------------------------------------------------------------------
    # subclass hooks
    # ------------------------------------------------------------------
    def _piggyback_for(self, dst: int) -> List[Any]:
        """Wire-format piggyback for a message to ``dst``."""
        return []

    def _absorb_piggyback(self, msg: Message) -> None:
        """Merge an incoming message's piggyback into local knowledge."""

    def _record_own_determinant(self, det: "Determinant", msg: Message) -> None:
        """This node delivered a message and created ``det``."""

    def _on_depinfo_loaded(self) -> None:
        """Gathered depinfo was merged into the determinant log."""

    # ------------------------------------------------------------------
    # sending
    # ------------------------------------------------------------------
    def send_app(self, dst: int, payload: Dict[str, Any], body_bytes: int) -> None:
        node = self.node
        ssn = node.next_ssn(dst)
        self.send_log.log(dst, ssn, payload, body_bytes)
        node.oracle.on_send(node.node_id, ssn, dst, node.app.delivered_count)
        node.trace.record(
            node.sim.now, "app", node.node_id, "send",
            dst=dst, ssn=ssn, deliveries=node.app.delivered_count,
        )
        piggyback = self._piggyback_for(dst)
        self.piggyback_determinants_sent += len(piggyback)
        node.network.send(
            Message(
                src=node.node_id,
                dst=dst,
                kind=MessageKind.APPLICATION,
                mtype="app",
                payload={"data": payload},
                body_bytes=body_bytes,
                piggyback=piggyback,
                incarnation=node.incarnation,
                ssn=ssn,
            )
        )

    # ------------------------------------------------------------------
    # receiving
    # ------------------------------------------------------------------
    def on_app_message(self, msg: Message) -> None:
        self._absorb_piggyback(msg)
        key = (msg.src, msg.ssn)
        if key in self.node.delivered_ids:
            return  # duplicate (a replayed regeneration); already delivered
        self._deliver(msg.src, msg.ssn, msg.payload["data"], msg)

    def on_app_message_during_recovery(self, msg: Message) -> None:
        """Buffer application traffic that arrives mid-recovery.

        The data may be needed by the replay (a regenerated message from
        another recovering process) or it may be genuinely new traffic;
        either way it is not delivered until replay decides its place.
        """
        self._absorb_piggyback(msg)
        self._buffer_message(msg.src, msg.ssn, msg.payload["data"])
        if self._replaying:
            self._advance_replay()

    def _buffer_message(self, src: int, ssn: int, data: Dict[str, Any]) -> None:
        key = (src, ssn)
        if key in self.node.delivered_ids or key in self._replay_buffer:
            return
        self._replay_buffer[key] = data
        self._replay_buffer_order.append(key)

    def _deliver(
        self, sender: int, ssn: int, data: Dict[str, Any], msg: Optional[Message]
    ) -> None:
        from repro.causality.determinant import Determinant

        node = self.node
        rsn = node.app.delivered_count
        det = Determinant(sender=sender, ssn=ssn, receiver=node.node_id, rsn=rsn)
        self.det_log.add(det, logged_at=(node.node_id,))
        # bookkeeping first: if the delivery emits an output, its own
        # determinant must already be tracked (and its stable write or
        # ack already in flight) for the commit gating to see it
        self._record_own_determinant(det, msg)
        sends = node.deliver_app(sender, ssn, data)
        for send in sends:
            self.send_app(send.dst, send.payload, send.body_bytes)
        node.maybe_checkpoint()

    # ------------------------------------------------------------------
    # output commit
    # ------------------------------------------------------------------
    def _output_ready_for(self, rsn: int) -> bool:
        """Is the state up to (and including) delivery ``rsn``
        recoverable?  Default: yes (pessimistic semantics: everything is
        stable before the application even sees it)."""
        return True

    def _flush_for_output(self, rsn: int) -> None:
        """Actively push whatever blocks committing an output at ``rsn``."""

    #: retry cadence for pending outputs whose flush messages were lost
    #: to a concurrent crash (control-plane only; cancelled when drained)
    OUTPUT_RETRY_INTERVAL = 0.1

    def request_output_commit(self, output_id: tuple, payload: Dict[str, Any]) -> None:
        now = self.node.sim.now
        rsn = output_id[1]
        if self._output_ready_for(rsn):
            self.node.commit_output(output_id, payload, now)
            return
        self._pending_outputs.append((output_id, dict(payload), now))
        self._flush_for_output(rsn)
        self._arm_output_retry()

    def _check_pending_outputs(self) -> None:
        still_pending = []
        for output_id, payload, requested_at in self._pending_outputs:
            if self._output_ready_for(output_id[1]):
                self.node.commit_output(output_id, payload, requested_at)
            else:
                still_pending.append((output_id, payload, requested_at))
        self._pending_outputs = still_pending
        if not self._pending_outputs:
            self._cancel_output_retry()

    def _arm_output_retry(self) -> None:
        from repro.sim.timers import Timer

        if self._output_retry_timer is not None and self._output_retry_timer.pending:
            return
        self._output_retry_timer = Timer(
            self.node.sim,
            self.OUTPUT_RETRY_INTERVAL,
            self._retry_pending_outputs,
            label=f"output-retry-{self.node.node_id}",
        ).start()

    def _cancel_output_retry(self) -> None:
        if self._output_retry_timer is not None:
            self._output_retry_timer.cancel()
            self._output_retry_timer = None

    def _retry_pending_outputs(self) -> None:
        self._output_retry_timer = None
        if not self._pending_outputs or not self.node.is_live:
            # replay will re-request outputs if we are mid-recovery
            if self.node.is_recovering and self._pending_outputs:
                self._arm_output_retry()
            return
        self._check_pending_outputs()
        if self._pending_outputs:
            for output_id, _payload, _requested in self._pending_outputs:
                self._flush_for_output(output_id[1])
            self._arm_output_retry()

    # ------------------------------------------------------------------
    # retransmission service
    # ------------------------------------------------------------------
    def on_protocol_message(self, msg: Message) -> None:
        if msg.mtype == "retransmit_request":
            self._serve_retransmissions(msg.src)
        elif msg.mtype == "retransmit_data":
            self._on_retransmit_data(msg)

    def _serve_retransmissions(self, requester: int) -> None:
        node = self.node
        for ssn, record in self.send_log.messages_for(requester):
            node.network.send(
                Message(
                    src=node.node_id,
                    dst=requester,
                    kind=MessageKind.PROTOCOL,
                    mtype="retransmit_data",
                    payload={"ssn": ssn, "data": record["payload"]},
                    body_bytes=record["size"],
                    incarnation=node.incarnation,
                    ssn=ssn,
                )
            )

    def _on_retransmit_data(self, msg: Message) -> None:
        node = self.node
        key = (msg.src, msg.payload["ssn"])
        if node.is_recovering:
            self._buffer_message(msg.src, msg.payload["ssn"], msg.payload["data"])
            if self._replaying:
                self._advance_replay()
            return
        # Live node: a retransmission of something already delivered is a
        # duplicate; otherwise it was in flight when we crashed -- deliver
        # it as fresh traffic.
        if key in node.delivered_ids:
            return
        self._deliver(msg.src, msg.payload["ssn"], msg.payload["data"], msg)

    def on_peer_recovered(self, peer: int) -> None:
        """Retransmit our logged messages to a freshly recovered peer.

        Anything it already replayed or delivered is discarded as a
        duplicate; anything that was in flight (and therefore dropped)
        when it crashed is delivered fresh, so application chains through
        the failed process resume.  Pending outputs whose flush targets
        crashed get another chance too.
        """
        self._serve_retransmissions(peer)
        if self._pending_outputs:
            for output_id, _payload, _requested in self._pending_outputs:
                self._flush_for_output(output_id[1])
            self._check_pending_outputs()

    # ------------------------------------------------------------------
    # crash / checkpoint
    # ------------------------------------------------------------------
    def on_crash(self) -> None:
        self.send_log.clear()
        self.det_log.clear()
        self._replay_buffer.clear()
        self._replay_buffer_order.clear()
        self._replay_orders.clear()
        self._replay_target = -1
        self._replaying = False
        # uncommitted outputs die with the process: the outside world
        # never saw them, and replay will re-request them
        self._pending_outputs.clear()
        self._cancel_output_retry()

    # ------------------------------------------------------------------
    # replay engine
    # ------------------------------------------------------------------
    def local_depinfo_wire(self) -> List[Any]:
        """Everything this node knows: list of determinant tuples."""
        return [det.to_tuple() for det in self.det_log.determinants()]

    def absorb_piggybacks(self, messages: List[Message]) -> None:
        for msg in messages:
            self._absorb_piggyback(msg)

    def begin_replay(self, depinfo_wire: List[Any]) -> None:
        """Start replaying from the restored checkpoint.

        ``depinfo_wire`` is the merged receipt-order information the
        recovery algorithm gathered (a list of determinant tuples).  The
        engine requests retransmissions, delivers buffered/incoming data
        in rsn order up to the highest known rsn, then reports completion
        to the recovery manager.
        """
        from repro.causality.determinant import Determinant

        node = self.node
        for item in depinfo_wire:
            det = Determinant.from_tuple(tuple(item))
            self.det_log.add(det, logged_at=(node.node_id,))
        self._on_depinfo_loaded()
        self._replay_orders = self.det_log.for_receiver(node.node_id)
        self._replay_target = max(self._replay_orders, default=-1)
        self._replaying = True
        node.trace.record(
            node.sim.now,
            "replay",
            node.node_id,
            "start",
            target_rsn=self._replay_target,
            from_rsn=node.app.delivered_count,
        )

        senders_needed: Set[int] = set()
        if self.requests_retransmissions:
            senders_needed = {
                det.sender
                for rsn, det in self._replay_orders.items()
                if rsn >= node.app.delivered_count
            }
        for sender in sorted(senders_needed):
            node.network.send(
                Message(
                    src=node.node_id,
                    dst=sender,
                    kind=MessageKind.PROTOCOL,
                    mtype="retransmit_request",
                    payload={"requester": node.node_id},
                    body_bytes=16,
                    incarnation=node.incarnation,
                )
            )
        self._advance_replay()

    def request_retransmissions_from(self, sender: int) -> None:
        """Re-ask ``sender`` for logged data the replay still needs.

        The original request is lost if the sender was crashed when it
        was sent; the recovery managers call this when a sender announces
        its own recovery (join / completion), so the replay can make
        progress again.
        """
        node = self.node
        if not self._replaying:
            return
        needed = any(
            det.sender == sender and det.message_id not in self._replay_buffer
            for rsn, det in self._replay_orders.items()
            if rsn >= node.app.delivered_count
        )
        if not needed:
            return
        node.network.send(
            Message(
                src=node.node_id,
                dst=sender,
                kind=MessageKind.PROTOCOL,
                mtype="retransmit_request",
                payload={"requester": node.node_id},
                body_bytes=16,
                incarnation=node.incarnation,
            )
        )

    def _advance_replay(self) -> None:
        """Deliver as many replay steps as the buffered data allows."""
        node = self.node
        if not self._replaying:
            return
        while node.app.delivered_count <= self._replay_target:
            rsn = node.app.delivered_count
            det = self._replay_orders.get(rsn)
            if det is None:
                raise RuntimeError(
                    f"node {node.node_id}: replay gap at rsn {rsn} "
                    f"(target {self._replay_target}); determinant lost despite "
                    f"<= f failures"
                )
            key = det.message_id
            data = self._replay_buffer.pop(key, None)
            if data is None:
                return  # wait for retransmission / regeneration
            if key in self._replay_buffer_order:
                self._replay_buffer_order.remove(key)
            self._deliver(det.sender, det.ssn, data, None)
        self._finish_replay()

    def _finish_replay(self) -> None:
        node = self.node
        self._replaying = False
        node.trace.record(
            node.sim.now,
            "replay",
            node.node_id,
            "done",
            delivered=node.app.delivered_count,
        )
        node.recovery.on_replay_complete()
        # Anything left in the buffer was in-flight traffic that is not
        # part of the replayed prefix; deliver it now, in arrival order.
        leftovers = [k for k in self._replay_buffer_order if k in self._replay_buffer]
        self._replay_buffer_order = []
        for src, ssn in leftovers:
            data = self._replay_buffer.pop((src, ssn))
            if (src, ssn) not in node.delivered_ids:
                self._deliver(src, ssn, data, None)
        # outputs re-requested during replay may have flushed into the
        # void (their targets down, or peers' answers missed while we
        # were recovering): try again now that we are live
        if self._pending_outputs:
            for output_id, _payload, _requested in self._pending_outputs:
                self._flush_for_output(output_id[1])
            self._check_pending_outputs()

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        data = super().stats()
        data.update(
            send_log_entries=len(self.send_log),
            send_log_bytes=self.send_log.bytes_logged,
            determinants_known=len(self.det_log),
        )
        return data
