"""Logging and checkpointing protocols.

The paper's contribution is a recovery algorithm for the Family-Based
Logging (FBL) protocols; this package implements that family plus the
comparator protocols its related-work section situates it against:

* :class:`~repro.protocols.fbl.FamilyBasedLogging` -- FBL(f): message
  data in the sender's volatile log, receipt orders replicated at
  ``f + 1`` hosts by piggybacking (Alvisi & Marzullo).
* :class:`~repro.protocols.sender_based.SenderBasedLogging` -- the
  ``f = 1`` instance with explicit rsn acknowledgements (Johnson &
  Zwaenepoel's sender-based message logging).
* :class:`~repro.protocols.manetho.ManethoLogging` -- the ``f = n``
  instance: determinants logged asynchronously to a never-failing
  stable-storage process, antecedence-graph style (Elnozahy &
  Zwaenepoel's Manetho).
* :class:`~repro.protocols.pessimistic.PessimisticLogging` -- receiver
  logs every message synchronously to stable storage before delivery;
  recovery is purely local.
* :class:`~repro.protocols.optimistic.OptimisticLogging` -- receiver
  logs asynchronously; failures can orphan live processes, which must
  roll back (Strom & Yemini).
* :class:`~repro.protocols.coordinated.CoordinatedCheckpointing` --
  no logging at all; quiesced consistent snapshots, and every process
  rolls back on any failure.
* :class:`~repro.protocols.adaptive.AdaptiveLogging` -- runtime hybrid:
  each process migrates between pessimistic / FBL(f) / optimistic modes
  under a byte-cost model, switching only at determinant-quiescent
  points (the paper's "no single protocol wins" result, made a
  protocol).
"""

from repro.protocols.adaptive import AdaptiveLogging
from repro.protocols.base import LoggingProtocol, LogBasedProtocol
from repro.protocols.coordinated import CoordinatedCheckpointing
from repro.protocols.fbl import STABLE_HOST, FamilyBasedLogging
from repro.protocols.manetho import ManethoLogging
from repro.protocols.optimistic import OptimisticLogging
from repro.protocols.pessimistic import PessimisticLogging
from repro.protocols.sender_based import SenderBasedLogging

PROTOCOLS = {
    "fbl": FamilyBasedLogging,
    "sender_based": SenderBasedLogging,
    "manetho": ManethoLogging,
    "pessimistic": PessimisticLogging,
    "optimistic": OptimisticLogging,
    "coordinated": CoordinatedCheckpointing,
    "adaptive": AdaptiveLogging,
}

__all__ = [
    "LoggingProtocol",
    "LogBasedProtocol",
    "AdaptiveLogging",
    "FamilyBasedLogging",
    "SenderBasedLogging",
    "ManethoLogging",
    "PessimisticLogging",
    "OptimisticLogging",
    "CoordinatedCheckpointing",
    "PROTOCOLS",
    "STABLE_HOST",
]
