"""Manetho-style logging: the ``f = n`` member of the family.

The paper: "the instance where f = n corresponds to the Manetho protocol"
and, for that case, "we model stable storage as an additional process
that never fails or sends a message."

With ``f = n`` a determinant cannot be replicated at ``f + 1 = n + 1``
real hosts, so each process *asynchronously* writes every determinant it
creates to its stable-storage log (the never-failing extra process).
A determinant becomes stable -- and stops being piggybacked -- once its
stable write completes; until then it spreads through piggybacks exactly
as in plain FBL, which is Manetho's antecedence-graph propagation in
determinant form.

On restart the process reads its stable determinant log back *before*
running the recovery algorithm; the read is charged realistic
stable-storage time and covers deliveries whose determinants never made
it into any live process's volatile log.
"""

from __future__ import annotations

from typing import Any, Callable, Dict

from repro.causality.determinant import Determinant
from repro.net.network import Message
from repro.protocols.fbl import STABLE_HOST, FamilyBasedLogging

#: Modelled size of one determinant record on disk.
DETERMINANT_RECORD_BYTES = 32


class ManethoLogging(FamilyBasedLogging):
    """FBL(f = n) with asynchronous stable-storage determinant logging."""

    name = "manetho"
    supported_recovery = ("blocking", "nonblocking", "nonblocking-restart")

    def __init__(self, n_nodes: int) -> None:
        if n_nodes < 1:
            raise ValueError(f"n_nodes must be >= 1, got {n_nodes!r}")
        super().__init__(f=n_nodes)
        self.n_nodes = n_nodes
        self.stable_writes_pending = 0

    # ------------------------------------------------------------------
    def _log_name(self) -> str:
        return f"determinants:{self.node.node_id}"

    def _record_own_determinant(self, det: Determinant, msg: Message) -> None:
        """Asynchronously push the new determinant to stable storage.

        Asynchronous means the delivery does not wait -- the write
        happens in the background (Manetho's key difference from
        pessimistic logging).  Completion marks the determinant stable;
        until then it spreads by piggybacking like any FBL determinant.
        """
        self._track(det)
        self.stable_writes_pending += 1

        def done() -> None:
            # durable on disk regardless of whether the volatile copy
            # survived an intervening crash -- the restart log read will
            # find it, so outputs at this rsn are recoverable from here on
            self.node.trace.record(
                self.node.sim.now, "protocol", self.node.node_id, "det_durable",
                rsn=det.rsn, sender=det.sender, ssn=det.ssn,
            )
            self.stable_writes_pending -= 1
            # The determinant object is in the det log unless we crashed
            # and lost the volatile copy; only mark stability if present.
            if det in self.det_log:
                self.det_log.note_logged_at(det, STABLE_HOST)
                self._track(det)
                self._check_pending_outputs()

        self.node.storage.log_append(
            self._log_name(), det.to_tuple(), DETERMINANT_RECORD_BYTES, on_done=done
        )

    def on_checkpoint(self, checkpoint: "Checkpoint") -> None:
        """Compact the determinant log: determinants the checkpoint
        covers will never be replayed."""
        count = checkpoint.delivered_count
        if count == 0:
            return
        dropped = self.node.storage.log_truncate_head(
            self._log_name(),
            lambda det_tuple: det_tuple[3] >= count,
            size_of=lambda _det_tuple: DETERMINANT_RECORD_BYTES,
        )
        if dropped:
            self.node.trace.record(
                self.node.sim.now, "gc", self.node.node_id, "log_compacted",
                dropped=dropped, covered=count,
            )

    def _flush_for_output(self, rsn: int) -> None:
        """Nothing to push: the determinant's stable write is already in
        flight; output commits when it lands (Manetho's 'fast output
        commit' is one asynchronous disk write deep)."""

    # ------------------------------------------------------------------
    def on_crash(self) -> None:
        super().on_crash()
        self.stable_writes_pending = 0

    def restore_stable(self, on_done: Callable[[], None]) -> None:
        """Read the stable determinant log back before recovery starts."""

        def loaded(entries: list) -> None:
            for det_tuple in entries:
                det = Determinant.from_tuple(tuple(det_tuple))
                self.det_log.add(det, logged_at=(self.node.node_id, STABLE_HOST))
            on_done()

        self.node.storage.log_read(
            self._log_name(), DETERMINANT_RECORD_BYTES, loaded
        )

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        data = super().stats()
        data.update(
            stable_writes_pending=self.stable_writes_pending,
            stable_log_entries=self.node.storage.log_len(self._log_name())
            if self.node is not None
            else 0,
        )
        return data

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ManethoLogging(n={self.n_nodes})"
