"""Sender-based message logging: the ``f = 1`` member of the family.

Johnson & Zwaenepoel's sender-based message logging [SBML, FTCS 1987]
keeps the message data *and* the receipt order in the sender's volatile
store: the receiver returns the rsn it assigned in a small ack.  The
paper presents SBML as "a variation on" the ``f = 1`` instance of FBL,
so we implement it exactly that way -- FBL with ``f = 1`` and
``ack_to_sender`` enabled, which makes the sender the second host (after
the receiver itself) storing every determinant.
"""

from __future__ import annotations

from repro.protocols.fbl import FamilyBasedLogging


class SenderBasedLogging(FamilyBasedLogging):
    """FBL(f=1) with explicit rsn acknowledgements to the sender."""

    name = "sender_based"
    supported_recovery = ("blocking", "nonblocking", "nonblocking-restart")

    def __init__(self) -> None:
        super().__init__(f=1, ack_to_sender=True)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "SenderBasedLogging()"
