"""Adaptive hybrid logging: per-process runtime protocol migration.

The paper's central result is that no single rollback-recovery protocol
wins across workloads — the communication-cost ranking flips with
message rate, fan-in, and stable-storage latency.  Every other stack in
this repository is chosen statically at config time; this one monitors
its *own* live traffic and migrates each process independently between
three logging modes at runtime, under a pluggable byte-cost model
(ground: *Adaptive Logging for Distributed In-memory Databases*,
PAPERS.md):

``pessimistic``
    Receiver-based synchronous logging: the delivery waits for a stable
    write of (determinant, data).  Costs ``body + LOG_RECORD_OVERHEAD``
    storage bytes per delivery, zero piggyback traffic, and instant
    output commit — the right end of the spectrum for a high-rate
    server externalising receipts.
``fbl``
    Plain FBL(f): determinants replicate at ``f + 1`` hosts by
    piggybacking, nothing touches stable storage.  Cheapest when bodies
    are large (nothing but ``f`` determinant copies per delivery rides
    the wire) but output commit pays acknowledged push round trips.
``optimistic``
    Manetho-style asynchronous determinant logging: the delivery
    proceeds immediately, one determinant record trickles to disk in
    the background, and until it lands the determinant also spreads by
    piggyback as a causal backstop.  Cheapest for sparse small-body
    traffic; degrades when the send rate outruns the disk (every send
    re-ships the unstable window).

All three modes are expressed over the *same* FBL substrate — sender
message logging, determinant log, piggyback absorption, gather-based
recovery — and differ only in **how an own delivery's determinant
becomes recoverable**.  That is what makes the cross-mode handoff and
cross-mode recovery tractable: a peer (or the recovery algorithm) never
needs to know which mode produced a determinant.

Mode switches happen only at *determinant-quiescent* points: no
synchronous log write in flight and no own determinant unstable.  The
switch flushes any outstanding own determinants to the adaptive log,
writes an epoch-stamped mode marker (a keyed control-plane record — the
cost ledger charges it to ``control-plane``, not ``determinant-log``),
bumps ``mode_epoch``, and forces a checkpoint so the new mode starts
from a durable line.  In-flight piggybacks minted under the old mode
are still absorbed afterwards — determinant merging is idempotent and
mode-agnostic, so nothing is orphaned by a switch.  The sanitizer's
``mode-epoch`` invariant checks all of this online.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.causality.determinant import Determinant
from repro.net.network import Message
from repro.protocols.fbl import STABLE_HOST, FamilyBasedLogging
from repro.protocols.pessimistic import LOG_RECORD_OVERHEAD

#: the three logging modes a process can be in
MODES = ("pessimistic", "fbl", "optimistic")

#: modelled on-disk size of one determinant record (matches Manetho)
DETERMINANT_RECORD_BYTES = 32

#: modelled on-disk size of the epoch-stamped mode marker
MODE_RECORD_BYTES = 24

#: modelled wire size of one det_push round trip per determinant, used
#: by the cost model to price FBL's output-commit flushes
FLUSH_RTT_BYTES = 40


class AdaptiveLogging(FamilyBasedLogging):
    """FBL substrate with per-process runtime mode migration.

    Parameters
    ----------
    f:
        Replication degree of the ``fbl`` mode (and of piggyback
        stability in general: a determinant is stable at ``f + 1`` hosts
        *or* on stable storage, whichever happens first).
    initial_mode:
        Mode every process starts in.
    eval_every:
        Controller cadence, in own deliveries.  Count-based — never
        timer-based — so replay regenerates identical decisions.
    min_dwell:
        Minimum own deliveries between two switches of this process.
    hysteresis:
        Switch only when the best mode's estimated cost is below
        ``hysteresis * current_cost`` (1.0 = switch on any improvement).
    det_record_bytes:
        Modelled size of one determinant record in the adaptive log.
    switch_plan:
        Test hook: ``{node_id: [(delivered_count, to_mode), ...]}``
        scripted switches that bypass the cost model (still subject to
        quiescence).  Plan progress survives crashes so a plan entry
        fires at most once.
    """

    name = "adaptive"
    supported_recovery = ("blocking", "nonblocking", "nonblocking-restart")

    def __init__(
        self,
        f: int = 2,
        initial_mode: str = "fbl",
        eval_every: int = 16,
        min_dwell: int = 48,
        hysteresis: float = 0.9,
        det_record_bytes: int = DETERMINANT_RECORD_BYTES,
        switch_plan: Optional[Dict[int, List[Tuple[int, str]]]] = None,
    ) -> None:
        super().__init__(f=f)
        if initial_mode not in MODES:
            raise ValueError(f"initial_mode must be one of {MODES}, got {initial_mode!r}")
        if eval_every < 1:
            raise ValueError(f"eval_every must be >= 1, got {eval_every!r}")
        if min_dwell < 0:
            raise ValueError(f"min_dwell must be >= 0, got {min_dwell!r}")
        if not (0.0 < hysteresis <= 1.0):
            raise ValueError(f"hysteresis must be in (0, 1], got {hysteresis!r}")
        if det_record_bytes < 1:
            raise ValueError(f"det_record_bytes must be >= 1, got {det_record_bytes!r}")
        self.initial_mode = initial_mode
        self.eval_every = eval_every
        self.min_dwell = min_dwell
        self.hysteresis = hysteresis
        self.det_record_bytes = det_record_bytes
        self.switch_plan = dict(switch_plan or {})
        # deliberately NOT reset on crash: a scripted switch fires once
        self._plan_idx = 0

        self.mode = initial_mode
        self.mode_epoch = 0
        self.mode_switches = 0
        self.controller_evals = 0

        #: (sender, ssn) with a synchronous log write in flight
        self._pending_sync: Set[Tuple[int, int]] = set()
        #: delivery_ids with an asynchronous determinant write in flight
        self._inflight_det_writes: Set[Tuple[int, int]] = set()
        self._switching = False
        self._switch_target: Optional[str] = None
        self._flush_in_flight = False
        self._marker_in_flight = False
        #: app messages parked while a switch drains to quiescence; they
        #: deliver under the new mode the moment the marker is durable
        self._deferred: List[Message] = []
        #: marks the delivery currently completing a synchronous log write
        self._sync_delivery = False

        # controller measurement window (reset at every evaluation)
        self._win_start = 0.0
        self._win_deliveries = 0
        self._win_body_bytes = 0
        self._win_sends = 0
        self._win_outputs = 0
        self._deliveries_since_eval = 0
        self._mode_entered_at = 0
        #: EWMA of async stable-write latency (seconds); seeded lazily
        self._storage_lag: Optional[float] = None

        #: per-mode cost attribution, surfaced via stats()
        self.mode_stats: Dict[str, Dict[str, int]] = {
            m: {"deliveries": 0, "piggyback_dets": 0, "storage_bytes": 0}
            for m in MODES
        }

    # ------------------------------------------------------------------
    # log names
    # ------------------------------------------------------------------
    def _log_name(self) -> str:
        """Determinant (and pessimistic-mode data) records."""
        return f"adlog:{self.node.node_id}"

    def _marker_name(self) -> str:
        """Epoch-stamped mode marker (a keyed control-plane record)."""
        return f"admode:{self.node.node_id}"

    # ------------------------------------------------------------------
    # receive path: mode dispatch
    # ------------------------------------------------------------------
    def on_app_message(self, msg: Message) -> None:
        self._absorb_piggyback(msg)
        key = (msg.src, msg.ssn)
        if key in self.node.delivered_ids or key in self._pending_sync:
            return  # duplicate, or already being synchronously logged
        if self._switching:
            # park the delivery so the switch reaches determinant
            # quiescence in one flush round; the piggyback above was
            # absorbed, so old-epoch information is not lost
            self._deferred.append(msg)
            return
        self._dispatch(msg)

    def _dispatch(self, msg: Message) -> None:
        self._win_body_bytes += msg.body_bytes
        if self.mode == "pessimistic":
            self._log_then_deliver(msg.src, msg.ssn, msg.payload["data"], msg.body_bytes)
        else:
            self._deliver(msg.src, msg.ssn, msg.payload["data"], msg)

    def _on_retransmit_data(self, msg: Message) -> None:
        if not self.node.is_recovering and self.mode == "pessimistic":
            key = (msg.src, msg.payload["ssn"])
            if key in self.node.delivered_ids or key in self._pending_sync:
                return
            self._win_body_bytes += msg.body_bytes
            self._log_then_deliver(
                msg.src, msg.payload["ssn"], msg.payload["data"], msg.body_bytes
            )
            return
        super()._on_retransmit_data(msg)

    def _log_then_deliver(
        self, sender: int, ssn: int, data: Dict[str, Any], body_bytes: int
    ) -> None:
        """Pessimistic mode: stable write of (determinant, data), then
        deliver.  Writes complete in issue order, so the rsn each record
        carries is exactly the delivery position its completion gets."""
        node = self.node
        rsn = node.app.delivered_count + len(self._pending_sync)
        det = Determinant(sender=sender, ssn=ssn, receiver=node.node_id, rsn=rsn)
        self._pending_sync.add((sender, ssn))
        self.mode_stats["pessimistic"]["storage_bytes"] += body_bytes + LOG_RECORD_OVERHEAD
        epoch = node.crash_count

        def logged() -> None:
            if node.crash_count != epoch or not node.is_live:
                return  # crashed while the write was in flight
            node.trace.record(
                node.sim.now, "protocol", node.node_id, "log_commit",
                sender=sender, ssn=ssn, rsn=det.rsn,
            )
            self._pending_sync.discard((sender, ssn))
            self._sync_delivery = True
            try:
                self._deliver(sender, ssn, data, None)
            finally:
                self._sync_delivery = False
            if self._switching:
                self._try_complete_switch()

        node.storage.log_append(
            self._log_name(),
            ("sync", det.to_tuple(), data, body_bytes),
            body_bytes + LOG_RECORD_OVERHEAD,
            on_done=logged,
            stall_node=node.node_id,
        )

    # ------------------------------------------------------------------
    # determinant lifecycle: how stability is reached per mode
    # ------------------------------------------------------------------
    def _record_own_determinant(self, det: Determinant, msg: Optional[Message]) -> None:
        governing = self.mode
        if self._sync_delivery:
            # the (det, data) record is already durable: stable now.
            # _track never saw it unstable, so announce stability here
            # (the sanitizer's commit-order bookkeeping rides on it)
            self.det_log.note_logged_at(det, STABLE_HOST)
            self.node.trace.record(
                self.node.sim.now, "protocol", self.node.node_id, "det_stable",
                rsn=det.rsn, sender=det.sender, ssn=det.ssn,
            )
        elif not self._replaying and self.mode == "optimistic":
            self._write_det_async(det)
        # replayed deliveries and recovery leftovers re-track only: their
        # determinants are already durable, gathered, or (for leftovers)
        # spread by piggyback until f+1 / flushed for outputs like FBL's
        self._track(det)
        self.mode_stats[governing]["deliveries"] += 1
        self._win_deliveries += 1
        self._deliveries_since_eval += 1
        if not self._replaying:
            self._maybe_evaluate()

    def _write_det_async(self, det: Determinant) -> None:
        """Optimistic mode: one determinant record trickles to disk; the
        delivery does not wait.  Until it lands the determinant also
        spreads by piggyback (the causal backstop against orphans)."""
        node = self.node
        key = det.delivery_id
        if key in self._inflight_det_writes:
            return
        self._inflight_det_writes.add(key)
        self.mode_stats[self.mode]["storage_bytes"] += self.det_record_bytes
        issued = node.sim.now

        def done() -> None:
            self._inflight_det_writes.discard(key)
            self._observe_lag(node.sim.now - issued)
            node.trace.record(
                node.sim.now, "protocol", node.node_id, "det_durable",
                rsn=det.rsn, sender=det.sender, ssn=det.ssn,
            )
            # volatile copy may be gone if we crashed meanwhile; the
            # restart log read finds the record either way
            if det in self.det_log:
                self.det_log.note_logged_at(det, STABLE_HOST)
                self._track(det)
                self._check_pending_outputs()
            if self._switching:
                self._try_complete_switch()

        node.storage.log_append(
            self._log_name(), ("det", det.to_tuple()), self.det_record_bytes,
            on_done=done,
        )

    def _flush_for_output(self, rsn: int) -> None:
        if self.mode == "fbl":
            super()._flush_for_output(rsn)
            return
        # pessimistic mode: own deliveries are stable before the
        # application sees them, so only recovery leftovers can gate an
        # output; optimistic mode: the async write is (usually) already
        # in flight.  Either way one determinant record per laggard
        # closes the gap without a wire round trip.
        me = self.node.node_id
        for key in sorted(self._unstable):
            if key[0] != me or key[1] > rsn:
                continue
            det = self._unstable[key]
            if STABLE_HOST not in self.det_log.logged_at(det):
                self._write_det_async(det)

    # ------------------------------------------------------------------
    # sending: per-mode piggyback attribution
    # ------------------------------------------------------------------
    def send_app(self, dst: int, payload: Dict[str, Any], body_bytes: int) -> None:
        before = self.piggyback_determinants_sent
        super().send_app(dst, payload, body_bytes)
        self.mode_stats[self.mode]["piggyback_dets"] += (
            self.piggyback_determinants_sent - before
        )
        self._win_sends += 1

    def request_output_commit(self, output_id: tuple, payload: Dict[str, Any]) -> None:
        self._win_outputs += 1
        super().request_output_commit(output_id, payload)

    # ------------------------------------------------------------------
    # the controller: count-based, replay-deterministic
    # ------------------------------------------------------------------
    def _maybe_evaluate(self) -> None:
        node = self.node
        if (
            self._switching
            or self._replaying
            or not node.is_live
            or node.is_recovering
        ):
            return
        plan = self.switch_plan.get(node.node_id)
        if plan is not None and self._plan_idx < len(plan):
            at_count, to_mode = plan[self._plan_idx]
            if node.app.delivered_count >= at_count:
                self._plan_idx += 1
                if to_mode != self.mode:
                    self._begin_switch(to_mode)
                return
        if self._deliveries_since_eval < self.eval_every:
            return
        self._deliveries_since_eval = 0
        self.controller_evals += 1
        costs = self._estimate_costs()
        self._reset_window()
        if node.app.delivered_count - self._mode_entered_at < self.min_dwell:
            return
        best = min(MODES, key=lambda m: (costs[m], m))
        if best != self.mode and costs[best] < self.hysteresis * costs[self.mode]:
            self._begin_switch(best)

    def _estimate_costs(self) -> Dict[str, float]:
        """Estimated wire + storage bytes per delivery, per mode.

        The currency is the ledger's: every byte counts the same whether
        it crosses the wire or the disk — exactly the end-to-end total
        the E14 benchmark scores.
        """
        node = self.node
        cfg = node.config
        deliveries = max(1, self._win_deliveries)
        mean_body = self._win_body_bytes / deliveries
        outputs_per = self._win_outputs / deliveries
        window_dt = node.sim.now - self._win_start
        send_rate = self._win_sends / window_dt if window_dt > 0 else 0.0
        lag = self._storage_lag
        if lag is None:
            # no async write observed yet: price one from the device model
            lag = cfg.storage_op_latency + self.det_record_bytes / max(
                1.0, float(cfg.storage_bandwidth)
            )
        det_wire = float(cfg.determinant_bytes)
        # each unstable determinant is re-shipped on every send issued
        # during its unstable window, to at most n-1 distinct hosts
        rho = min(float(cfg.n - 1), send_rate * lag)
        return {
            "pessimistic": mean_body + LOG_RECORD_OVERHEAD,
            "fbl": self.f * det_wire
            + outputs_per * self.f * (cfg.header_bytes + FLUSH_RTT_BYTES),
            "optimistic": float(self.det_record_bytes) + rho * det_wire,
        }

    def _reset_window(self) -> None:
        self._win_start = self.node.sim.now
        self._win_deliveries = 0
        self._win_body_bytes = 0
        self._win_sends = 0
        self._win_outputs = 0

    def _observe_lag(self, sample: float) -> None:
        if self._storage_lag is None:
            self._storage_lag = sample
        else:
            self._storage_lag = 0.75 * self._storage_lag + 0.25 * sample

    # ------------------------------------------------------------------
    # the switch protocol
    # ------------------------------------------------------------------
    def _begin_switch(self, to_mode: str) -> None:
        if to_mode not in MODES:
            raise ValueError(f"unknown mode {to_mode!r}")
        self._switching = True
        self._switch_target = to_mode
        self._try_complete_switch()

    def _own_unstable(self) -> List[Determinant]:
        me = self.node.node_id
        return [self._unstable[k] for k in sorted(self._unstable) if k[0] == me]

    def _try_complete_switch(self) -> None:
        """Drive the switch to its determinant-quiescent point.

        Re-entered from every callback that can change quiescence (sync
        write completion, async determinant durability, flush batch
        durability).  The switch commits only when no synchronous write
        is in flight and no own determinant is unstable.
        """
        if not self._switching or not self.node.is_live:
            return
        if self._pending_sync or self._flush_in_flight or self._marker_in_flight:
            return
        own_unstable = self._own_unstable()
        if own_unstable:
            self._flush_unstable(own_unstable)
            return
        self._commit_switch()

    def _flush_unstable(self, dets: List[Determinant]) -> None:
        """One batched stable write covers every currently-unstable own
        determinant.  New deliveries during the write re-enter the loop;
        it converges as soon as traffic pauses for one write."""
        node = self.node
        self._flush_in_flight = True
        tuples = [d.to_tuple() for d in dets]
        size = self.det_record_bytes * len(tuples)
        self.mode_stats[self.mode]["storage_bytes"] += size
        epoch = node.crash_count
        node.trace.record(
            node.sim.now, "protocol", node.node_id, "mode_flush",
            determinants=len(tuples), to_mode=self._switch_target,
        )

        def flushed() -> None:
            self._flush_in_flight = False
            if node.crash_count != epoch or not node.is_live:
                return
            for item in tuples:
                det = Determinant.from_tuple(item)
                if det in self.det_log:
                    self.det_log.note_logged_at(det, STABLE_HOST)
                    self._track(det)
            self._check_pending_outputs()
            self._try_complete_switch()

        node.storage.log_append(
            self._log_name(), ("dets", tuples), size, on_done=flushed
        )

    def _commit_switch(self) -> None:
        """Quiescent: durably write the epoch-stamped mode marker, then
        flip modes.

        The switch epoch's durable line is the next scheduled checkpoint
        (its ``checkpoint_extra`` carries the new mode), so a switch
        costs one marker write, not a full process image.  Only when the
        run has no count-based checkpoint cadence at all does the switch
        force its own checkpoint."""
        node = self.node
        from_mode = self.mode
        to_mode = self._switch_target
        epoch = self.mode_epoch + 1
        crash_epoch = node.crash_count

        self._marker_in_flight = True

        def durable() -> None:
            self._marker_in_flight = False
            if node.crash_count != crash_epoch or not node.is_live:
                return
            if self._pending_sync or self._own_unstable():
                # a delivery slipped in while the marker write was in
                # flight -- retransmitted in-flight traffic after a
                # recovery is not parked -- so the epoch line is no
                # longer quiescent.  Abandon this marker and drive the
                # switch loop again: flush the newcomers, re-commit.
                self._try_complete_switch()
                return
            self.mode_epoch = epoch
            self.mode = to_mode
            self.mode_switches += 1
            self._mode_entered_at = node.app.delivered_count
            self._switching = False
            self._switch_target = None
            self._reset_window()
            self._deliveries_since_eval = 0
            node.trace.record(
                node.sim.now, "protocol", node.node_id, "mode_switch",
                epoch=epoch, from_mode=from_mode, to_mode=to_mode,
                rsn=node.app.delivered_count,
            )
            # with no periodic cadence the new mode would never get a
            # durable line; take one here.  Otherwise the next scheduled
            # checkpoint (at most checkpoint_every deliveries away)
            # carries the new mode and garbage-collects old-mode records.
            if not node.config.checkpoint_every:
                node.force_checkpoint()
            # deliveries parked during the drain now run under the new mode
            deferred, self._deferred = self._deferred, []
            for msg in deferred:
                if node.crash_count != crash_epoch or not node.is_live:
                    break
                key = (msg.src, msg.ssn)
                if key in node.delivered_ids or key in self._pending_sync:
                    continue
                self._dispatch(msg)

        node.storage.write(
            self._marker_name(),
            (epoch, from_mode, to_mode, node.app.delivered_count),
            MODE_RECORD_BYTES,
            on_done=durable,
        )

    # ------------------------------------------------------------------
    # checkpoint / crash / restore: a log that spans modes
    # ------------------------------------------------------------------
    def checkpoint_extra(self) -> Dict[str, Any]:
        extra = super().checkpoint_extra()
        extra["mode"] = self.mode
        extra["mode_epoch"] = self.mode_epoch
        return extra

    def on_checkpoint(self, checkpoint: "Checkpoint") -> None:
        super().on_checkpoint(checkpoint)
        count = checkpoint.delivered_count
        if count == 0:
            return
        dropped = self.node.storage.log_truncate_head(
            self._log_name(),
            lambda entry: any(r >= count for r in self._entry_rsns(entry)),
            size_of=self._entry_size,
        )
        if dropped:
            self.node.trace.record(
                self.node.sim.now, "gc", self.node.node_id, "log_compacted",
                dropped=dropped, covered=count,
            )

    @staticmethod
    def _entry_rsns(entry: Tuple) -> Tuple[int, ...]:
        kind = entry[0]
        if kind in ("sync", "det"):
            return (entry[1][3],)
        return tuple(item[3] for item in entry[1])  # "dets" batch

    def _entry_size(self, entry: Tuple) -> int:
        kind = entry[0]
        if kind == "sync":
            return entry[3] + LOG_RECORD_OVERHEAD
        if kind == "det":
            return self.det_record_bytes
        return self.det_record_bytes * len(entry[1])

    def on_crash(self) -> None:
        super().on_crash()
        self._pending_sync.clear()
        self._inflight_det_writes.clear()
        self._switching = False
        self._switch_target = None
        self._flush_in_flight = False
        self._marker_in_flight = False
        self._sync_delivery = False
        self._deferred.clear()
        self._deliveries_since_eval = 0
        self._storage_lag = None

    def on_restore(self, checkpoint: "Checkpoint") -> None:
        super().on_restore(checkpoint)
        protocol_state = checkpoint.extra.get("protocol", {})
        self.mode = protocol_state.get("mode", self.initial_mode)
        self.mode_epoch = protocol_state.get("mode_epoch", 0)
        self._mode_entered_at = checkpoint.delivered_count
        self._reset_window()
        # a crash between the mode marker and checkpoint durability
        # legitimately rolls the epoch back; the sanitizer re-baselines
        # its monotonicity check on this event
        self.node.trace.record(
            self.node.sim.now, "protocol", self.node.node_id, "mode_restored",
            epoch=self.mode_epoch, mode=self.mode,
        )

    def restore_stable(self, on_done: Callable[[], None]) -> None:
        """Read the adaptive log back before recovery starts.

        The log spans modes: synchronous (det, data) records from
        pessimistic stretches, single determinant records from
        optimistic stretches, batched flush records from switches.  All
        determinants come back stable; pessimistic-mode records also
        carry the data, so those deliveries replay without asking any
        sender to retransmit."""
        node = self.node

        def loaded(entries: list) -> None:
            for entry in entries:
                kind = entry[0]
                if kind == "sync":
                    det = Determinant.from_tuple(tuple(entry[1]))
                    self.det_log.add(det, logged_at=(node.node_id, STABLE_HOST))
                    if det.rsn >= node.app.delivered_count:
                        self._buffer_message(det.sender, det.ssn, entry[2])
                elif kind == "det":
                    det = Determinant.from_tuple(tuple(entry[1]))
                    self.det_log.add(det, logged_at=(node.node_id, STABLE_HOST))
                else:  # "dets" flush batch
                    for item in entry[1]:
                        det = Determinant.from_tuple(tuple(item))
                        self.det_log.add(det, logged_at=(node.node_id, STABLE_HOST))
            on_done()

        node.storage.log_read(self._log_name(), LOG_RECORD_OVERHEAD + 64, loaded)

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        data = super().stats()
        data.update(
            mode=self.mode,
            mode_epoch=self.mode_epoch,
            mode_switches=self.mode_switches,
            controller_evals=self.controller_evals,
            per_mode={m: dict(v) for m, v in self.mode_stats.items()},
            stable_log_entries=self.node.storage.log_len(self._log_name())
            if self.node is not None
            else 0,
        )
        return data

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AdaptiveLogging(f={self.f}, mode={self.mode!r}, "
            f"epoch={self.mode_epoch})"
        )
