"""Parallel trial execution with proven serial/parallel parity.

The paper's argument is carried by *fleets* of independent trials --
sweeps over n, f, storage latency and loss rate, repeated across seeds
(E1-E11), plus the chaos harness's randomized campaigns.  Each trial is
a sealed deterministic simulation, so the fleet is embarrassingly
parallel; this module fans it across a :class:`ProcessPoolExecutor`
without letting parallelism anywhere near virtual time:

* a :class:`TrialSpec` is pure data (a :class:`SystemConfig` plus an
  optional seed override), picklable and order-stamped;
* every trial runs in its own freshly materialized :class:`System` --
  failure-plan trigger state is re-armed per trial, exactly as
  :func:`repro.core.experiment._reseed` does -- so a spec's result
  depends only on the spec, never on which worker ran it or when;
* results come back as picklable :class:`TrialResult` records and are
  returned ordered by spec index, regardless of completion order;
* cross-trial aggregation (:func:`merge_metrics`,
  :func:`merge_trace_counters`) folds per-trial registry dumps and trace
  counters in spec order, so merged reports are byte-identical between
  ``jobs=1`` and ``jobs=N``.

``jobs=1`` never touches multiprocessing: the same code path that runs
inside a worker runs inline, which is both the fallback for exotic
platforms and the reference side of the parity tests
(``tests/test_runner_parity.py``).

Dispatch is chunked: specs are split into ``~4 x jobs`` contiguous
slices and each slice runs on one (warm, reused) worker process, so
per-task pickling overhead is paid per chunk, not per trial.
"""

from __future__ import annotations

import copy
import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.config import SystemConfig
from repro.core.metrics import RunResult
from repro.core.metrics_registry import MetricsRegistry
from repro.core.system import System

#: environment override for the default worker count (used by CI to pin
#: ``--jobs 2`` without threading a flag through every entry point)
JOBS_ENV = "REPRO_JOBS"


def default_jobs() -> int:
    """Worker count when none is given: ``$REPRO_JOBS``, else
    ``cpu_count - 1`` (leave one core for the parent), floored at 1."""
    env = os.environ.get(JOBS_ENV)
    if env:
        return max(1, int(env))
    return max(1, (os.cpu_count() or 2) - 1)


# ----------------------------------------------------------------------
# specs and results
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TrialSpec:
    """One independent trial: a config, optionally reseeded and labelled.

    Frozen so a spec list can be reused (e.g. run at ``jobs=1`` and again
    at ``jobs=4`` for a parity check) without one run contaminating the
    next; the mutable trigger state inside failure plans is handled by
    deep-copying the config before every run.
    """

    config: SystemConfig
    seed: Optional[int] = None
    label: str = ""

    def materialize(self) -> SystemConfig:
        """A private, re-armed copy of the config, ready to run."""
        config = copy.deepcopy(self.config)
        if self.seed is not None:
            config.seed = self.seed
        for plan in list(config.crashes) + list(config.injections):
            plan._seen = 0
            plan._armed = True
        return config


@dataclass
class TrialResult:
    """What comes back from one trial.

    ``wall_s`` is host wall-clock and therefore excluded from any parity
    comparison; everything else is a pure function of the spec.
    """

    index: int
    label: str
    summary: RunResult
    #: :meth:`MetricsRegistry.dump` of the trial's registry (mergeable)
    metrics: Dict[str, Dict[str, Any]]
    #: the trial's ``category.action`` trace counters (mergeable)
    trace_counters: Dict[str, int]
    wall_s: float = field(default=0.0, compare=False)
    #: :meth:`repro.obs.CostLedger.dump` when the trial ran with the
    #: cost ledger enabled (mergeable via :func:`merge_cost`)
    cost: Optional[Dict[str, Any]] = None


# ----------------------------------------------------------------------
# trial execution (runs identically inline and inside a worker)
# ----------------------------------------------------------------------
def run_trial(spec: TrialSpec, index: int = 0) -> TrialResult:
    """Run one spec to completion in this process."""
    config = spec.materialize()
    start = time.perf_counter()
    system = System(config)
    summary = system.run()
    wall = time.perf_counter() - start
    return TrialResult(
        index=index,
        label=spec.label or config.name,
        summary=summary,
        metrics=system.registry.dump(),
        trace_counters=dict(system.trace.counters),
        wall_s=wall,
        cost=system.cost.dump() if system.cost is not None else None,
    )


def _run_chunk(chunk: Sequence[Tuple[int, TrialSpec]]) -> List[TrialResult]:
    """Worker entry point: run a contiguous slice of indexed specs."""
    return [run_trial(spec, index) for index, spec in chunk]


# ----------------------------------------------------------------------
# the runner
# ----------------------------------------------------------------------
class TrialRunner:
    """Executes a list of :class:`TrialSpec` serially or in parallel.

    Parameters
    ----------
    jobs:
        Worker processes.  ``None`` uses :func:`default_jobs`; ``1``
        runs fully in-process (no executor, no pickling).
    chunk_size:
        Specs per dispatched chunk.  ``None`` picks
        ``ceil(len(specs) / (4 * jobs))`` so each worker sees a few
        chunks (amortizing pickling) while stragglers still rebalance.
    """

    def __init__(self, jobs: Optional[int] = None, chunk_size: Optional[int] = None) -> None:
        self.jobs = default_jobs() if jobs is None else max(1, int(jobs))
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size!r}")
        self.chunk_size = chunk_size

    def run(self, specs: Iterable[TrialSpec]) -> List[TrialResult]:
        """Run every spec; results are ordered by spec index.

        The ordering (and everything inside each result except
        ``wall_s``) is independent of ``jobs``.
        """
        indexed = list(enumerate(specs))
        if not indexed:
            return []
        if self.jobs == 1 or len(indexed) == 1:
            return [run_trial(spec, index) for index, spec in indexed]

        chunk = self.chunk_size or max(1, -(-len(indexed) // (4 * self.jobs)))
        chunks = [indexed[i : i + chunk] for i in range(0, len(indexed), chunk)]
        results: List[TrialResult] = []
        workers = min(self.jobs, len(chunks))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            for batch in pool.map(_run_chunk, chunks):
                results.extend(batch)
        results.sort(key=lambda r: r.index)
        return results


def run_configs(
    configs: Iterable[SystemConfig],
    jobs: Optional[int] = None,
    chunk_size: Optional[int] = None,
) -> List[TrialResult]:
    """Convenience: one trial per config, in the given order."""
    specs = [TrialSpec(config=config) for config in configs]
    return TrialRunner(jobs=jobs, chunk_size=chunk_size).run(specs)


def run_results(
    configs: Iterable[SystemConfig],
    jobs: Optional[int] = None,
) -> List[RunResult]:
    """Like :func:`run_configs` but returns bare :class:`RunResult`\\ s,
    a drop-in for serial ``[run_config(c) for c in configs]`` loops."""
    return [trial.summary for trial in run_configs(configs, jobs=jobs)]


# ----------------------------------------------------------------------
# cross-trial aggregation
# ----------------------------------------------------------------------
def merge_metrics(results: Sequence[TrialResult]) -> MetricsRegistry:
    """Fold every trial's registry dump into one registry, in spec order."""
    ordered = sorted(results, key=lambda r: r.index)
    return MetricsRegistry.merge([r.metrics for r in ordered])


def merge_cost(results: Sequence[TrialResult]):
    """Fold every trial's cost-ledger dump into one
    :class:`~repro.obs.CostLedger`, in spec order (byte-identical across
    job counts).  Trials that ran without the ledger are skipped;
    returns ``None`` when no trial carried one."""
    from repro.obs import merge_cost_dumps

    ordered = sorted(results, key=lambda r: r.index)
    dumps = [r.cost for r in ordered if r.cost is not None]
    if not dumps:
        return None
    return merge_cost_dumps(dumps)


def merge_trace_counters(results: Sequence[TrialResult]) -> Dict[str, int]:
    """Sum the trials' ``category.action`` counters, keyed in first-seen
    spec order (summation is commutative; the key order is pinned so the
    merged dict is byte-identical across job counts)."""
    merged: Dict[str, int] = {}
    for result in sorted(results, key=lambda r: r.index):
        for key, value in result.trace_counters.items():
            merged[key] = merged.get(key, 0) + value
    return merged
