"""Vector clocks.

Provide the happens-before partial order over process events.  The
optimistic-logging comparator uses them to detect orphans (a live process
whose state depends on a lost, unlogged delivery), and property tests use
them to validate the causality substrate itself.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional


class VectorClock:
    """A sparse vector clock over integer process ids.

    Missing entries are implicitly zero, so clocks over different node
    sets compare correctly.
    """

    __slots__ = ("clocks",)

    def __init__(self, clocks: Optional[Mapping[int, int]] = None) -> None:
        self.clocks: Dict[int, int] = {}
        if clocks:
            for pid, value in clocks.items():
                if value < 0:
                    raise ValueError(f"clock component must be non-negative, got {value!r}")
                if value > 0:
                    self.clocks[int(pid)] = int(value)

    # ------------------------------------------------------------------
    def get(self, pid: int) -> int:
        """Component for ``pid`` (zero if absent)."""
        return self.clocks.get(pid, 0)

    def tick(self, pid: int) -> "VectorClock":
        """Advance ``pid``'s component in place; returns self."""
        self.clocks[pid] = self.clocks.get(pid, 0) + 1
        return self

    def merge(self, other: "VectorClock") -> "VectorClock":
        """Component-wise max in place; returns self."""
        for pid, value in other.clocks.items():
            if value > self.clocks.get(pid, 0):
                self.clocks[pid] = value
        return self

    def copy(self) -> "VectorClock":
        return VectorClock(self.clocks)

    # ------------------------------------------------------------------
    # happens-before partial order
    # ------------------------------------------------------------------
    def __le__(self, other: "VectorClock") -> bool:
        """True iff self happened-before-or-equals other."""
        return all(value <= other.get(pid) for pid, value in self.clocks.items())

    def __lt__(self, other: "VectorClock") -> bool:
        """Strict happens-before."""
        return self <= other and self != other

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VectorClock):
            return NotImplemented
        return self.clocks == other.clocks

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def concurrent(self, other: "VectorClock") -> bool:
        """Neither clock happened before the other."""
        return not self <= other and not other <= self

    def __hash__(self) -> int:
        return hash(frozenset(self.clocks.items()))

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[int, int]:
        """Serializable copy of the non-zero components."""
        return dict(self.clocks)

    @classmethod
    def from_dict(cls, data: Mapping[int, int]) -> "VectorClock":
        return cls(data)

    @classmethod
    def join(cls, clocks: Iterable["VectorClock"]) -> "VectorClock":
        """Least upper bound of several clocks."""
        result = cls()
        for clock in clocks:
            result.merge(clock)
        return result

    def __repr__(self) -> str:
        inner = ", ".join(f"{pid}:{v}" for pid, v in sorted(self.clocks.items()))
        return f"VectorClock({{{inner}}})"
