"""``depinfo`` -- dependency-information stores.

The paper (Section 3.2) deliberately leaves the representation of the
receipt-order information abstract::

    depinfo: This is an abstract presentation of the message receipt
    order information that is maintained by the process.  It could take
    the form of dependency vectors, a dependency matrix, or a dependency
    graph.

We implement all three behind one interface (:class:`DependencyStore`) so
that both recovery algorithms are representation-agnostic, which is the
property the paper claims for its algorithm ("It does not depend on the
particular technique used to gather dependency information").

All three representations store the same determinants; they differ in
their index structure, their wire size, and the extra queries they
support (the antecedence graph can answer transitive-antecedent queries,
which the Manetho-style ``f = n`` instance uses).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.causality.determinant import Determinant


class DependencyStore(ABC):
    """Common interface over the three ``depinfo`` representations."""

    #: registry name -> subclass, filled by ``register_depinfo``
    KINDS: Dict[str, type] = {}

    # -- mutation ------------------------------------------------------
    @abstractmethod
    def record(self, det: Determinant) -> bool:
        """Add one determinant.  Returns True if it was new."""

    def merge(self, dets: Iterable[Determinant]) -> int:
        """Add many determinants; returns how many were new."""
        return sum(1 for det in dets if self.record(det))

    @abstractmethod
    def clear(self) -> None:
        """Drop everything (volatile state lost in a crash)."""

    # -- queries -------------------------------------------------------
    @abstractmethod
    def determinants(self) -> List[Determinant]:
        """All stored determinants in a deterministic order."""

    @abstractmethod
    def __contains__(self, det: Determinant) -> bool: ...

    @abstractmethod
    def for_receiver(self, receiver: int) -> Dict[int, Determinant]:
        """``rsn -> determinant`` for one receiver's deliveries."""

    def max_rsn(self, receiver: int) -> int:
        """Highest known rsn for ``receiver`` (-1 if none)."""
        orders = self.for_receiver(receiver)
        return max(orders) if orders else -1

    def __len__(self) -> int:
        return len(self.determinants())

    # -- wire format ---------------------------------------------------
    def to_wire(self) -> List[Tuple[int, int, int, int]]:
        """Serialize for a network payload."""
        return [det.to_tuple() for det in self.determinants()]

    def load_wire(self, data: Iterable[Tuple[int, int, int, int]]) -> int:
        """Merge a serialized payload; returns count of new determinants."""
        return self.merge(Determinant.from_tuple(item) for item in data)

    @property
    def wire_bytes(self) -> int:
        """Approximate serialized size (32 bytes per determinant)."""
        return 32 * len(self)


def register_depinfo(name: str):
    """Class decorator adding a representation to the registry."""

    def decorator(cls: type) -> type:
        DependencyStore.KINDS[name] = cls
        cls.kind = name
        return cls

    return decorator


def make_depinfo(kind: str) -> DependencyStore:
    """Instantiate a representation by registry name.

    ``kind`` is one of ``"vector"``, ``"matrix"``, ``"graph"``.
    """
    try:
        cls = DependencyStore.KINDS[kind]
    except KeyError:
        raise ValueError(
            f"unknown depinfo kind {kind!r}; choose from {sorted(DependencyStore.KINDS)}"
        ) from None
    return cls()


@register_depinfo("vector")
class DependencyVector(DependencyStore):
    """Flat map of delivery id to determinant, plus per-receiver max rsn.

    The cheapest representation: O(1) insert and membership, and the
    per-receiver "how far did this process get" vector that gives the
    representation its name.
    """

    def __init__(self) -> None:
        self._by_delivery: Dict[Tuple[int, int], Determinant] = {}
        self._max_rsn: Dict[int, int] = {}

    def record(self, det: Determinant) -> bool:
        key = det.delivery_id
        if key in self._by_delivery:
            return False
        self._by_delivery[key] = det
        if det.rsn > self._max_rsn.get(det.receiver, -1):
            self._max_rsn[det.receiver] = det.rsn
        return True

    def clear(self) -> None:
        self._by_delivery.clear()
        self._max_rsn.clear()

    def determinants(self) -> List[Determinant]:
        return sorted(self._by_delivery.values())

    def __contains__(self, det: Determinant) -> bool:
        return self._by_delivery.get(det.delivery_id) == det

    def for_receiver(self, receiver: int) -> Dict[int, Determinant]:
        return {
            rsn: det
            for (recv, rsn), det in self._by_delivery.items()
            if recv == receiver
        }

    def max_rsn(self, receiver: int) -> int:
        return self._max_rsn.get(receiver, -1)

    def vector(self) -> Dict[int, int]:
        """The classic dependency vector: receiver -> highest known rsn."""
        return dict(self._max_rsn)

    def __len__(self) -> int:
        return len(self._by_delivery)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DependencyVector({len(self)} determinants)"


@register_depinfo("matrix")
class DependencyMatrix(DependencyStore):
    """Determinants indexed ``[receiver][sender]``, as in Johnson/Zwaenepoel.

    Supports the "what do I know about channel (s -> r)" query that
    matrix-based protocols use, at the cost of a bigger index.
    """

    def __init__(self) -> None:
        self._cells: Dict[int, Dict[int, Dict[int, Determinant]]] = {}
        self._deliveries: Set[Tuple[int, int]] = set()

    def record(self, det: Determinant) -> bool:
        if det.delivery_id in self._deliveries:
            return False
        row = self._cells.setdefault(det.receiver, {})
        cell = row.setdefault(det.sender, {})
        # keyed by rsn (the delivery), not ssn: two contradictory
        # determinants for one message must both be representable
        cell[det.rsn] = det
        self._deliveries.add(det.delivery_id)
        return True

    def clear(self) -> None:
        self._cells.clear()
        self._deliveries.clear()

    def determinants(self) -> List[Determinant]:
        result: List[Determinant] = []
        for row in self._cells.values():
            for cell in row.values():
                result.extend(cell.values())
        return sorted(result)

    def __contains__(self, det: Determinant) -> bool:
        cell = self._cells.get(det.receiver, {}).get(det.sender, {})
        return cell.get(det.rsn) == det

    def for_receiver(self, receiver: int) -> Dict[int, Determinant]:
        result: Dict[int, Determinant] = {}
        for cell in self._cells.get(receiver, {}).values():
            for det in cell.values():
                result[det.rsn] = det
        return result

    def channel(self, sender: int, receiver: int) -> List[Determinant]:
        """Determinants of messages on one directed channel, by ssn."""
        cell = self._cells.get(receiver, {}).get(sender, {})
        return sorted(cell.values(), key=lambda det: det.ssn)

    def __len__(self) -> int:
        return len(self._deliveries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DependencyMatrix({len(self)} determinants)"


@register_depinfo("graph")
class AntecedenceGraph(DependencyStore):
    """Manetho-style antecedence graph.

    Nodes are delivery events ``(receiver, rsn)``; an edge runs from a
    delivery to every later delivery at the same process (program order)
    and from the delivery that *caused* a send to the delivery of the
    sent message (message order), when both are known.  Supports the
    transitive :meth:`antecedents` query used by the ``f = n`` instance.
    """

    def __init__(self) -> None:
        self._dets: Dict[Tuple[int, int], Determinant] = {}
        self._edges: Dict[Tuple[int, int], Set[Tuple[int, int]]] = {}

    def record(self, det: Determinant) -> bool:
        key = det.delivery_id
        if key in self._dets:
            return False
        self._dets[key] = det
        self._edges.setdefault(key, set())
        # program-order edge from the receiver's previous known delivery
        prev = (det.receiver, det.rsn - 1)
        if prev in self._dets:
            self._edges[prev].add(key)
        nxt = (det.receiver, det.rsn + 1)
        if nxt in self._dets:
            self._edges[key].add(nxt)
        return True

    def add_send_edge(self, cause: Determinant, effect: Determinant) -> None:
        """Record that ``cause``'s delivery causally precedes ``effect``'s.

        Both determinants are recorded if new.
        """
        self.record(cause)
        self.record(effect)
        self._edges[cause.delivery_id].add(effect.delivery_id)

    def clear(self) -> None:
        self._dets.clear()
        self._edges.clear()

    def determinants(self) -> List[Determinant]:
        return sorted(self._dets.values())

    def __contains__(self, det: Determinant) -> bool:
        return self._dets.get(det.delivery_id) == det

    def for_receiver(self, receiver: int) -> Dict[int, Determinant]:
        return {
            rsn: det for (recv, rsn), det in self._dets.items() if recv == receiver
        }

    def antecedents(self, det: Determinant) -> List[Determinant]:
        """All deliveries that transitively precede ``det`` in the graph."""
        target = det.delivery_id
        reverse: Dict[Tuple[int, int], Set[Tuple[int, int]]] = {}
        for src, dsts in self._edges.items():
            for dst in dsts:
                reverse.setdefault(dst, set()).add(src)
        seen: Set[Tuple[int, int]] = set()
        stack = list(reverse.get(target, ()))
        while stack:
            key = stack.pop()
            if key in seen:
                continue
            seen.add(key)
            stack.extend(reverse.get(key, ()))
        return sorted(self._dets[key] for key in seen if key in self._dets)

    def descendants(self, det: Determinant) -> List[Determinant]:
        """All deliveries that transitively follow ``det`` in the graph."""
        seen: Set[Tuple[int, int]] = set()
        stack = list(self._edges.get(det.delivery_id, ()))
        while stack:
            key = stack.pop()
            if key in seen:
                continue
            seen.add(key)
            stack.extend(self._edges.get(key, ()))
        return sorted(self._dets[key] for key in seen if key in self._dets)

    def __len__(self) -> int:
        return len(self._dets)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        edges = sum(len(v) for v in self._edges.values())
        return f"AntecedenceGraph({len(self)} deliveries, {edges} edges)"
