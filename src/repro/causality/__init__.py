"""Causality substrate.

Implements the dependency-tracking machinery the FBL protocols and the
recovery algorithms are built from:

* :mod:`repro.causality.lamport` -- scalar Lamport clocks,
* :mod:`repro.causality.vector_clock` -- vector clocks with the full
  happens-before partial order,
* :mod:`repro.causality.determinant` -- Alvisi/Marzullo-style message
  *determinants* ``#m = (sender, ssn, receiver, rsn)`` recording the
  receipt order of a message,
* :mod:`repro.causality.dependency` -- the three ``depinfo``
  representations the paper lists (dependency vector, dependency matrix,
  dependency/antecedence graph), all exposing one common interface so the
  recovery algorithms are representation-agnostic, exactly as the paper
  claims its algorithm is.
"""

from repro.causality.dependency import (
    AntecedenceGraph,
    DependencyMatrix,
    DependencyStore,
    DependencyVector,
    make_depinfo,
)
from repro.causality.determinant import Determinant
from repro.causality.lamport import LamportClock
from repro.causality.vector_clock import VectorClock

__all__ = [
    "AntecedenceGraph",
    "DependencyMatrix",
    "DependencyStore",
    "DependencyVector",
    "make_depinfo",
    "Determinant",
    "LamportClock",
    "VectorClock",
]
