"""Message determinants.

A *determinant* records everything needed to replay one message delivery
deterministically: who sent it, the sender's sequence number, who received
it, and the *receipt order* (rsn) the receiver assigned.  This is the
``#m`` of Alvisi & Marzullo's message-logging theory and the unit of
information the FBL protocols replicate at ``f + 1`` hosts.

The paper's recovery algorithm gathers exactly these records (as
``depinfo``) from live processes so that recovering processes can replay
their pre-crash deliveries in the original order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True, order=True)
class Determinant:
    """The receipt-order record of a single message delivery.

    Attributes
    ----------
    sender:
        Node id that sent the message.
    ssn:
        Sender sequence number; ``(sender, ssn)`` names the message.
    receiver:
        Node id that delivered the message.
    rsn:
        Receive sequence number: position of the delivery in the
        receiver's delivery order.  ``(receiver, rsn)`` names the
        delivery event.
    """

    sender: int
    ssn: int
    receiver: int
    rsn: int

    def __post_init__(self) -> None:
        if self.ssn < 0 or self.rsn < 0:
            raise ValueError(f"ssn/rsn must be non-negative: {self!r}")
        if self.sender == self.receiver:
            raise ValueError(f"self-delivery is not a message: {self!r}")

    @property
    def message_id(self) -> Tuple[int, int]:
        """``(sender, ssn)`` -- globally unique name of the message."""
        return (self.sender, self.ssn)

    @property
    def delivery_id(self) -> Tuple[int, int]:
        """``(receiver, rsn)`` -- globally unique name of the delivery."""
        return (self.receiver, self.rsn)

    def to_tuple(self) -> Tuple[int, int, int, int]:
        """Compact wire form used in piggybacks."""
        return (self.sender, self.ssn, self.receiver, self.rsn)

    @classmethod
    def from_tuple(cls, data: Tuple[int, int, int, int]) -> "Determinant":
        sender, ssn, receiver, rsn = data
        return cls(sender=sender, ssn=ssn, receiver=receiver, rsn=rsn)

    def __str__(self) -> str:
        return f"#({self.sender},{self.ssn})->({self.receiver},rsn={self.rsn})"
