"""Scalar Lamport logical clocks.

Used by the protocols to timestamp events with a total order consistent
with happens-before [Lamport 1978], which the paper's definitions of
*antecedent* and *descendent* messages (Section 4.1) rest on.
"""

from __future__ import annotations


class LamportClock:
    """A scalar logical clock.

    >>> c = LamportClock()
    >>> c.tick()
    1
    >>> c.update(10)
    11
    """

    __slots__ = ("value",)

    def __init__(self, value: int = 0) -> None:
        if value < 0:
            raise ValueError(f"clock value must be non-negative, got {value!r}")
        self.value = value

    def tick(self) -> int:
        """Advance for a local or send event; returns the new value."""
        self.value += 1
        return self.value

    def update(self, received: int) -> int:
        """Merge a received timestamp (receive event); returns the new value."""
        if received < 0:
            raise ValueError(f"received timestamp must be non-negative, got {received!r}")
        self.value = max(self.value, received) + 1
        return self.value

    def peek(self) -> int:
        """Current value without advancing."""
        return self.value

    def reset(self, value: int = 0) -> None:
        """Set the clock (used when restoring a checkpoint)."""
        if value < 0:
            raise ValueError(f"clock value must be non-negative, got {value!r}")
        self.value = value

    def __int__(self) -> int:
        return self.value

    def __repr__(self) -> str:
        return f"LamportClock({self.value})"
