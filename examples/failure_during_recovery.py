#!/usr/bin/env python3
"""The paper's hard case: a process fails during another's recovery.

Reproduces the evaluation's second experiment side by side:

* under the **blocking** baseline, every live process stalls from the
  first recovery request until the *second* failure has been detected,
  restored and recovered -- seconds of lost progress per live process;
* under the **new non-blocking algorithm**, the leader just restarts its
  gather ("goto 4") when the depinfo reply never arrives, waits for the
  failed process to announce its new incarnation, and no live process
  stalls at all.

Run:  python examples/failure_during_recovery.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import SystemConfig, build_system, crash_at, crash_on
from repro.analysis.report import format_table


def scenario(recovery: str) -> SystemConfig:
    # q (node 5) dies the instant the first recovery's request reaches
    # it, before it can reply -- the paper's exact E2 setup.
    trigger_mtype = (
        "depinfo_request" if recovery == "nonblocking" else "recovery_request"
    )
    return SystemConfig(
        name=f"e2-{recovery}",
        n=8,
        protocol="fbl",
        protocol_params={"f": 2},
        recovery=recovery,
        workload="uniform",
        workload_params={"hops": 40, "fanout": 2},
        crashes=[
            crash_at(node=3, time=0.05),
            crash_on(5, "net", "deliver", match_node=5,
                     match_details={"mtype": trigger_mtype}, immediate=True),
        ],
        detection_delay=3.0,
        state_bytes=1_000_000,
    )


def main() -> None:
    rows = []
    for recovery in ("blocking", "nonblocking"):
        system = build_system(scenario(recovery))
        result = system.run()
        assert result.consistent
        durations = sorted(result.recovery_durations(), reverse=True)
        restarts = sum(e.gather_restarts for e in result.episodes)
        rows.append([
            recovery,
            f"{durations[0]:.2f} / {durations[1]:.2f}",
            f"{result.mean_blocked_time(exclude=[3, 5]):.3f}",
            result.recovery_messages(),
            restarts,
        ])

    print(format_table(
        ["algorithm", "recovery times (s)", "live blocked (s)", "ctl msgs", "gather restarts"],
        rows,
        title="failure during recovery (paper Section 5, second experiment)",
    ))
    print()
    print(
        "both algorithms need ~seconds to recover (detection + restore of\n"
        "the second process dominates), but only the blocking baseline\n"
        "makes every live process pay that bill too.  The non-blocking\n"
        "algorithm spends a few extra control messages instead."
    )


if __name__ == "__main__":
    main()
