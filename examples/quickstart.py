#!/usr/bin/env python3
"""Quickstart: run one failure under the paper's new recovery algorithm.

Builds the paper's setting -- eight processes, FBL with f = 2 on an
ATM-class network with mid-90s stable storage -- crashes one process
50 ms in, and prints what the paper's evaluation would report:
recovery duration (dominated by failure detection and state restore),
blocked time at the live processes (zero!), and the recovery-control
message bill.

Run:  python examples/quickstart.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import SystemConfig, crash_at, run_config
from repro.analysis.report import format_run_summary


def main() -> None:
    config = SystemConfig(
        name="quickstart",
        n=8,                                # the paper's eight workstations
        protocol="fbl",
        protocol_params={"f": 2},           # tolerate two failures
        recovery="nonblocking",             # the paper's new algorithm
        workload="uniform",
        workload_params={"hops": 40, "fanout": 2},
        crashes=[crash_at(node=3, time=0.05)],
        detection_delay=3.0,                # "several seconds of timeouts"
        state_bytes=1_000_000,              # "about one Mbyte"
    )

    result = run_config(config)

    print(format_run_summary(result, crashed=[3]))
    episode = result.episodes[0]
    print()
    print("anatomy of the recovery:")
    print(f"  failure detection : {episode.detection_duration:.3f} s")
    print(f"  state restore     : {episode.restore_duration:.3f} s")
    algorithm = episode.total_duration - episode.detection_duration - episode.restore_duration
    print(f"  algorithm + replay: {algorithm * 1000:.1f} ms")
    print()
    print(
        "the paper's claim in one line: the whole distributed part of\n"
        "recovery costs milliseconds, while storage and detection cost\n"
        "seconds -- and no live process was disturbed at all."
    )

    assert result.consistent, "oracle found an inconsistency!"


if __name__ == "__main__":
    main()
