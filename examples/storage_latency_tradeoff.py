#!/usr/bin/env python3
"""Sweep stable-storage speed: the technology trend behind the paper.

The paper's thesis is that communication got fast while stable storage
(relatively) got slow, so a recovery algorithm should spend messages to
avoid storage stalls and blocking.  This example sweeps the
stable-storage generation -- from a fast device to a slow mid-80s disk
-- and shows that:

* the blocking baseline's intrusion on live processes grows with
  storage latency (its synchronous reply writes sit on the critical
  path, and so does the recovering process's restore, which live
  processes wait out),
* the non-blocking algorithm's intrusion stays exactly zero, and its
  extra communication cost stays constant and tiny.

Run:  python examples/storage_latency_tradeoff.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import SystemConfig, build_system, crash_at
from repro.analysis.report import format_table

#: (label, per-op latency in s, bandwidth in bytes/s)
STORAGE_GENERATIONS = [
    ("fast array", 0.002, 10e6),
    ("mid-90s disk", 0.020, 1e6),
    ("slow old disk", 0.060, 0.4e6),
]


def run(recovery: str, op_latency: float, bandwidth: float):
    config = SystemConfig(
        name=f"{recovery}-{op_latency}",
        n=8,
        protocol="fbl",
        protocol_params={"f": 2},
        recovery=recovery,
        workload="uniform",
        workload_params={"hops": 40, "fanout": 2},
        crashes=[crash_at(node=3, time=0.05)],
        detection_delay=3.0,
        state_bytes=1_000_000,
        storage_op_latency=op_latency,
        storage_bandwidth=bandwidth,
    )
    system = build_system(config)
    result = system.run()
    assert result.consistent
    return result


def main() -> None:
    rows = []
    for label, op_latency, bandwidth in STORAGE_GENERATIONS:
        blocking = run("blocking", op_latency, bandwidth)
        nonblocking = run("nonblocking", op_latency, bandwidth)
        rows.append([
            label,
            f"{blocking.recovery_durations()[0]:.2f}",
            f"{blocking.mean_blocked_time(exclude=[3]) * 1000:.0f}",
            f"{nonblocking.recovery_durations()[0]:.2f}",
            f"{nonblocking.mean_blocked_time(exclude=[3]) * 1000:.0f}",
            nonblocking.recovery_messages() - blocking.recovery_messages(),
        ])

    print(format_table(
        [
            "stable storage",
            "blk recovery (s)",
            "blk live blocked (ms)",
            "nb recovery (s)",
            "nb live blocked (ms)",
            "extra msgs (nb-blk)",
        ],
        rows,
        title="the slower the storage, the stronger the paper's argument",
    ))


if __name__ == "__main__":
    main()
