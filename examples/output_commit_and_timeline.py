#!/usr/bin/env python3
"""Output commit across the design space, with a visual timeline.

Two classic yardsticks in one example:

1. **Output-commit latency** -- how long a message to the outside world
   (a receipt, a terminal line) must be held until the state producing
   it is guaranteed recoverable.  Run under every protocol family.
2. **ASCII timelines** -- the paper's E2 scenario rendered per node, so
   the difference between the blocking baseline (live lanes full of
   ``#``) and the new non-blocking algorithm (clean ``=`` lanes) is
   visible at a glance.

Run:  python examples/output_commit_and_timeline.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import SystemConfig, build_system, crash_at, crash_on
from repro.analysis.report import format_table
from repro.analysis.stats import summarize
from repro.analysis.timeline import render_timeline

#: (label, protocol, recovery, params, checkpoint interval).  Optimistic
#: checkpoints too: an orphaned checkpoint is skipped at restart in
#: favour of the newest clean retained line.
STACKS = [
    ("pessimistic", "pessimistic", "local", {}, 0),
    ("fbl(f=2)", "fbl", "nonblocking", {"f": 2}, 0),
    ("manetho(f=n)", "manetho", "nonblocking", {}, 0),
    ("optimistic", "optimistic", "optimistic", {}, 8),
    ("coordinated", "coordinated", "coordinated", {"snapshot_every": 12}, 0),
]


def output_latency_table() -> None:
    rows = []
    for label, protocol, recovery, params, checkpoint_every in STACKS:
        config = SystemConfig(
            name=label, n=8, protocol=protocol, protocol_params=dict(params),
            recovery=recovery, workload="uniform",
            workload_params={"hops": 40, "fanout": 2, "output_every": 4},
            detection_delay=3.0, state_bytes=1_000_000,
            checkpoint_every=checkpoint_every,
        )
        result = build_system(config).run()
        assert result.consistent
        stats = summarize(result.output_latencies())
        rows.append([
            label, result.outputs_committed,
            f"{stats.p50 * 1000:.2f}", f"{stats.maximum * 1000:.1f}",
        ])
    print(format_table(
        ["stack", "outputs", "commit p50 (ms)", "commit max (ms)"],
        rows,
        title="how long must an output to the outside world be held?",
    ))
    print()
    print(
        "pessimistic commits instantly (it already paid on every delivery);\n"
        "FBL needs one acknowledged determinant push; Manetho one async disk\n"
        "write; optimistic waits for every dependency's log; coordinated\n"
        "waits for a whole snapshot round."
    )


def timelines() -> None:
    for recovery in ("blocking", "nonblocking"):
        trigger = "depinfo_request" if recovery == "nonblocking" else "recovery_request"
        config = SystemConfig(
            name=f"timeline-{recovery}", n=6,
            protocol="fbl", protocol_params={"f": 2}, recovery=recovery,
            workload="uniform", workload_params={"hops": 40, "fanout": 2},
            crashes=[
                crash_at(node=2, time=0.05),
                crash_on(4, "net", "deliver", match_node=4,
                         match_details={"mtype": trigger}, immediate=True),
            ],
            detection_delay=1.0, state_bytes=300_000,
        )
        system = build_system(config)
        system.run()
        print()
        print(f"--- E2 under {recovery} recovery ---")
        print(render_timeline(system.trace))


def main() -> None:
    output_latency_table()
    timelines()


if __name__ == "__main__":
    main()
