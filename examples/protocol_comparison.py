#!/usr/bin/env python3
"""Compare the whole rollback-recovery design space on one scenario.

Runs the same workload and the same crash under every protocol family in
the library -- the paper's Section 6 landscape:

* FBL(f=2) with the paper's non-blocking recovery,
* FBL(f=2) with the blocking, message-optimal baseline,
* sender-based message logging (f = 1),
* Manetho-style (f = n, stable-storage determinant log),
* pessimistic receiver-based logging (synchronous writes, local recovery),
* optimistic logging (asynchronous writes, orphan rollbacks),
* coordinated checkpointing (no logging, global rollback).

Prints one row per stack: where each one pays -- failure-free stalls,
recovery-time intrusion, extra messages, or lost work.

Run:  python examples/protocol_comparison.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import SystemConfig, build_system, crash_at
from repro.analysis.report import format_table

#: (label, protocol, params, recovery, checkpoint interval).  The
#: optimistic stack checkpoints: a line orphaned by a peer's rollback is
#: skipped at restart for the newest clean retained one.
STACKS = [
    ("fbl(f=2) + nonblocking", "fbl", {"f": 2}, "nonblocking", 0),
    ("fbl(f=2) + blocking", "fbl", {"f": 2}, "blocking", 0),
    ("sender-based (f=1)", "sender_based", {}, "nonblocking", 0),
    ("manetho (f=n)", "manetho", {}, "nonblocking", 0),
    ("pessimistic", "pessimistic", {}, "local", 0),
    ("optimistic", "optimistic", {}, "optimistic", 8),
    ("coordinated ckpt", "coordinated", {"snapshot_every": 12}, "coordinated", 0),
]


def main() -> None:
    rows = []
    for label, protocol, params, recovery, checkpoint_every in STACKS:
        config = SystemConfig(
            name=label,
            n=8,
            protocol=protocol,
            protocol_params=dict(params),
            recovery=recovery,
            workload="uniform",
            workload_params={"hops": 40, "fanout": 2},
            crashes=[crash_at(node=3, time=0.1)],
            detection_delay=3.0,
            state_bytes=1_000_000,
            checkpoint_every=checkpoint_every,
        )
        system = build_system(config)
        result = system.run()
        durations = result.recovery_durations()
        sync_stall = sum(
            result.sync_stall_time(node.node_id) for node in system.nodes
        )
        rows.append([
            label,
            f"{max(durations):.2f}" if durations else "-",
            f"{result.mean_blocked_time(exclude=[3]) * 1000:.0f}",
            result.recovery_messages(),
            f"{sync_stall:.2f}",
            result.orphan_rollbacks,
            system.metrics.rolled_back_deliveries,
            "yes" if result.consistent else "NO",
        ])

    print(format_table(
        [
            "stack",
            "recovery (s)",
            "live blocked (ms)",
            "ctl msgs",
            "sync storage stall (s)",
            "orphan rollbacks",
            "lost deliveries",
            "consistent",
        ],
        rows,
        title="one crash, eight processes: where each protocol family pays",
    ))


if __name__ == "__main__":
    main()
