"""Unit tests for SystemConfig validation and the metrics collector."""

import pytest

from repro import SystemConfig, crash_at
from repro.core.metrics import MetricsCollector, RecoveryEpisode
from repro.net.network import MessageKind, NetworkStats


class TestConfigValidation:
    def test_default_is_valid(self):
        SystemConfig().validate()

    def test_rejects_tiny_system(self):
        with pytest.raises(ValueError):
            SystemConfig(n=1).validate()

    def test_rejects_unknown_protocol(self):
        with pytest.raises(ValueError):
            SystemConfig(protocol="nope").validate()

    def test_rejects_unknown_recovery(self):
        with pytest.raises(ValueError):
            SystemConfig(recovery="nope").validate()

    def test_rejects_incompatible_pairing(self):
        with pytest.raises(ValueError):
            SystemConfig(protocol="fbl", recovery="local").validate()
        with pytest.raises(ValueError):
            SystemConfig(protocol="pessimistic", recovery="nonblocking").validate()
        with pytest.raises(ValueError):
            SystemConfig(protocol="coordinated", recovery="blocking").validate()

    def test_rejects_crash_of_unknown_node(self):
        with pytest.raises(ValueError):
            SystemConfig(n=4, crashes=[crash_at(9, 1.0)]).validate()

    def test_rejects_bad_hardware(self):
        with pytest.raises(ValueError):
            SystemConfig(detection_delay=-1).validate()
        with pytest.raises(ValueError):
            SystemConfig(state_bytes=0).validate()

    def test_sequencer_id_is_n(self):
        assert SystemConfig(n=8).sequencer_id == 8

    def test_describe_mentions_key_facts(self):
        config = SystemConfig(n=8, protocol="fbl", protocol_params={"f": 2})
        text = config.describe()
        assert "n=8" in text and "fbl(f=2)" in text


class TestMetricsCollector:
    def test_episode_lifecycle(self):
        metrics = MetricsCollector()
        episode = metrics.start_episode(3, 1.0)
        assert metrics.episode_of(3) is episode
        episode.restart_time = 4.0
        episode.restored_time = 5.0
        metrics.finish_episode(3, 6.0)
        assert metrics.episode_of(3) is None
        assert episode.total_duration == 5.0
        assert episode.detection_duration == 3.0
        assert episode.restore_duration == 1.0

    def test_incomplete_episode_has_none_duration(self):
        episode = RecoveryEpisode(node=0, crash_time=1.0)
        assert episode.total_duration is None
        assert not episode.complete

    def test_block_intervals_accumulate(self):
        metrics = MetricsCollector()
        metrics.block_start(1, 1.0)
        metrics.block_end(1, 3.0)
        metrics.block_start(1, 5.0)
        metrics.block_end(1, 6.0)
        assert metrics.blocked_time(1) == 3.0
        assert metrics.blocked_time_by_node() == {1: 3.0}

    def test_double_block_start_ignored(self):
        metrics = MetricsCollector()
        metrics.block_start(1, 1.0)
        metrics.block_start(1, 2.0)
        metrics.block_end(1, 3.0)
        assert metrics.blocked_time(1) == 2.0

    def test_close_open_blocks(self):
        metrics = MetricsCollector()
        metrics.block_start(1, 1.0)
        metrics.close_open_blocks(4.0)
        assert metrics.blocked_time(1) == 3.0

    def test_delivery_counting(self):
        metrics = MetricsCollector()
        metrics.count_delivery(0, during_replay=False)
        metrics.count_delivery(0, during_replay=True)
        assert metrics.deliveries[0] == 2
        assert metrics.replayed[0] == 1


class TestNetworkStatsHelpers:
    def test_of_kind_empty(self):
        assert NetworkStats().of_kind(MessageKind.RECOVERY) == (0, 0)
