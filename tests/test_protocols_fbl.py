"""Tests for the FBL protocol family's failure-free mechanics."""

import pytest

from repro import SystemConfig, build_system
from repro.causality.determinant import Determinant
from repro.protocols.fbl import STABLE_HOST, FamilyBasedLogging

from helpers import small_config


def run_system(config):
    system = build_system(config)
    result = system.run()
    return system, result


def test_f_must_be_positive():
    with pytest.raises(ValueError):
        FamilyBasedLogging(f=0)


def test_replication_target_is_f_plus_one():
    assert FamilyBasedLogging(f=3).replication_target == 4


def test_sender_logs_every_app_message():
    system, result = run_system(small_config(n=4, hops=10))
    for node in system.nodes:
        # every app message this node sent is in its send log
        sent = [
            e for e in system.trace.select(category="net", node=node.node_id, action="send")
            if e.details.get("mtype") == "app"
        ]
        assert len(node.protocol.send_log) == len(sent)


def test_receiver_records_determinant_per_delivery():
    system, result = run_system(small_config(n=4, hops=10))
    for node in system.nodes:
        own = node.protocol.det_log.for_receiver(node.node_id)
        assert len(own) == node.app.delivered_count
        assert set(own) == set(range(node.app.delivered_count))


def test_propagation_stops_at_f_plus_one():
    """The defining FBL property: once a determinant is known to be at
    f + 1 hosts, it is never piggybacked again."""
    config = small_config(n=6, f=2, hops=30)
    system, result = run_system(config)
    for node in system.nodes:
        protocol = node.protocol
        for det in protocol.det_log.determinants():
            hosts = protocol.det_log.logged_at(det)
            if len(hosts) >= 3 or STABLE_HOST in hosts:
                assert protocol._det_stable(det)
                assert det not in protocol.det_log.unstable(3)


def test_visible_determinants_replicated_at_claimed_hosts():
    """The logged_at accounting must be sound: every host a determinant
    claims to be logged at actually stores it (no failures in this run,
    so optimistic accounting equals ground truth)."""
    config = small_config(n=6, f=1, hops=30)
    system, result = run_system(config)
    by_id = {node.node_id: node for node in system.nodes}
    for node in system.nodes:
        for det in node.protocol.det_log.determinants():
            for host in node.protocol.det_log.logged_at(det):
                if host == STABLE_HOST:
                    continue
                assert det in by_id[host].protocol.det_log, (
                    f"{det} claimed at host {host} which does not store it"
                )


def test_determinants_of_senders_reach_other_hosts():
    """A determinant whose receiver sent at least one later message must
    be stored at more than just the receiver (propagation happened)."""
    config = small_config(n=6, f=2, hops=30)
    system, result = run_system(config)
    for node in system.nodes:
        own = node.protocol.det_log.for_receiver(node.node_id)
        if not own or not len(node.protocol.send_log):
            continue
        earliest = own.get(0)
        if earliest is None:
            continue
        holders = sum(
            1 for other in system.nodes if earliest in other.protocol.det_log
        )
        assert holders >= 2


def test_checkpoint_captures_both_logs():
    system, result = run_system(small_config(n=4, hops=10))
    node = system.nodes[0]
    extra = node.protocol.checkpoint_extra()
    assert len(extra["send_log"]) == len(node.protocol.send_log)
    assert len(extra["det_log"]) == len(node.protocol.det_log.determinants())


def test_restore_rebuilds_logs_from_checkpoint():
    system, result = run_system(small_config(n=4, hops=10))
    node = system.nodes[0]
    checkpoint = node.checkpoints.latest
    fresh = FamilyBasedLogging(f=2)
    fresh.attach(node)

    class FakeCkpt:
        extra = {"protocol": node.protocol.checkpoint_extra()}

    fresh.on_restore(FakeCkpt())
    assert len(fresh.send_log) == len(node.protocol.send_log)
    assert len(fresh.det_log) == len(node.protocol.det_log)


def test_local_depinfo_wire_round_trips():
    system, result = run_system(small_config(n=4, hops=10))
    node = system.nodes[0]
    wire = node.protocol.local_depinfo_wire()
    parsed = [Determinant.from_tuple(tuple(i)) for i in wire]
    assert parsed == node.protocol.det_log.determinants()


def test_dedupe_rejects_duplicate_ssn():
    """A retransmitted/regenerated message must not be delivered twice."""
    system, result = run_system(small_config(n=4, hops=10))
    for node in system.nodes:
        history = node.app.delivery_history
        assert len(history) == len(set(history))


def test_failure_free_run_has_no_recovery_traffic():
    system, result = run_system(small_config(n=6, hops=20))
    assert result.recovery_messages() == 0
    assert result.consistent


def test_higher_f_piggybacks_more():
    low = run_system(small_config(n=6, f=1, hops=25, seed=3))[1]
    high = run_system(small_config(n=6, f=4, hops=25, seed=3))[1]
    assert high.extra["piggyback_determinants"] >= low.extra["piggyback_determinants"]
