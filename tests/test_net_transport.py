"""Unit tests for the reliable transport layer."""

import pytest

from repro.net.faults import LinkFaultSpec, NetworkFaultModel, Partition, ScheduledDrop
from repro.net.latency import ConstantLatency
from repro.net.network import Message, MessageKind, Network
from repro.net.topology import full_mesh
from repro.net.transport import ReliableTransport, TransportParams
from repro.sim.kernel import Simulator
from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceRecorder


def make_stack(n=3, faults=None, params=None, seed=0, trace=None):
    sim = Simulator()
    net = Network(
        sim,
        full_mesh(n),
        latency=ConstantLatency(0.001),
        rngs=RngRegistry(seed),
        trace=trace,
        faults=faults,
    )
    transport = ReliableTransport(sim, net, params=params, trace=trace)
    return sim, net, transport


def msg(src=0, dst=1, mtype="app", **kw):
    return Message(src=src, dst=dst, kind=MessageKind.APPLICATION, mtype=mtype, **kw)


def test_params_validation():
    with pytest.raises(ValueError):
        TransportParams(rto=0.0)
    with pytest.raises(ValueError):
        TransportParams(backoff=0.5)
    with pytest.raises(ValueError):
        TransportParams(max_retries=-1)


def test_timeout_backoff_and_cap():
    p = TransportParams(rto=0.1, backoff=2.0, max_rto=0.5)
    assert p.timeout_for(0) == pytest.approx(0.1)
    assert p.timeout_for(1) == pytest.approx(0.2)
    assert p.timeout_for(2) == pytest.approx(0.4)
    assert p.timeout_for(3) == pytest.approx(0.5)  # capped
    assert p.timeout_for(10) == pytest.approx(0.5)


def test_clean_channel_delivers_in_order_and_acks():
    sim, net, transport = make_stack()
    got = []
    net.register(1, lambda m: got.append(m.payload["i"]))
    for i in range(5):
        net.send(msg(payload={"i": i}))
    sim.run()
    assert got == [0, 1, 2, 3, 4]
    assert transport.unacked() == 0
    assert transport.stats.acks_sent > 0
    assert net.stats.retransmits == 0
    # acks are their own accounting class
    assert net.stats.messages["transport"] == transport.stats.acks_sent


def test_lost_message_is_retransmitted():
    model = NetworkFaultModel(
        scheduled_drops=[ScheduledDrop(src=0, dst=1, max_drops=1)]
    )
    sim, net, transport = make_stack(faults=model)
    got = []
    net.register(1, lambda m: got.append(m.payload["i"]))
    net.send(msg(payload={"i": 0}))
    sim.run()
    assert got == [0]
    assert net.stats.retransmits == 1
    assert transport.unacked() == 0


def test_reordered_messages_are_resequenced():
    model = NetworkFaultModel()
    sim, net, transport = make_stack(faults=model)
    order = []
    net.register(1, lambda m: order.append(m.payload["i"]))
    model.set_default(LinkFaultSpec(reorder_prob=1.0, reorder_delay=0.5))
    net.send(msg(payload={"i": 0}))
    model.set_default(LinkFaultSpec())
    net.send(msg(payload={"i": 1}))
    sim.run()
    assert order == [0, 1]  # raw net would deliver [1, 0]
    assert transport.stats.out_of_order_buffered == 1


def test_duplicates_are_suppressed():
    model = NetworkFaultModel(default=LinkFaultSpec(dup_prob=1.0))
    sim, net, transport = make_stack(faults=model)
    got = []
    net.register(1, lambda m: got.append(m.payload["i"]))
    net.send(msg(payload={"i": 0}))
    sim.run()
    assert got == [0]
    assert transport.stats.dup_suppressed >= 1


def test_heavy_loss_still_delivers_everything_in_order():
    model = NetworkFaultModel(
        default=LinkFaultSpec(loss_prob=0.3, dup_prob=0.1, reorder_prob=0.2)
    )
    sim, net, transport = make_stack(faults=model, seed=5)
    got = []
    net.register(1, lambda m: got.append(m.payload["i"]))
    for i in range(50):
        net.send(msg(payload={"i": i}))
    sim.run()
    assert got == list(range(50))
    assert net.stats.retransmits > 0
    assert transport.unacked() == 0


def test_gives_up_after_max_retries():
    model = NetworkFaultModel(default=LinkFaultSpec(loss_prob=1.0))
    params = TransportParams(rto=0.01, max_retries=3)
    sim, net, transport = make_stack(faults=model, params=params)
    net.register(1, lambda m: None)
    net.send(msg())
    sim.run()
    assert transport.stats.gave_up == 1
    assert transport.unacked() == 0
    # 1 original send + 3 retries, all lost
    assert net.stats.retransmits == 3
    assert net.stats.drops_by_cause["loss"] >= 4


def test_partition_heal_end_to_end():
    """Messages sent into a partition arrive after it heals, via retry."""
    model = NetworkFaultModel(partitions=[Partition([{0}, {1, 2}], end=0.2)])
    params = TransportParams(rto=0.05, max_retries=20)
    sim, net, transport = make_stack(faults=model, params=params)
    got = []
    net.register(1, lambda m: got.append((round(sim.now, 3), m.payload["i"])))
    net.send(msg(payload={"i": 0}))
    sim.run()
    assert len(got) == 1
    assert got[0][0] >= 0.2  # only after the heal
    assert got[0][1] == 0


def test_receiver_crash_resets_channel_epoch():
    sim, net, transport = make_stack()
    got = []
    net.register(1, lambda m: got.append(m.payload["i"]))
    net.send(msg(payload={"i": 0}))
    sim.run()
    epoch_before = transport._epoch.get((0, 1), 0)
    net.deregister(1)
    assert transport._epoch[(0, 1)] == epoch_before + 1
    assert transport._send_seq[(0, 1)] == 0
    # messages to the crashed node are dropped, not acked
    net.send(msg(payload={"i": 1}))
    sim.run()
    assert got == [0]
    assert transport.stats.gave_up == 1
    # after restart the fresh epoch delivers from seq 0 again
    net.register(1, lambda m: got.append(m.payload["i"]))
    net.send(msg(payload={"i": 2}))
    sim.run()
    assert got == [0, 2]


def test_sender_crash_keeps_inflight_messages_retrying():
    """A message the channel accepted outlives its sender's crash, like
    the seed's in-flight messages (they live in the network, not in the
    sender).  FBL's piggybacked determinants rely on this."""
    model = NetworkFaultModel(default=LinkFaultSpec(loss_prob=1.0))
    sim, net, transport = make_stack(faults=model, params=TransportParams(rto=0.01))
    got = []
    net.register(0, lambda m: None)
    net.register(1, lambda m: got.append(m.payload["i"]))
    net.send(msg(payload={"i": 0}))  # lost on first transmission
    net.deregister(0)  # sender crashes with the message unacked
    assert transport.unacked() == 1  # still the channel's responsibility
    model.set_default(LinkFaultSpec())  # network heals
    sim.run()
    assert got == [0]
    assert transport.unacked() == 0


def test_crashed_destination_aborts_pending():
    model = NetworkFaultModel(default=LinkFaultSpec(loss_prob=1.0))
    sim, net, transport = make_stack(faults=model, params=TransportParams(rto=10.0))
    net.register(0, lambda m: None)
    net.register(1, lambda m: None)
    net.send(msg())
    assert transport.unacked() == 1
    net.deregister(1)  # the *destination* crashes
    assert transport.unacked() == 0
    assert transport.stats.aborted_on_reset == 1


def test_stale_epoch_message_rejected():
    sim, net, transport = make_stack()
    got = []
    net.register(1, lambda m: got.append(m.payload))
    net.send(msg(payload={"pre": True}))  # establish channel state, epoch 0
    sim.run()
    net.deregister(1)  # bumps (0,1) to epoch 1
    net.register(1, lambda m: got.append(m.payload))
    net.send(msg(payload={"new": True}))  # receiver state now at epoch 1
    sim.run()
    assert {"new": True} in got
    # a straggler from the pre-crash connection arrives late
    stale = msg(payload={"old": True})
    stale.transport_seq = 1
    stale.transport_epoch = 0
    before = transport.stats.stale_dropped
    net.transmit(stale)
    sim.run()
    assert transport.stats.stale_dropped == before + 1
    assert {"old": True} not in got


def test_retransmissions_accounted_separately():
    model = NetworkFaultModel(
        scheduled_drops=[ScheduledDrop(src=0, dst=1, max_drops=2)]
    )
    sim, net, transport = make_stack(faults=model)
    net.register(1, lambda m: None)
    sent = net.send(msg(body_bytes=100))
    sim.run()
    assert net.stats.retransmits == 2
    assert net.stats.retransmit_bytes == 2 * sent.size_bytes
    # first transmissions of app traffic unchanged by the retries
    assert net.stats.messages["application"] == 1


def test_deterministic_per_seed():
    def run(seed):
        model = NetworkFaultModel(
            default=LinkFaultSpec(loss_prob=0.2, dup_prob=0.1, reorder_prob=0.1)
        )
        sim, net, transport = make_stack(faults=model, seed=seed)
        got = []
        net.register(1, lambda m: got.append(m.payload["i"]))
        for i in range(30):
            net.send(msg(payload={"i": i}))
        sim.run()
        return (
            got,
            net.stats.retransmits,
            net.stats.drops_by_cause,
            transport.stats.as_dict(),
        )

    assert run(3) == run(3)
    assert run(3) != run(4)  # different seed, different fault pattern
