"""docs/INDEX.md must list every documentation file.

The index promises to be the complete map of docs/; this test makes
the promise enforceable: a file added to docs/ without an entry in
INDEX.md fails here with the missing names, and an entry pointing at a
file that no longer exists fails the stale check.
"""

import os
import re

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DOCS_DIR = os.path.join(REPO_ROOT, "docs")
INDEX_PATH = os.path.join(DOCS_DIR, "INDEX.md")


def index_text() -> str:
    with open(INDEX_PATH, encoding="utf-8") as handle:
        return handle.read()


def linked_doc_files(text: str) -> set:
    """Markdown links to sibling docs/ files: ``[...](NAME.md)``."""
    return set(re.findall(r"\]\(([A-Za-z0-9_.-]+\.md)\)", text))


def test_every_docs_file_is_listed():
    present = {
        name for name in os.listdir(DOCS_DIR)
        if name.endswith(".md") and name != "INDEX.md"
    }
    missing = present - linked_doc_files(index_text())
    assert not missing, (
        f"docs/ files missing from docs/INDEX.md: {sorted(missing)} -- "
        f"add an entry (and a one-line description) for each"
    )


def test_no_stale_index_entries():
    stale = {
        name for name in linked_doc_files(index_text())
        if not os.path.exists(os.path.join(DOCS_DIR, name))
    }
    assert not stale, (
        f"docs/INDEX.md links to files that do not exist: {sorted(stale)}"
    )


def test_readme_links_to_the_index():
    with open(os.path.join(REPO_ROOT, "README.md"), encoding="utf-8") as handle:
        assert "docs/INDEX.md" in handle.read(), (
            "README.md must link to docs/INDEX.md so the index is reachable"
        )
