"""Node lifecycle tests (crash semantics, blocking, checkpoints)."""

import pytest

from repro import build_system, crash_at
from repro.core.node import NodeState

from helpers import small_config


def build(crashes=(), **kw):
    return build_system(small_config(crashes=list(crashes), **kw))


def test_start_makes_nodes_live_with_bootstrap_checkpoint():
    system = build()
    system.start()
    for node in system.nodes:
        assert node.is_live
        assert node.checkpoints.latest is not None
        assert node.checkpoints.latest.delivered_count == 0


def test_crash_wipes_volatile_state():
    system = build()
    system.start()
    system.sim.run(until=0.05)
    node = system.nodes[2]
    assert node.app.delivered_count > 0
    node.crash()
    assert node.state == NodeState.CRASHED
    assert node.app.delivered_count == 0
    assert node.delivered_ids == set()
    assert len(node.protocol.det_log) == 0
    assert len(node.protocol.send_log) == 0


def test_crash_is_idempotent():
    system = build()
    system.start()
    node = system.nodes[2]
    node.crash()
    count = node.crash_count
    node.crash()
    assert node.crash_count == count


def test_crashed_node_receives_nothing():
    system = build()
    system.start()
    system.nodes[2].crash()
    assert not system.network.is_registered(2)


def test_restart_scheduled_after_detection_delay():
    config = small_config(crashes=[crash_at(node=2, time=0.02)])
    system = build_system(config)
    system.start()
    system.sim.run(until=0.02 + config.detection_delay - 0.001)
    assert system.nodes[2].state == NodeState.CRASHED
    system.sim.run(until=0.02 + config.detection_delay + 0.001)
    assert system.nodes[2].state == NodeState.RESTORING
    system.sim.run()


def test_incarnation_survives_repeated_crashes():
    system = build(crashes=[crash_at(2, 0.02), crash_at(2, 3.0)])
    result = system.run()
    assert system.nodes[2].incarnation == 2


def test_stale_incarnation_messages_rejected():
    system = build()
    system.start()
    node = system.nodes[0]
    node.incvector[3] = 5
    from repro.net.network import Message, MessageKind

    before = node.app.delivered_count
    node.receive(
        Message(src=3, dst=0, kind=MessageKind.APPLICATION, mtype="app",
                payload={"data": {"hops": 0}}, incarnation=4, ssn=999)
    )
    assert node.app.delivered_count == before
    assert system.trace.count("node", "reject_stale") == 1


def test_block_queues_and_unblock_drains():
    system = build()
    system.start()
    node = system.nodes[0]
    node.block()
    from repro.net.network import Message, MessageKind

    before = node.app.delivered_count
    node.receive(
        Message(src=1, dst=0, kind=MessageKind.APPLICATION, mtype="app",
                payload={"data": {"hops": 0}}, incarnation=0, ssn=901)
    )
    assert node.app.delivered_count == before
    node.unblock()
    assert node.app.delivered_count == before + 1


def test_blocked_time_recorded():
    system = build()
    system.start()
    node = system.nodes[0]
    node.block()
    system.sim.run(until=0.25)
    node.unblock()
    system.sim.run()
    assert system.metrics.blocked_time(0) == pytest.approx(0.25, abs=0.01)


def test_block_on_crashed_node_is_noop():
    system = build()
    system.start()
    node = system.nodes[0]
    node.crash()
    node.block()
    assert not node.blocked


def test_periodic_checkpoints_taken():
    system = build_system(small_config(checkpoint_every=5, hops=25))
    result = system.run()
    checkpoints = system.trace.count("node", "checkpoint")
    assert checkpoints > system.config.n  # more than just the bootstraps


def test_periodic_checkpoint_shortens_replay():
    """A node that checkpointed at delivery k replays only from k."""
    config_a = small_config(checkpoint_every=0, hops=30,
                            crashes=[crash_at(node=2, time=0.04)], seed=9)
    config_b = small_config(checkpoint_every=3, hops=30,
                            crashes=[crash_at(node=2, time=0.04)], seed=9)
    ra = build_system(config_a).run()
    rb = build_system(config_b).run()
    assert ra.consistent and rb.consistent
    replayed_a = ra.episodes[0].replayed_deliveries
    replayed_b = rb.episodes[0].replayed_deliveries
    assert replayed_b <= replayed_a


def test_voluntary_rollback_restarts_immediately():
    config = small_config()
    system = build_system(config)
    system.start()
    system.sim.run(until=0.05)
    node = system.nodes[2]
    node.voluntary_rollback()
    assert node.state == NodeState.CRASHED
    # restart begins immediately, far sooner than detection_delay
    system.sim.run(until=0.051)
    assert node.state in (NodeState.RESTORING, NodeState.RECOVERING)
    system.sim.run()
    assert node.is_live
