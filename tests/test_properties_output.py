"""Property-based tests for output commit under random failure schedules.

The invariants that must hold for *any* crash schedule within the
failure budget:

* exactly-once: no output id is ever released twice;
* safety: no released output stems from a delivery that was permanently
  rolled back (checked by the oracle's digest cross-check);
* liveness: once the system quiesces with everyone live, no output is
  left pending.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import build_system, crash_at

from helpers import small_config


def output_config(protocol, recovery, params, crashes, seed, output_every):
    return small_config(
        protocol=protocol,
        recovery=recovery,
        protocol_params=params,
        workload="uniform",
        workload_params={"hops": 20, "fanout": 2, "output_every": output_every},
        crashes=crashes,
        seed=seed,
    )


schedules = st.builds(
    lambda victims, times: [
        crash_at(node=v, time=t) for v, t in zip(victims, times)
    ],
    victims=st.lists(
        st.integers(min_value=0, max_value=5), min_size=1, max_size=2, unique=True
    ),
    times=st.lists(
        st.floats(min_value=0.005, max_value=0.3), min_size=2, max_size=2
    ),
)


def check_invariants(system, result):
    assert result.consistent, result.oracle_violations[:3]
    # exactly-once
    ids = [record.output_id for record in system.output_device.outputs]
    assert len(ids) == len(set(ids))
    # liveness: quiesced <=> nothing pending
    pending = sum(
        len(getattr(node.protocol, "_pending_outputs", []))
        for node in system.nodes
    )
    assert pending == 0
    assert all(node.is_live for node in system.nodes)


@settings(max_examples=20, deadline=None)
@given(
    schedule=schedules,
    seed=st.integers(min_value=0, max_value=5_000),
    recovery=st.sampled_from(["nonblocking", "blocking"]),
    output_every=st.integers(min_value=2, max_value=6),
)
def test_fbl_output_invariants(schedule, seed, recovery, output_every):
    system = build_system(output_config(
        "fbl", recovery, {"f": 2}, schedule, seed, output_every
    ))
    result = system.run()
    check_invariants(system, result)


@settings(max_examples=12, deadline=None)
@given(
    victim=st.integers(min_value=0, max_value=5),
    time=st.floats(min_value=0.005, max_value=0.25),
    seed=st.integers(min_value=0, max_value=5_000),
)
def test_optimistic_output_invariants(victim, time, seed):
    system = build_system(output_config(
        "optimistic", "optimistic", {}, [crash_at(node=victim, time=time)],
        seed, output_every=3,
    ))
    result = system.run()
    check_invariants(system, result)


@settings(max_examples=12, deadline=None)
@given(
    victim=st.integers(min_value=0, max_value=5),
    time=st.floats(min_value=0.005, max_value=0.25),
    seed=st.integers(min_value=0, max_value=5_000),
)
def test_pessimistic_output_invariants(victim, time, seed):
    system = build_system(output_config(
        "pessimistic", "local", {}, [crash_at(node=victim, time=time)],
        seed, output_every=3,
    ))
    result = system.run()
    check_invariants(system, result)


@settings(max_examples=10, deadline=None)
@given(
    victim=st.integers(min_value=0, max_value=5),
    time=st.floats(min_value=0.01, max_value=0.25),
    seed=st.integers(min_value=0, max_value=5_000),
)
def test_coordinated_output_invariants(victim, time, seed):
    system = build_system(output_config(
        "coordinated", "coordinated", {"snapshot_every": 8},
        [crash_at(node=victim, time=time)], seed, output_every=3,
    ))
    result = system.run()
    check_invariants(system, result)
