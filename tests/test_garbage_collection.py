"""Garbage-collection tests: logs must not grow without bound.

Periodic checkpoints let the protocols discard what replay can never
need again: senders prune their send logs up to the receiver's durable
contiguous prefix, determinant copies for covered deliveries are
dropped everywhere, and the stable logs of pessimistic/Manetho logging
are compacted.  Correctness must be unaffected -- including crashes
landing right after a round of GC.
"""

import pytest

from repro import build_system, crash_at

from helpers import small_config


def gc_config(protocol="fbl", recovery="nonblocking", checkpoint_every=5, **kw):
    params = kw.pop("protocol_params", {"f": 2} if protocol == "fbl" else {})
    return small_config(
        protocol=protocol,
        recovery=recovery,
        protocol_params=params,
        checkpoint_every=checkpoint_every,
        workload="uniform",
        workload_params={"hops": 40, "fanout": 2},
        **kw,
    )


class TestSendLogPruning:
    def test_send_logs_shrink_with_checkpoints(self):
        without = build_system(gc_config(checkpoint_every=0, seed=4))
        without.run()
        with_gc = build_system(gc_config(checkpoint_every=5, seed=4))
        with_gc.run()
        size_without = sum(len(n.protocol.send_log) for n in without.nodes)
        size_with = sum(len(n.protocol.send_log) for n in with_gc.nodes)
        assert size_with < size_without

    def test_gc_notices_are_sent(self):
        system = build_system(gc_config())
        system.run()
        assert system.trace.count("gc", "notice") > 0
        assert system.trace.count("gc", "pruned") > 0

    def test_no_gc_without_periodic_checkpoints(self):
        system = build_system(gc_config(checkpoint_every=0))
        system.run()
        assert system.trace.count("gc", "notice") == 0


class TestDeterminantGC:
    def test_determinant_logs_shrink(self):
        without = build_system(gc_config(checkpoint_every=0, seed=4))
        without.run()
        with_gc = build_system(gc_config(checkpoint_every=5, seed=4))
        with_gc.run()
        dets_without = sum(len(n.protocol.det_log) for n in without.nodes)
        dets_with = sum(len(n.protocol.det_log) for n in with_gc.nodes)
        assert dets_with < dets_without

    def test_only_covered_prefix_dropped(self):
        system = build_system(gc_config())
        system.run()
        for node in system.nodes:
            covered = node.checkpoints.latest.delivered_count
            own = node.protocol.det_log.for_receiver(node.node_id)
            assert all(rsn >= covered for rsn in own)


class TestStableLogCompaction:
    def test_pessimistic_log_compacts(self):
        without = build_system(
            gc_config(protocol="pessimistic", recovery="local", checkpoint_every=0,
                      seed=4)
        )
        without.run()
        with_gc = build_system(
            gc_config(protocol="pessimistic", recovery="local", checkpoint_every=5,
                      seed=4)
        )
        with_gc.run()
        len_without = sum(
            n.storage.log_len(f"msglog:{n.node_id}") for n in without.nodes
        )
        len_with = sum(
            n.storage.log_len(f"msglog:{n.node_id}") for n in with_gc.nodes
        )
        assert len_with < len_without

    def test_manetho_log_compacts(self):
        with_gc = build_system(
            gc_config(protocol="manetho", checkpoint_every=5)
        )
        with_gc.run()
        assert with_gc.trace.count("gc", "log_compacted") > 0


class TestCorrectnessWithGC:
    @pytest.mark.parametrize("protocol,recovery", [
        ("fbl", "nonblocking"),
        ("fbl", "blocking"),
        ("sender_based", "nonblocking"),
        ("manetho", "nonblocking"),
        ("pessimistic", "local"),
    ])
    def test_recovery_after_gc_is_consistent(self, protocol, recovery):
        """Crash long enough into the run that GC has already pruned."""
        system = build_system(gc_config(
            protocol=protocol, recovery=recovery, checkpoint_every=4,
            crashes=[crash_at(node=2, time=0.06)],
        ))
        result = system.run()
        assert result.consistent, result.oracle_violations[:3]
        assert all(node.is_live for node in system.nodes)

    def test_two_failures_after_gc(self):
        system = build_system(gc_config(
            checkpoint_every=4,
            crashes=[crash_at(node=1, time=0.05), crash_at(node=3, time=0.06)],
        ))
        result = system.run()
        assert result.consistent
        assert len(result.recovery_durations()) == 2

    def test_replay_starts_from_latest_durable_checkpoint(self):
        system = build_system(gc_config(
            checkpoint_every=4,
            crashes=[crash_at(node=2, time=0.08)],
        ))
        result = system.run()
        assert result.consistent
        episode = result.episodes[0]
        # with periodic checkpoints the replay is strictly shorter than
        # the pre-crash delivery count would require from scratch
        assert episode.complete


class TestOracleArchiveBounding:
    """The oracle's rollback archives follow the protocols' GC horizon.

    Regression: the archives used to grow forever -- every crash left
    its rolled-back sends and deliveries in memory for the rest of the
    run.  Durable checkpoints now drive :meth:`ConsistencyOracle.on_gc`,
    which prunes archived entries the checkpoint horizon covers.
    """

    def long_run(self, checkpoint_every):
        system = build_system(gc_config(
            checkpoint_every=checkpoint_every,
            crashes=[crash_at(node=2, time=0.05), crash_at(node=4, time=0.4)],
            seed=3,
        ))
        result = system.run()
        assert result.consistent, result.oracle_violations[:3]
        return system

    def test_checkpoints_prune_rollback_archives(self):
        without = self.long_run(checkpoint_every=0)
        with_gc = self.long_run(checkpoint_every=4)
        assert with_gc.oracle.graph.archived_entries() < \
            without.oracle.graph.archived_entries()

    def test_archives_stay_bounded_on_long_runs(self):
        with_gc = self.long_run(checkpoint_every=4)
        # two crashes' worth of rolled-back suffixes, minus everything
        # the checkpoint horizon covered: a small residue, not O(run)
        assert with_gc.oracle.graph.archived_entries() < 200
