"""Tests for the experiment runner and the analysis helpers."""

import pytest

from repro import ExperimentRunner, crash_at
from repro.analysis.report import format_run_summary, format_table
from repro.analysis.stats import percentile, summarize

from helpers import small_config


class TestExperimentRunner:
    def test_runs_each_config_once_by_default(self):
        runner = ExperimentRunner()
        config = small_config(hops=8)
        sweep = runner.run([config])
        assert len(sweep.of(config.name)) == 1

    def test_names_key_results(self):
        runner = ExperimentRunner()
        a = small_config(hops=8)
        a.name = "alpha"
        b = small_config(hops=8)
        b.name = "beta"
        sweep = runner.run([a, b])
        assert set(sweep.names()) == {"alpha", "beta"}
        assert sweep.single("alpha").config_name == "alpha"

    def test_repetitions_reseed(self):
        runner = ExperimentRunner(repetitions=3)
        config = small_config(hops=8)
        config.name = "reps"
        sweep = runner.run([config])
        runs = sweep.of("reps")
        assert len(runs) == 3
        # different seeds => different jitter => different end times
        assert len({r.end_time for r in runs}) == 3

    def test_repetitions_with_crashes_rearm_plans(self):
        runner = ExperimentRunner(repetitions=2)
        config = small_config(hops=15, crashes=[crash_at(node=1, time=0.02)])
        config.name = "crashy"
        sweep = runner.run([config])
        for run in sweep.of("crashy"):
            assert len(run.recovery_durations()) == 1
        assert sweep.all_consistent()

    def test_mean_over_runs(self):
        runner = ExperimentRunner(repetitions=2)
        config = small_config(hops=8)
        config.name = "m"
        sweep = runner.run([config])
        mean = sweep.mean_over_runs("m", lambda r: float(r.total_deliveries))
        assert mean > 0

    def test_single_raises_on_multiple(self):
        runner = ExperimentRunner(repetitions=2)
        config = small_config(hops=8)
        config.name = "s"
        sweep = runner.run([config])
        with pytest.raises(ValueError):
            sweep.single("s")

    def test_rejects_zero_repetitions(self):
        with pytest.raises(ValueError):
            ExperimentRunner(repetitions=0)


class TestStats:
    def test_summarize_basics(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0])
        assert summary.count == 4
        assert summary.mean == 2.5
        assert summary.minimum == 1.0
        assert summary.maximum == 4.0
        assert summary.p50 == 2.5

    def test_summarize_single_value(self):
        summary = summarize([7.0])
        assert summary.std == 0.0
        assert summary.p95 == 7.0

    def test_summarize_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_percentile_interpolates(self):
        assert percentile([0.0, 10.0], 0.5) == 5.0
        assert percentile([0.0, 10.0], 0.0) == 0.0
        assert percentile([0.0, 10.0], 1.0) == 10.0

    def test_percentile_validates(self):
        with pytest.raises(ValueError):
            percentile([], 0.5)
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)


class TestReport:
    def test_format_table_aligns(self):
        text = format_table(
            ["name", "value"],
            [["alpha", 1.5], ["b", 123456.0]],
            title="demo",
        )
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 5

    def test_format_run_summary_mentions_key_figures(self):
        from repro.core.system import run_config

        config = small_config(hops=10, crashes=[crash_at(node=1, time=0.02)])
        result = run_config(config)
        text = format_run_summary(result, crashed=[1])
        assert "recovery durations" in text
        assert "blocked time" in text
        assert "consistent: True" in text
