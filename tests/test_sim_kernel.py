"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim.kernel import SimulationError, Simulator


def test_clock_starts_at_zero():
    assert Simulator().now == 0.0


def test_clock_custom_start():
    assert Simulator(start_time=5.0).now == 5.0


def test_schedule_and_run_advances_clock():
    sim = Simulator()
    fired = []
    sim.schedule(1.5, fired.append, "a")
    sim.run()
    assert fired == ["a"]
    assert sim.now == 1.5


def test_events_fire_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(3.0, order.append, 3)
    sim.schedule(1.0, order.append, 1)
    sim.schedule(2.0, order.append, 2)
    sim.run()
    assert order == [1, 2, 3]


def test_same_time_events_fire_fifo():
    sim = Simulator()
    order = []
    for i in range(10):
        sim.schedule(1.0, order.append, i)
    sim.run()
    assert order == list(range(10))


def test_priority_breaks_ties():
    sim = Simulator()
    order = []
    sim.schedule(1.0, order.append, "late", priority=5)
    sim.schedule(1.0, order.append, "early", priority=-5)
    sim.run()
    assert order == ["early", "late"]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-0.1, lambda: None)


def test_schedule_at_past_rejected():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(0.5, lambda: None)


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    handle = sim.schedule(1.0, fired.append, "x")
    handle.cancel()
    sim.run()
    assert fired == []
    assert handle.cancelled


def test_cancel_is_idempotent():
    sim = Simulator()
    handle = sim.schedule(1.0, lambda: None)
    handle.cancel()
    handle.cancel()
    assert handle.cancelled


def test_run_until_stops_before_later_events():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(5.0, fired.append, "b")
    sim.run(until=2.0)
    assert fired == ["a"]
    assert sim.now == 2.0
    sim.run()
    assert fired == ["a", "b"]


def test_run_until_fires_events_at_exact_horizon():
    sim = Simulator()
    fired = []
    sim.schedule(2.0, fired.append, "edge")
    sim.run(until=2.0)
    assert fired == ["edge"]


def test_run_advances_clock_to_until_when_idle():
    sim = Simulator()
    sim.run(until=10.0)
    assert sim.now == 10.0


def test_events_scheduled_during_run_fire():
    sim = Simulator()
    fired = []

    def chain():
        fired.append("first")
        sim.schedule(1.0, fired.append, "second")

    sim.schedule(1.0, chain)
    sim.run()
    assert fired == ["first", "second"]
    assert sim.now == 2.0


def test_max_events_limits_run():
    sim = Simulator()
    count = []

    def tick():
        count.append(1)
        sim.schedule(1.0, tick)

    sim.schedule(1.0, tick)
    sim.run(max_events=7)
    assert len(count) == 7


def test_stop_halts_run():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: (fired.append("a"), sim.stop()))
    sim.schedule(2.0, fired.append, "b")
    sim.run()
    assert fired == ["a"]
    sim.run()
    assert fired == ["a", "b"]


def test_step_fires_single_event():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, 1)
    sim.schedule(2.0, fired.append, 2)
    assert sim.step() is True
    assert fired == [1]
    assert sim.step() is True
    assert sim.step() is False


def test_drain_empties_heap():
    sim = Simulator()
    for i in range(100):
        sim.schedule(i * 0.1, lambda: None)
    sim.drain()
    assert sim.pending_events == 0


def test_drain_raises_on_runaway():
    sim = Simulator()

    def forever():
        sim.schedule(1.0, forever)

    sim.schedule(1.0, forever)
    with pytest.raises(SimulationError):
        sim.drain(max_events=50)


def test_events_processed_counts_fired_only():
    sim = Simulator()
    handle = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    handle.cancel()
    sim.run()
    assert sim.events_processed == 1


def test_kwargs_passed_to_callback():
    sim = Simulator()
    seen = {}
    sim.schedule(1.0, lambda **kw: seen.update(kw), value=42)
    sim.run()
    assert seen == {"value": 42}


def test_not_reentrant():
    sim = Simulator()
    errors = []

    def nested():
        try:
            sim.run()
        except SimulationError as exc:
            errors.append(exc)

    sim.schedule(1.0, nested)
    sim.run()
    assert len(errors) == 1


# ----------------------------------------------------------------------
# live-event counting and heap compaction
# ----------------------------------------------------------------------
def test_live_events_excludes_cancelled():
    sim = Simulator()
    handles = [sim.schedule(float(i + 1), lambda: None) for i in range(5)]
    assert sim.live_events == 5 == sim.pending_events
    handles[0].cancel()
    handles[3].cancel()
    assert sim.pending_events == 5  # corpses stay queued (lazy cancel)
    assert sim.live_events == 3
    handles[0].cancel()  # idempotent: counted once
    assert sim.live_events == 3
    sim.run()
    assert sim.live_events == 0 == sim.pending_events
    assert sim.events_processed == 3


def test_cancel_after_fire_does_not_corrupt_counter():
    sim = Simulator()
    handle = sim.schedule(1.0, lambda: None)
    sim.run()
    handle.cancel()  # already popped: must not decrement live accounting
    assert sim.live_events == 0
    assert sim.pending_events == 0


def test_compaction_sheds_cancelled_corpses():
    sim = Simulator(compact_min_heap=64, compact_ratio=0.5)
    # the retransmit pattern: cancel each far timer soon after arming it
    prev = None
    for _ in range(500):
        if prev is not None:
            prev.cancel()
        prev = sim.schedule(100.0, lambda: None)
    assert sim.compactions > 0
    # corpses were shed: the heap stays near its live size
    assert sim.pending_events < 128
    assert sim.live_events == 1


def test_compaction_preserves_firing_order_and_results():
    def workload(sim):
        fired = []
        prev = None
        for i in range(300):
            if prev is not None and i % 3:
                prev.cancel()
            prev = sim.schedule(50.0 + i * 0.001, fired.append, i)
            sim.schedule(0.001 * i, fired.append, 1000 + i)
        sim.run()
        return fired, sim.events_processed

    compacting = Simulator(compact_min_heap=32, compact_ratio=0.25)
    disabled = Simulator(compact_min_heap=None)
    assert workload(compacting) == workload(disabled)
    assert compacting.compactions > 0
    assert disabled.compactions == 0


def test_compaction_disabled_with_none():
    sim = Simulator(compact_min_heap=None)
    prev = None
    for _ in range(2000):
        if prev is not None:
            prev.cancel()
        prev = sim.schedule(100.0, lambda: None)
    assert sim.compactions == 0
    assert sim.pending_events == 2000  # every corpse still queued
    assert sim.live_events == 1


def test_drain_is_exact_with_cancelled_leftovers():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    doomed = sim.schedule(2.0, lambda: None)
    doomed.cancel()
    # drain must not confuse the cancelled leftover with remaining work
    sim.drain(max_events=10)
    assert sim.events_processed == 1


# ----------------------------------------------------------------------
# choice oracle (exhaustive small-scope checking hooks)
# ----------------------------------------------------------------------
def test_choice_oracle_orders_ties():
    fired = []
    sim = Simulator()
    for i in range(3):
        sim.schedule(1.0, fired.append, i)
    # always pick the last remaining candidate: reverses insertion order
    sim.set_choice_oracle(lambda width: width - 1)
    sim.run()
    assert fired == [2, 1, 0]


def test_choice_oracle_zero_matches_fifo():
    def workload(sim):
        fired = []
        for i in range(5):
            sim.schedule(0.5, fired.append, i)
            sim.schedule(0.5 + 0.001 * i, fired.append, 100 + i)
        sim.run()
        return fired, sim.events_processed

    plain = Simulator()
    oracle = Simulator()
    oracle.set_choice_oracle(lambda width: 0)
    assert workload(plain) == workload(oracle)


def test_choice_oracle_not_consulted_without_ties():
    calls = []
    sim = Simulator()

    def oracle(width):
        calls.append(width)
        return 0

    sim.set_choice_oracle(oracle)
    sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    sim.run()
    assert calls == []  # singleton tie groups never reach the oracle


def test_choice_oracle_sees_full_tie_width():
    widths = []
    sim = Simulator()

    def oracle(width):
        widths.append(width)
        return 0

    sim.set_choice_oracle(oracle)
    for _ in range(4):
        sim.schedule(1.0, lambda: None)
    sim.run()
    # first decision sees all 4 candidates, then 3, then 2
    assert widths == [4, 3, 2]


def test_choice_oracle_skips_cancelled_events():
    fired = []
    sim = Simulator()
    sim.schedule(1.0, fired.append, 0)
    doomed = sim.schedule(1.0, fired.append, 1)
    sim.schedule(1.0, fired.append, 2)
    doomed.cancel()
    widths = []

    def oracle(width):
        widths.append(width)
        return width - 1

    sim.set_choice_oracle(oracle)
    sim.run()
    assert fired == [2, 0]
    assert widths == [2]  # the cancelled corpse never counts as a choice


def test_choice_oracle_bad_index_raises():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.schedule(1.0, lambda: None)
    sim.set_choice_oracle(lambda width: width)  # off by one
    with pytest.raises(SimulationError):
        sim.run()


def test_choice_oracle_respects_priority_groups():
    fired = []
    sim = Simulator()
    sim.schedule(1.0, fired.append, "low", priority=1)
    sim.schedule(1.0, fired.append, "high-a", priority=0)
    sim.schedule(1.0, fired.append, "high-b", priority=0)
    sim.set_choice_oracle(lambda width: width - 1)
    sim.run()
    # only the two priority-0 events are interchangeable
    assert fired == ["high-b", "high-a", "low"]


def test_choice_oracle_step_consults_oracle():
    fired = []
    sim = Simulator()
    sim.schedule(1.0, fired.append, 0)
    sim.schedule(1.0, fired.append, 1)
    sim.set_choice_oracle(lambda width: 1)
    assert sim.step()
    assert fired == [1]
