"""Tests for the command-line interface."""

import pytest

from repro.cli import DEFAULT_RECOVERY, _parse_crash, build_parser, main


class TestParsing:
    def test_parse_crash(self):
        plan = _parse_crash("3@0.05")
        assert plan.node == 3
        assert plan.at_time == 0.05

    def test_parse_crash_rejects_garbage(self):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            _parse_crash("banana")
        with pytest.raises(argparse.ArgumentTypeError):
            _parse_crash("3:0.05")

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_default_recovery_covers_all_protocols(self):
        from repro.protocols import PROTOCOLS

        assert set(DEFAULT_RECOVERY) == set(PROTOCOLS)


class TestRunCommand:
    def test_run_failure_free(self, capsys):
        code = main([
            "run", "--n", "4", "--hops", "10",
            "--detection-delay", "0.5", "--state-bytes", "100000",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "deliveries" in out
        assert "consistent: True" in out

    def test_run_with_crash(self, capsys):
        code = main([
            "run", "--n", "4", "--hops", "15", "--crash", "2@0.03",
            "--detection-delay", "0.5", "--state-bytes", "100000",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "recovery durations" in out

    def test_run_with_outputs(self, capsys):
        code = main([
            "run", "--n", "4", "--hops", "15", "--output-every", "4",
            "--detection-delay", "0.5", "--state-bytes", "100000",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "output commits" in out

    @pytest.mark.parametrize("protocol", [
        "sender_based", "manetho", "pessimistic", "optimistic", "coordinated",
    ])
    def test_run_every_protocol(self, capsys, protocol):
        code = main([
            "run", "--n", "4", "--hops", "10", "--protocol", protocol,
            "--detection-delay", "0.5", "--state-bytes", "100000",
        ])
        assert code == 0


class TestCompareCommand:
    def test_compare_two_algorithms(self, capsys):
        code = main([
            "compare", "--n", "4", "--hops", "15", "--crash", "2@0.03",
            "--detection-delay", "0.5", "--state-bytes", "100000",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "fbl + nonblocking" in out
        assert "fbl + blocking" in out

    def test_compare_all_protocols(self, capsys):
        code = main([
            "compare", "--all-protocols", "--n", "4", "--hops", "10",
            "--crash", "2@0.03",
            "--detection-delay", "0.5", "--state-bytes", "100000",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "pessimistic" in out
        assert "coordinated" in out


class TestSweepCommand:
    def test_sweep_n(self, capsys):
        code = main([
            "sweep", "--knob", "n", "--values", "4,6", "--hops", "10",
            "--crash", "1@0.03",
            "--detection-delay", "0.5", "--state-bytes", "100000",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "sweep over n" in out

    def test_sweep_detection(self, capsys):
        code = main([
            "sweep", "--knob", "detection", "--values", "0.3,0.6",
            "--n", "4", "--hops", "10", "--crash", "1@0.03",
            "--state-bytes", "100000",
        ])
        assert code == 0

    def test_sweep_rejects_unknown_knob(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--knob", "bogus", "--values", "1,2"])
