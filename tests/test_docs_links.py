"""No dead relative links in docs/ or the README.

Every markdown link whose target is a relative path (optionally with a
``#fragment``) must point at a file that exists in the repository.
External links (http/https/mailto) and pure in-page anchors are out of
scope -- this is a rot check, not a crawler.
"""

import os
import re

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

DOC_FILES = sorted(
    ["README.md"]
    + [
        os.path.join("docs", name)
        for name in os.listdir(os.path.join(REPO_ROOT, "docs"))
        if name.endswith(".md")
    ]
)

#: inline markdown links: [text](target)
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def relative_targets(text: str):
    for target in LINK.findall(text):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        path = target.split("#", 1)[0]
        if not path:  # pure in-page anchor
            continue
        yield target, path


@pytest.mark.parametrize("doc", DOC_FILES)
def test_no_dead_relative_links(doc):
    doc_path = os.path.join(REPO_ROOT, doc)
    with open(doc_path, encoding="utf-8") as handle:
        text = handle.read()
    base = os.path.dirname(doc_path)
    dead = [
        target
        for target, path in relative_targets(text)
        if not os.path.exists(os.path.normpath(os.path.join(base, path)))
    ]
    assert not dead, f"{doc} has dead relative links: {dead}"


def test_link_checker_sees_links():
    """The regex actually extracts links (guard against a silently
    degenerate checker)."""
    total = 0
    for doc in DOC_FILES:
        with open(os.path.join(REPO_ROOT, doc), encoding="utf-8") as handle:
            total += sum(1 for _ in relative_targets(handle.read()))
    assert total > 20, f"only {total} relative links found across the docs"
