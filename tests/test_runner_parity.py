"""Serial/parallel determinism parity for :mod:`repro.runner`.

The runner's headline guarantee: a spec list run at ``jobs=1`` (fully
in-process, no multiprocessing) and at ``jobs=N`` produces identical
per-trial :class:`RunResult` summaries, identical mergeable metrics,
and identical aggregate reports -- parallelism never leaks into virtual
time.  ``wall_s`` is the only field allowed to differ (and is excluded
from :class:`TrialResult` equality).

These tests run real systems (crashes, lossy networks, chaos draws), so
any scheduling- or pickling-induced nondeterminism shows up as a loud
table diff, not a flaky benchmark.
"""

import io
import sys

from helpers import small_config

from repro.cli import main as cli_main
from repro.procs.failure import crash_at
from repro.runner import (
    TrialRunner,
    TrialSpec,
    default_jobs,
    merge_metrics,
    merge_trace_counters,
    run_configs,
    run_results,
)

PARALLEL_JOBS = 4


def _specs():
    """A mixed fleet: perfect and lossy networks, crashes, two stacks."""
    specs = []
    for seed in range(3):
        specs.append(TrialSpec(
            config=small_config(
                protocol="fbl", recovery="nonblocking", seed=seed,
                crashes=[crash_at(node=1, time=0.05)],
            ),
            label=f"nb-{seed}",
        ))
        specs.append(TrialSpec(
            config=small_config(
                protocol="fbl", recovery="blocking", seed=seed,
                crashes=[crash_at(node=2, time=0.06)],
            ),
            label=f"blk-{seed}",
        ))
    lossy = small_config(
        protocol="fbl", recovery="nonblocking", seed=7,
        crashes=[crash_at(node=3, time=0.05)],
        transport="reliable",
        transport_params={"max_retries": 30},
    )
    from repro.core.config import FaultConfig

    lossy.faults = FaultConfig(loss_prob=0.1)
    specs.append(TrialSpec(config=lossy, label="lossy"))
    return specs


def test_serial_and_parallel_results_are_identical():
    specs = _specs()
    serial = TrialRunner(jobs=1).run(specs)
    parallel = TrialRunner(jobs=PARALLEL_JOBS).run(specs)

    assert [t.index for t in serial] == list(range(len(specs)))
    assert [t.index for t in parallel] == list(range(len(specs)))
    assert [t.label for t in serial] == [t.label for t in parallel]
    # RunResult is a value-compared dataclass: this covers end times,
    # deliveries, episodes, network ledgers, digests, and extra{} whole
    assert [t.summary for t in serial] == [t.summary for t in parallel]
    assert [t.metrics for t in serial] == [t.metrics for t in parallel]
    assert [t.trace_counters for t in serial] == [
        t.trace_counters for t in parallel
    ]
    # TrialResult equality itself ignores wall_s
    assert serial == parallel


def test_merged_aggregates_are_identical_and_ordered():
    specs = _specs()
    serial = TrialRunner(jobs=1).run(specs)
    parallel = TrialRunner(jobs=PARALLEL_JOBS).run(specs)

    merged_serial = merge_metrics(serial).snapshot()
    merged_parallel = merge_metrics(parallel).snapshot()
    assert merged_serial == merged_parallel

    counters_serial = merge_trace_counters(serial)
    counters_parallel = merge_trace_counters(parallel)
    assert counters_serial == counters_parallel
    # byte-identical includes dict key order
    assert list(counters_serial) == list(counters_parallel)


def test_rerunning_frozen_specs_does_not_contaminate():
    """Failure-plan trigger state must be re-armed per trial: running the
    same spec list twice (the parity pattern) gives the same results."""
    specs = _specs()
    first = TrialRunner(jobs=1).run(specs)
    second = TrialRunner(jobs=1).run(specs)
    assert first == second
    # and the crash actually fired both times
    assert all(t.summary.episodes for t in first if t.label.startswith("nb"))


def test_chunking_does_not_change_results():
    specs = _specs()
    baseline = TrialRunner(jobs=1).run(specs)
    for chunk_size in (1, 2, len(specs)):
        chunked = TrialRunner(jobs=2, chunk_size=chunk_size).run(specs)
        assert chunked == baseline, f"chunk_size={chunk_size} broke parity"


def test_run_configs_and_run_results_helpers():
    configs = [
        small_config(protocol="fbl", recovery="nonblocking", seed=s,
                     crashes=[crash_at(node=1, time=0.05)])
        for s in range(2)
    ]
    trials = run_configs(configs, jobs=2)
    summaries = run_results(configs, jobs=1)
    assert [t.summary for t in trials] == summaries


def test_seed_override_reseeds_the_trial():
    config = small_config(protocol="fbl", recovery="nonblocking", seed=0)
    base, reseeded = TrialRunner(jobs=1).run([
        TrialSpec(config=config),
        TrialSpec(config=config, seed=1234),
    ])
    assert base.summary.digests != reseeded.summary.digests


def test_default_jobs_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "3")
    assert default_jobs() == 3
    monkeypatch.setenv("REPRO_JOBS", "0")
    assert default_jobs() == 1
    monkeypatch.delenv("REPRO_JOBS")
    assert default_jobs() >= 1


def _cli_table(argv):
    captured = io.StringIO()
    old = sys.stdout
    sys.stdout = captured
    try:
        code = cli_main(argv)
    finally:
        sys.stdout = old
    assert code == 0
    return captured.getvalue()


def test_cli_sweep_table_identical_across_jobs():
    argv = ["sweep", "--knob", "n", "--values", "4,6", "--crash", "1@0.05"]
    assert _cli_table(argv + ["--jobs", "1"]) == _cli_table(
        argv + ["--jobs", str(PARALLEL_JOBS)]
    )


def test_cli_grid_table_identical_across_jobs():
    argv = [
        "grid", "--knob", "n=4,6", "--knob", "loss=0.0,0.05",
        "--seeds", "2", "--crash", "1@0.05",
    ]
    assert _cli_table(argv + ["--jobs", "1"]) == _cli_table(
        argv + ["--jobs", str(PARALLEL_JOBS)]
    )


def test_chaos_trials_parity_smoke():
    """Chaos draws (partitions, storage outages, triggered crashes) run
    through the runner with the same verdicts at any job count."""
    from test_chaos import chaos_config, check_invariants

    configs = [
        chaos_config("fbl", "nonblocking", 2, seed) for seed in range(4)
    ]
    specs = [TrialSpec(config=c) for c in configs]
    serial = TrialRunner(jobs=1).run(specs)
    parallel = TrialRunner(jobs=2).run(specs)
    assert serial == parallel
    for config, trial in zip(configs, serial):
        assert check_invariants(config, trial.summary) == []
