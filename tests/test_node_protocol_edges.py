"""Edge-case tests for node routing and the shared protocol machinery."""

import pytest

from repro import build_system, crash_at
from repro.core.node import NodeState
from repro.net.network import Message, MessageKind
from repro.procs.process import OUTPUT_DST

from helpers import small_config


def started(**kw):
    system = build_system(small_config(**kw))
    system.start()
    return system


class TestBlockedRouting:
    def test_retransmit_data_deferred_while_blocked(self):
        """Blocked means no application progress -- including deliveries
        that arrive as retransmissions."""
        system = started(n=4, hops=10)
        node = system.nodes[0]
        node.block()
        before = node.app.delivered_count
        node.receive(Message(
            src=1, dst=0, kind=MessageKind.PROTOCOL, mtype="retransmit_data",
            payload={"ssn": 950, "data": {"hops": 0}}, incarnation=0, ssn=950,
        ))
        assert node.app.delivered_count == before
        node.unblock()
        assert node.app.delivered_count == before + 1
        system.sim.run()

    def test_retransmit_request_served_while_blocked(self):
        """Control that serves someone else's recovery must not be
        delayed by our own blocking."""
        system = started(n=4, hops=10)
        system.sim.run(until=0.02)
        node = system.nodes[0]
        node.block()
        sent_before = system.network.stats.total_messages()
        node.receive(Message(
            src=1, dst=0, kind=MessageKind.PROTOCOL, mtype="retransmit_request",
            payload={"requester": 1}, incarnation=0,
        ))
        assert system.network.stats.total_messages() >= sent_before
        node.unblock()
        system.sim.run()

    def test_recovery_control_bypasses_blocking(self):
        system = started(n=4, hops=10, recovery="blocking")
        node = system.nodes[0]
        node.block()
        # a recovery_complete from a peer must be processed immediately
        node.receive(Message(
            src=2, dst=0, kind=MessageKind.RECOVERY, mtype="recovery_complete",
            payload={"incarnation": 1}, incarnation=1,
        ))
        assert node.incvector.get(2) == 1
        node.unblock()
        system.sim.run()


class TestRestoreQueue:
    def test_recovery_control_queued_during_restore(self):
        system = started(n=4, hops=10, crashes=[crash_at(2, 0.02)])
        config = system.config
        system.sim.run(until=0.02 + config.detection_delay + 0.01)
        node = system.nodes[2]
        assert node.state == NodeState.RESTORING
        node.receive(Message(
            src=1, dst=2, kind=MessageKind.RECOVERY, mtype="recovery_complete",
            payload={"incarnation": 5}, incarnation=5,
        ))
        assert len(node._restore_queue) == 1
        system.sim.run()
        # delivered to the manager after restore: incvector updated
        assert node.incvector.get(1) == 5

    def test_app_messages_dropped_during_restore(self):
        system = started(n=4, hops=10, crashes=[crash_at(2, 0.02)])
        config = system.config
        system.sim.run(until=0.02 + config.detection_delay + 0.01)
        node = system.nodes[2]
        before = node.app.delivered_count
        node.receive(Message(
            src=1, dst=2, kind=MessageKind.APPLICATION, mtype="app",
            payload={"data": {"hops": 0}}, incarnation=0, ssn=960,
        ))
        assert node.app.delivered_count == before
        system.sim.run()


class TestOutputRouting:
    def test_output_sends_never_hit_the_network(self):
        system = started(n=4, hops=10,
                         workload_params={"hops": 10, "fanout": 1, "output_every": 1})
        system.sim.run()
        for event in system.trace.select(category="net", action="send"):
            assert event.details.get("dst") != OUTPUT_DST

    def test_output_ids_deterministic_per_delivery(self):
        system = started(n=4, hops=10,
                         workload_params={"hops": 10, "fanout": 1, "output_every": 2})
        system.sim.run()
        for record in system.output_device.outputs:
            node_id, rsn, index = record.output_id
            assert 0 <= node_id < 4
            assert rsn >= 0 and index == 0

    def test_client_server_receipts(self):
        system = build_system(small_config(
            n=4, workload="client_server",
            workload_params={"requests": 4, "output_replies": True},
        ))
        result = system.run()
        assert result.consistent
        by_node = system.output_device.by_node()
        assert set(by_node) == {0}  # only the server externalises
        assert len(by_node[0]) == 3 * 4  # three clients, four requests each


class TestRetransmissionHelpers:
    def test_request_retransmissions_noop_when_not_replaying(self):
        system = started(n=4, hops=10)
        before = system.network.stats.total_messages()
        system.nodes[0].protocol.request_retransmissions_from(1)
        assert system.network.stats.total_messages() == before
        system.sim.run()

    def test_serve_retransmissions_resends_logged_messages(self):
        system = started(n=4, hops=10)
        system.sim.run(until=0.05)
        sender = next(n for n in system.nodes if len(n.protocol.send_log))
        peer = sender.protocol.send_log.messages_for(
            next(d for (d, _s) in sender.protocol.send_log._by_key)
        )
        before = system.network.stats.total_messages()
        target = next(d for (d, _s) in sender.protocol.send_log._by_key)
        sender.protocol._serve_retransmissions(target)
        assert system.network.stats.total_messages() > before
        system.sim.run()


class TestIncvectorMerging:
    def test_incvector_never_decreases(self):
        system = started(n=4, hops=10, crashes=[crash_at(2, 0.02)])
        system.sim.run()
        node = system.nodes[0]
        node.incvector[2] = 7
        node.recovery.on_control(Message(
            src=2, dst=0, kind=MessageKind.RECOVERY, mtype="recovery_complete",
            payload={"incarnation": 3}, incarnation=3,
        ))
        assert node.incvector[2] == 7
