"""Streaming (spill-to-disk) traces.

A ``TraceRecorder`` with a spill path must behave observably like the
plain in-memory recorder -- same query results, same ``repro trace``
output, same spans -- while holding only a bounded window of events in
memory.  The one inherent JSON-round-trip difference (tuples inside
``details`` come back as lists) is exactly what ``dump_trace`` /
``load_trace`` already do.
"""

import json

import pytest

from repro import build_system
from repro.analysis.trace_io import dump_trace, load_trace
from repro.sim.spans import spans_from_trace
from repro.sim.trace import TraceRecorder, TraceSpillLog

from helpers import small_config
from test_seed_regression import BUILDERS, GOLDEN, snapshot


# ----------------------------------------------------------------------
# TraceSpillLog unit behaviour
# ----------------------------------------------------------------------
def _fill(trace, count):
    for i in range(count):
        trace.record(float(i), "cat", i % 3, "act", i=i)


def test_window_stays_bounded(tmp_path):
    trace = TraceRecorder(spill_path=str(tmp_path / "t.jsonl"), spill_window=10)
    _fill(trace, 100)
    spill = trace.spill
    assert spill is not None
    assert len(spill._window) <= 10
    assert len(trace.events) == 100
    assert trace.counters["cat.act"] == 100


def test_iteration_replays_spilled_prefix_in_order(tmp_path):
    trace = TraceRecorder(spill_path=str(tmp_path / "t.jsonl"), spill_window=7)
    _fill(trace, 50)
    times = [e.time for e in trace.events]
    assert times == [float(i) for i in range(50)]


def test_query_parity_with_in_memory_recorder(tmp_path):
    plain = TraceRecorder()
    spilled = TraceRecorder(spill_path=str(tmp_path / "t.jsonl"), spill_window=5)
    _fill(plain, 40)
    _fill(spilled, 40)

    def strip(events):
        return [(e.time, e.category, e.node, e.action, e.details) for e in events]

    assert strip(spilled.select("cat")) == strip(plain.select("cat"))
    assert strip(spilled.select(node=1)) == strip(plain.select(node=1))
    assert strip(list(spilled.iter_select(action="act"))) == strip(
        list(plain.iter_select(action="act"))
    )
    assert spilled.first(node=2).time == plain.first(node=2).time
    assert spilled.last(node=2).time == plain.last(node=2).time
    assert len(spilled) == len(plain)


def test_last_reads_through_the_window(tmp_path):
    """A reversed scan that misses the in-memory window must reach the
    spilled prefix."""
    trace = TraceRecorder(spill_path=str(tmp_path / "t.jsonl"), spill_window=5)
    trace.record(0.0, "rare", 9, "needle")
    _fill(trace, 30)
    found = trace.last(category="rare")
    assert found is not None and found.node == 9


def test_finalize_makes_file_complete_and_loadable(tmp_path):
    path = tmp_path / "t.jsonl"
    trace = TraceRecorder(spill_path=str(path), spill_window=10)
    _fill(trace, 25)
    trace.finalize()
    lines = [json.loads(l) for l in path.read_text().splitlines() if l]
    assert len(lines) == 25
    assert lines[0] == {
        "time": 0.0, "category": "cat", "node": 0, "action": "act",
        "details": {"i": 0},
    }
    loaded = load_trace(str(path))
    assert len(loaded.events) == 25
    assert loaded.counters["cat.act"] == 25


def test_clear_truncates_file_and_window(tmp_path):
    path = tmp_path / "t.jsonl"
    trace = TraceRecorder(spill_path=str(path), spill_window=4)
    _fill(trace, 20)
    trace.clear()
    assert len(trace.events) == 0
    assert not list(trace.events)
    trace.finalize()
    assert path.read_text() == ""
    # the log is still writable after clear
    _fill(trace, 3)
    assert len(trace.events) == 3


def test_spill_ignored_when_keep_events_off(tmp_path):
    trace = TraceRecorder(
        keep_events=False, spill_path=str(tmp_path / "t.jsonl"), spill_window=4
    )
    assert trace.spill is None
    assert trace.events == []


def test_append_after_finalize_still_lands_in_file(tmp_path):
    path = tmp_path / "t.jsonl"
    log = TraceSpillLog(str(path), window=4)
    trace = TraceRecorder()
    trace.events = log
    _fill(trace, 6)
    log.finalize()
    _fill(trace, 2)
    log.finalize()
    assert len(log) == 8
    assert [e.time for e in log] == [float(i) for i in range(6)] + [0.0, 1.0]


# ----------------------------------------------------------------------
# full-system behaviour
# ----------------------------------------------------------------------
def _spilled_system(tmp_path, **overrides):
    return build_system(small_config(
        n=4, hops=15,
        trace_spill_path=str(tmp_path / "trace.jsonl"),
        trace_spill_window=50,
        **overrides,
    ))


def test_system_run_with_spill_matches_plain_run(tmp_path):
    plain = build_system(small_config(n=4, hops=15)).run()
    spilled = _spilled_system(tmp_path).run()
    assert spilled.extra["trace_counters"] == plain.extra["trace_counters"]
    assert spilled.extra["events_processed"] == plain.extra["events_processed"]
    assert spilled.end_time == plain.end_time
    assert spilled.digests == plain.digests


def test_system_spill_file_is_repro_trace_compatible(tmp_path):
    system = _spilled_system(tmp_path)
    system.run()
    path = tmp_path / "trace.jsonl"
    loaded = load_trace(str(path))
    assert len(loaded.events) == len(system.trace.events)
    assert loaded.counters == system.trace.counters


def test_dump_trace_reads_through_spill(tmp_path):
    plain_sys = build_system(small_config(n=4, hops=15))
    plain_sys.run()
    plain_out = tmp_path / "plain.jsonl"
    dump_trace(plain_sys.trace, str(plain_out))

    spill_sys = _spilled_system(tmp_path)
    spill_sys.run()
    spill_out = tmp_path / "from_spill.jsonl"
    dump_trace(spill_sys.trace, str(spill_out))

    plain_lines = [json.loads(l) for l in plain_out.read_text().splitlines()]
    spill_lines = [json.loads(l) for l in spill_out.read_text().splitlines()]
    assert spill_lines == plain_lines


def test_spans_reconstruct_from_spilled_trace(tmp_path):
    system = _spilled_system(tmp_path, spans=True)
    system.run()
    spans = spans_from_trace(system.trace)
    assert spans, "expected recovery/checkpoint spans in a crash run"
    # and from the raw spill file via load_trace, identically
    loaded = load_trace(str(tmp_path / "trace.jsonl"))
    assert len(spans_from_trace(loaded)) == len(spans)


def test_sanitizer_green_with_spill(tmp_path):
    result = _spilled_system(tmp_path, sanitize=True).run()
    assert result.consistent
    assert result.extra["sanitizer"]["violations"] == []


def test_cli_run_with_trace_spill(tmp_path, capsys):
    from repro.cli import main

    path = tmp_path / "spill.jsonl"
    code = main([
        "run", "--n", "4", "--hops", "10", "--crash", "1@0.03",
        "--detection-delay", "0.5", "--state-bytes", "100000",
        "--trace-spill", str(path), "--trace-spill-window", "25",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "streamed" in out
    assert path.exists() and path.stat().st_size > 0
    assert len(load_trace(str(path)).events) > 0


# ----------------------------------------------------------------------
# goldens: pool + spill must be invisible to the simulation
# ----------------------------------------------------------------------
@pytest.mark.parametrize("key", sorted(BUILDERS))
def test_goldens_byte_identical_with_spill_and_pool(key, tmp_path):
    """The event pool is always on (schedule_fast is used by node
    restarts and every network delivery), so the plain goldens already
    cover it; this run adds the streaming-trace sink on top."""
    recovery = "nonblocking" if key.endswith("nonblocking") else "blocking"
    from repro.experiments import failure_during_recovery, single_failure

    builder = single_failure if key.startswith("e1") else failure_during_recovery
    system = builder(
        recovery=recovery,
        trace_spill_path=str(tmp_path / "g.jsonl"),
        trace_spill_window=64,
    )
    assert snapshot(system) == GOLDEN[key]
