"""Byte-identical regression vs the seed simulator.

The fault-injection layer (``repro.net.faults``, ``repro.net.transport``,
storage faults) must be invisible when disabled: with ``faults=None`` and
``transport="raw"`` -- the defaults -- the paper's experiments must
reproduce the seed's numbers *exactly*, down to the last float.  The
goldens in ``tests/data/seed_golden_e1_e2.json`` were captured from the
seed tree before any fault-injection code landed, and are re-captured
only when a PR *intentionally* changes protocol behaviour (most
recently: the epoch-numbered resumable recovery control plane, which
adds gather-progress persistence messages -- docs/RECOVERY.md).

Exact ``==`` on floats is deliberate: the guarantee under test is
bit-identical execution (same RNG draws, same event order), not numeric
closeness.
"""

import json
from pathlib import Path

import pytest

from repro.experiments import failure_during_recovery, single_failure

GOLDEN = json.loads(
    (Path(__file__).parent / "data" / "seed_golden_e1_e2.json").read_text()
)


def snapshot(system):
    r = system.run()
    return {
        "end_time": r.end_time,
        "deliveries": {str(k): v for k, v in sorted(r.deliveries.items())},
        "recovery_durations": r.recovery_durations(),
        "blocked_time_by_node": {
            str(k): v for k, v in sorted(r.blocked_time_by_node.items())
        },
        "messages": dict(sorted(r.network.messages.items())),
        "bytes": dict(sorted(r.network.bytes.items())),
        "dropped": r.network.dropped,
        "digests": {str(k): v for k, v in sorted(r.digests.items())},
        "events_processed": r.extra["events_processed"],
    }


BUILDERS = {
    "e1-nonblocking": lambda: single_failure(recovery="nonblocking"),
    "e1-blocking": lambda: single_failure(recovery="blocking"),
    "e2-nonblocking": lambda: failure_during_recovery(recovery="nonblocking"),
    "e2-blocking": lambda: failure_during_recovery(recovery="blocking"),
}


@pytest.mark.parametrize("key", sorted(BUILDERS))
def test_defaults_byte_identical_to_seed(key):
    assert snapshot(BUILDERS[key]()) == GOLDEN[key]


def test_default_config_builds_no_fault_machinery():
    """The default path must not even install the fault/transport hooks."""
    system = single_failure(recovery="nonblocking")
    assert system.network.faults is None
    assert system.network.transport is None
    assert system.transport is None
    assert all(node.storage.faults is None for node in system.nodes)
