"""Adaptive hybrid logging: mode switches, cross-mode recovery, config.

The switch matrix drives every ordered mode pair through a scripted
``switch_plan`` (bypassing the cost model but not quiescence) and holds
each run to the full bar: oracle consistent, online sanitizer clean
(including the ``mode-epoch`` invariant), and the switch actually
committed.  The crash matrix then kills the switching process inside
the most delicate window -- determinants flushed and the mode marker
durable, but the first new-mode checkpoint not yet taken -- and
requires recovery across the mode boundary to finish cleanly.
"""

import itertools

import pytest

from repro import SystemConfig, build_system
from repro.core.config import AdaptiveConfig
from repro.procs.failure import crash_on
from repro.protocols.adaptive import MODES, AdaptiveLogging

#: every ordered pair of distinct modes
TRANSITIONS = [(a, b) for a, b in itertools.permutations(MODES, 2)]


def adaptive_config(
    initial_mode="fbl",
    switch_plan=None,
    crashes=None,
    seed=0,
    **overrides,
):
    params = {
        "f": 2,
        "initial_mode": initial_mode,
        # a plan-only controller: the dwell is prohibitive and the
        # cadence long, so only scripted switches fire
        "eval_every": 1000,
        "min_dwell": 10_000,
    }
    if switch_plan is not None:
        params["switch_plan"] = switch_plan
    return SystemConfig(
        n=4,
        seed=seed,
        name=f"test-adaptive-{initial_mode}",
        protocol="adaptive",
        protocol_params=params,
        recovery="nonblocking",
        workload="uniform",
        workload_params={"hops": 30, "fanout": 2},
        crashes=list(crashes or []),
        checkpoint_every=overrides.pop("checkpoint_every", 8),
        detection_delay=0.5,
        state_bytes=50_000,
        sanitize=True,
        **overrides,
    )


def run(config):
    system = build_system(config)
    result = system.run()
    return system, result


def assert_green(result, label=""):
    assert result.consistent, f"{label}: oracle violations {result.oracle_violations[:3]}"
    sanitizer = result.extra["sanitizer"]
    assert sanitizer["clean"], (
        f"{label}: sanitizer violations "
        f"{[v['invariant'] for v in sanitizer['violations'][:3]]}"
    )
    assert not result.extra["non_live_nodes"], label
    assert all(e.complete for e in result.episodes), label


# ----------------------------------------------------------------------
# the switch matrix: every ordered mode pair, failure-free
# ----------------------------------------------------------------------
@pytest.mark.parametrize("from_mode,to_mode", TRANSITIONS,
                         ids=[f"{a}-to-{b}" for a, b in TRANSITIONS])
def test_scripted_switch_every_mode_pair(from_mode, to_mode):
    config = adaptive_config(
        initial_mode=from_mode,
        switch_plan={1: [(10, to_mode)]},
    )
    _, result = run(config)
    assert_green(result, f"{from_mode}->{to_mode}")
    assert result.extra["trace_counters"].get("protocol.mode_switch", 0) >= 1
    stats = result.extra["protocol_stats"][1]
    assert stats["mode"] == to_mode
    assert stats["mode_epoch"] == 1
    # the other processes never left the initial mode
    for node_id in (0, 2, 3):
        assert result.extra["protocol_stats"][node_id]["mode"] == from_mode


# ----------------------------------------------------------------------
# the crash matrix: die inside the switch window, recover across it
# ----------------------------------------------------------------------
@pytest.mark.parametrize("from_mode,to_mode", TRANSITIONS,
                         ids=[f"{a}-to-{b}" for a, b in TRANSITIONS])
def test_crash_in_switch_window_every_mode_pair(from_mode, to_mode):
    """The marker is durable but the first new-mode checkpoint is not:
    the restart restores the *old* mode from its checkpoint (a
    legitimate epoch rollback the sanitizer re-baselines on) and replay
    crosses the boundary without orphans or lost determinants."""
    config = adaptive_config(
        initial_mode=from_mode,
        switch_plan={1: [(10, to_mode)]},
        crashes=[crash_on(1, "protocol", "mode_switch",
                          match_node=1, delay=0.0005)],
    )
    _, result = run(config)
    assert_green(result, f"crash {from_mode}->{to_mode}")
    counters = result.extra["trace_counters"]
    assert counters.get("protocol.mode_switch", 0) >= 1
    assert counters.get("protocol.mode_restored", 0) >= 1


def test_crash_after_flush_before_commit():
    """Mid-switch, one notch earlier: the outstanding determinants are
    flushed to the adaptive log but the mode marker is not yet durable.
    The restart must find those determinants stable (the flush record
    survives) and stay in the old mode."""
    config = adaptive_config(
        initial_mode="fbl",
        switch_plan={1: [(10, "optimistic")]},
        crashes=[crash_on(1, "protocol", "mode_flush",
                          match_node=1, delay=0.0002)],
    )
    _, result = run(config)
    assert_green(result, "crash on flush")
    assert result.extra["trace_counters"].get("protocol.mode_restored", 0) >= 1


# ----------------------------------------------------------------------
# config plumbing and validation
# ----------------------------------------------------------------------
def test_adaptive_config_reaches_protocol():
    config = SystemConfig(
        n=4,
        protocol="adaptive",
        recovery="nonblocking",
        workload="uniform",
        workload_params={"hops": 5, "fanout": 1},
        adaptive=AdaptiveConfig(
            initial_mode="pessimistic",
            f=1,
            eval_every=7,
            min_dwell=3,
            hysteresis=0.5,
            det_record_bytes=48,
        ),
    )
    system = build_system(config)
    protocol = system.nodes[0].protocol
    assert isinstance(protocol, AdaptiveLogging)
    assert protocol.mode == "pessimistic"
    assert protocol.f == 1
    assert protocol.eval_every == 7
    assert protocol.min_dwell == 3
    assert protocol.hysteresis == 0.5
    assert protocol.det_record_bytes == 48


def test_explicit_protocol_params_win_over_adaptive_config():
    config = SystemConfig(
        n=4,
        protocol="adaptive",
        protocol_params={"initial_mode": "optimistic"},
        recovery="nonblocking",
        adaptive=AdaptiveConfig(initial_mode="pessimistic"),
    )
    system = build_system(config)
    assert system.nodes[0].protocol.mode == "optimistic"


@pytest.mark.parametrize("kwargs,fragment", [
    ({"initial_mode": "eager"}, "initial_mode"),
    ({"f": 0}, "f must be"),
    ({"eval_every": 0}, "eval_every"),
    ({"min_dwell": -1}, "min_dwell"),
    ({"hysteresis": 0.0}, "hysteresis"),
    ({"hysteresis": 1.5}, "hysteresis"),
    ({"det_record_bytes": 0}, "det_record_bytes"),
])
def test_adaptive_config_validation(kwargs, fragment):
    with pytest.raises(ValueError, match=fragment):
        AdaptiveConfig(**kwargs).validate()


@pytest.mark.parametrize("kwargs,fragment", [
    ({"initial_mode": "eager"}, "initial_mode"),
    ({"eval_every": 0}, "eval_every"),
    ({"min_dwell": -1}, "min_dwell"),
    ({"hysteresis": 0.0}, "hysteresis"),
    ({"det_record_bytes": 0}, "det_record_bytes"),
])
def test_protocol_constructor_validation(kwargs, fragment):
    with pytest.raises(ValueError, match=fragment):
        AdaptiveLogging(**kwargs)


def test_switch_plan_fires_at_most_once_across_crashes():
    """Plan progress survives a crash: the restarted process does not
    replay the scripted switch a second time."""
    config = adaptive_config(
        initial_mode="fbl",
        switch_plan={1: [(10, "optimistic")]},
        crashes=[crash_on(1, "protocol", "mode_switch",
                          match_node=1, delay=0.001)],
    )
    system, result = run(config)
    assert_green(result, "plan-once")
    switch_events = [
        e for e in system.trace.events
        if e.category == "protocol" and e.action == "mode_switch"
        and e.node == 1
    ]
    assert len(switch_events) == 1
