"""Unit tests for checkpoints."""

import pytest

from repro.sim.kernel import Simulator
from repro.storage.checkpoint import CheckpointStore
from repro.storage.stable import StableStorage


def make(op_latency=0.01, bandwidth=1_000_000.0):
    sim = Simulator()
    storage = StableStorage(sim, owner=0, op_latency=op_latency, bandwidth_bps=bandwidth)
    return sim, CheckpointStore(storage, node=0)


def save(store, delivered=0, state=None, seqnos=None, size=100_000, **kw):
    return store.save(
        delivered_count=delivered,
        app_state=state or {"digest": "d", "delivered_count": delivered},
        send_seqnos=seqnos or {},
        state_bytes=size,
        taken_at=0.0,
        **kw,
    )


def test_save_becomes_durable_after_write():
    sim, store = make()
    save(store)
    assert store.latest is None
    sim.run()
    assert store.latest is not None
    assert store.latest.checkpoint_id == 1


def test_bootstrap_is_durable_immediately():
    sim, store = make()
    save(store, bootstrap=True)
    assert store.latest is not None


def test_restore_returns_latest_durable():
    sim, store = make()
    save(store, delivered=0, bootstrap=True)
    save(store, delivered=5)
    restored = []
    # restore before the second save completes: must see the bootstrap
    store.restore(restored.append)
    sim.run()
    assert restored[0].delivered_count == 0


def test_restore_after_completion_sees_new_checkpoint():
    sim, store = make()
    save(store, delivered=0, bootstrap=True)
    save(store, delivered=5)
    sim.run()
    restored = []
    store.restore(restored.append)
    sim.run()
    assert restored[0].delivered_count == 5


def test_restore_with_nothing_gives_none():
    sim, store = make()
    restored = []
    store.restore(restored.append)
    sim.run()
    assert restored == [None]


def test_restore_charges_state_bytes():
    sim, store = make(op_latency=0.0, bandwidth=1000.0)
    save(store, size=5000, bootstrap=True)
    finish = store.restore(lambda c: None)
    assert finish == pytest.approx(5.0)


def test_checkpoint_state_is_deep_copied():
    sim, store = make()
    state = {"history": [1, 2]}
    checkpoint = save(store, state=state, bootstrap=True)
    state["history"].append(3)
    assert checkpoint.app_state["history"] == [1, 2]


def test_extra_is_deep_copied():
    sim, store = make()
    extra = {"ids": [1]}
    checkpoint = save(store, bootstrap=True, extra=extra)
    extra["ids"].append(2)
    assert checkpoint.extra["ids"] == [1]


def test_on_done_fires_with_checkpoint():
    sim, store = make()
    seen = []
    save(store, on_done=seen.append)
    sim.run()
    assert len(seen) == 1
    assert seen[0].node == 0


def test_checkpoint_ids_increment():
    sim, store = make()
    a = save(store, bootstrap=True)
    b = save(store, bootstrap=True)
    assert (a.checkpoint_id, b.checkpoint_id) == (1, 2)


# ----------------------------------------------------------------------
# retained history (orphaned-checkpoint fallback support)
# ----------------------------------------------------------------------
def make_retaining(**kw):
    sim = Simulator()
    storage = StableStorage(sim, owner=0, op_latency=0.01, bandwidth_bps=1_000_000.0)
    return sim, CheckpointStore(storage, node=0, retain_history=True, **kw)


def test_history_off_by_default_and_restore_line_guarded():
    sim, store = make()
    save(store, bootstrap=True)
    assert store.durable_history == []
    with pytest.raises(ValueError):
        store.restore_line(store.latest, lambda c: None)


def test_durable_history_accumulates_in_order():
    sim, store = make_retaining()
    save(store, delivered=0, bootstrap=True)
    save(store, delivered=5)
    save(store, delivered=9)
    sim.run()
    history = store.durable_history
    assert [c.checkpoint_id for c in history] == [1, 2, 3]
    assert [c.delivered_count for c in history] == [0, 5, 9]


def test_restore_line_rewinds_latest_and_prunes_newer():
    sim, store = make_retaining()
    save(store, delivered=0, bootstrap=True)
    save(store, delivered=5)
    save(store, delivered=9)
    sim.run()
    clean = store.durable_history[1]  # id 2: the newest non-orphaned line
    restored = []
    store.restore_line(clean, restored.append)
    sim.run()
    assert restored == [clean]
    # the orphaned line (id 3) is gone for good: a later restore must
    # come back to the adopted line, not the orphan
    assert [c.checkpoint_id for c in store.durable_history] == [1, 2]
    assert store.latest is clean
    again = []
    store.restore(again.append)
    sim.run()
    assert again[0].checkpoint_id == 2


def test_restore_line_charges_full_state_read():
    sim, store = make_retaining()
    save(store, delivered=0, bootstrap=True, size=500_000)
    save(store, delivered=5, size=500_000)
    sim.run()
    before = sim.now
    store.restore_line(store.durable_history[0], lambda c: None)
    sim.run()
    # 500 kB at 1 MB/s plus the op latency: a real device round trip
    assert sim.now - before >= 0.5
