"""Unit tests for volatile logs."""

from repro.causality.determinant import Determinant
from repro.storage.volatile import DeterminantLog, SendLog, VolatileLog


def det(sender=0, ssn=0, receiver=1, rsn=0):
    return Determinant(sender=sender, ssn=ssn, receiver=receiver, rsn=rsn)


class TestVolatileLog:
    def test_append_and_iterate(self):
        log = VolatileLog()
        log.append("a")
        log.append("b")
        assert list(log) == ["a", "b"]
        assert len(log) == 2

    def test_clear_loses_everything(self):
        log = VolatileLog()
        log.append(1)
        log.clear()
        assert len(log) == 0

    def test_entries_returns_copy(self):
        log = VolatileLog()
        log.append(1)
        snapshot = log.entries()
        snapshot.append(2)
        assert len(log) == 1


class TestSendLog:
    def test_log_and_lookup(self):
        log = SendLog()
        log.log(2, 0, {"x": 1}, 128)
        record = log.lookup(2, 0)
        assert record["payload"] == {"x": 1}
        assert record["size"] == 128
        assert log.lookup(2, 1) is None

    def test_duplicate_log_ignored(self):
        log = SendLog()
        log.log(2, 0, {"x": 1}, 128)
        log.log(2, 0, {"x": 999}, 128)
        assert log.lookup(2, 0)["payload"] == {"x": 1}
        assert log.bytes_logged == 128

    def test_messages_for_sorted_by_ssn(self):
        log = SendLog()
        log.log(2, 3, {}, 10)
        log.log(2, 1, {}, 10)
        log.log(3, 0, {}, 10)
        assert [ssn for ssn, _ in log.messages_for(2)] == [1, 3]

    def test_prune_upto(self):
        log = SendLog()
        for ssn in range(5):
            log.log(2, ssn, {}, 10)
        dropped = log.prune_upto(2, 2)
        assert dropped == 3
        assert [ssn for ssn, _ in log.messages_for(2)] == [3, 4]
        assert log.bytes_logged == 20

    def test_clear_on_crash(self):
        log = SendLog()
        log.log(2, 0, {}, 10)
        log.clear()
        assert len(log) == 0
        assert log.bytes_logged == 0

    def test_state_round_trip(self):
        log = SendLog()
        log.log(2, 0, {"k": "v"}, 64)
        log.log(3, 1, {"k": "w"}, 32)
        restored = SendLog()
        restored.load_state(log.to_state())
        assert restored.lookup(2, 0)["payload"] == {"k": "v"}
        assert restored.bytes_logged == 96


class TestDeterminantLog:
    def test_add_new_returns_true(self):
        log = DeterminantLog()
        assert log.add(det()) is True
        assert log.add(det()) is False

    def test_logged_at_merges(self):
        log = DeterminantLog()
        d = det()
        log.add(d, logged_at=(1,))
        log.add(d, logged_at=(2, 3))
        assert log.logged_at(d) == frozenset({1, 2, 3})

    def test_note_logged_at_creates_if_missing(self):
        log = DeterminantLog()
        d = det()
        log.note_logged_at(d, 5)
        assert d in log
        assert log.logged_at(d) == frozenset({5})

    def test_unstable_filters_by_replication(self):
        log = DeterminantLog()
        d1 = det(rsn=0)
        d2 = det(rsn=1)
        log.add(d1, logged_at=(1, 2, 3))
        log.add(d2, logged_at=(1,))
        assert log.unstable(3) == [d2]
        assert log.unstable(4) == [d1, d2]

    def test_for_receiver(self):
        log = DeterminantLog()
        log.add(det(receiver=1, rsn=0))
        log.add(det(receiver=1, rsn=1, ssn=1))
        log.add(det(receiver=2, rsn=0, ssn=2))
        orders = log.for_receiver(1)
        assert set(orders) == {0, 1}

    def test_contains_checks_exact_determinant(self):
        log = DeterminantLog()
        log.add(det(sender=0, ssn=0, receiver=1, rsn=0))
        assert det(sender=0, ssn=0, receiver=1, rsn=0) in log
        # same delivery slot, different message: not "contained"
        assert det(sender=0, ssn=9, receiver=1, rsn=0) not in log

    def test_state_round_trip(self):
        log = DeterminantLog()
        d = det()
        log.add(d, logged_at=(1, 4))
        restored = DeterminantLog()
        restored.load_state(log.to_state())
        assert d in restored
        assert restored.logged_at(d) == frozenset({1, 4})

    def test_clear_on_crash(self):
        log = DeterminantLog()
        log.add(det())
        log.clear()
        assert len(log) == 0
